"""Legacy setuptools shim (offline environment lacks PEP 517 wheel support)."""
from setuptools import setup

setup()
