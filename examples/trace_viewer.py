#!/usr/bin/env python3
"""Trace viewer: record a cycle-level event trace and explore it three ways.

Runs one benchmark on one design point with tracing enabled, then:

1. writes a Chrome-trace JSON you can load in ``chrome://tracing`` or
   https://ui.perfetto.dev (one row per core, one row per queue),
2. prints the trace-derived timelines — queue-occupancy summary and
   windowed shared-bus utilization — with their invariant checks, and
3. prints the COMM-OP delay comparison across all four design points
   (the paper's Section 4.3 measurement).

Examples::

    python examples/trace_viewer.py
    python examples/trace_viewer.py --benchmark fir --design-point MEMOPTI \\
        --trips 400 --out fir_memopti.trace.json
    python examples/trace_viewer.py --skip-profile   # just export + timelines
"""

import argparse

from repro import (
    COMM_OP_POINTS,
    CommOpProfiler,
    TraceConfig,
    bus_utilization,
    check_bus_utilization,
    check_occupancy,
    occupancy_plateaus,
    queue_occupancy,
    run_benchmark,
    write_chrome_trace,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="wc", help="suite benchmark name")
    parser.add_argument(
        "--design-point",
        default="SYNCOPTI",
        choices=list(COMM_OP_POINTS),
        help="design point to trace",
    )
    parser.add_argument("--trips", type=int, default=300, help="loop iterations")
    parser.add_argument(
        "--out",
        default=None,
        help="Chrome-trace output path (default: <benchmark>_<point>.trace.json)",
    )
    parser.add_argument(
        "--skip-profile",
        action="store_true",
        help="skip the 4-point COMM-OP comparison (faster)",
    )
    return parser.parse_args()


def show_timelines(trace, depth: int) -> None:
    queues = sorted({ev.queue for ev in trace.select(kind="queue.publish")})
    print("\n== Queue occupancy (from queue.publish / queue.free events) ==")
    for qid in queues:
        samples = queue_occupancy(trace, qid)
        violations = check_occupancy(samples, depth, queue_id=qid)
        peak = max(occ for _ts, occ in samples)
        full = occupancy_plateaus(samples, min_duration=100.0, level=depth)
        status = "OK" if not violations else violations[0].describe()
        print(
            f"  queue {qid}: {len(samples)} steps, peak {peak}/{depth}, "
            f"{len(full)} full-queue plateau(s) >= 100cy, invariants {status}"
        )

    windows = bus_utilization(trace, window=1000.0)
    print("\n== Shared-bus utilization (1000-cycle windows) ==")
    bad = check_bus_utilization(windows)
    for w in windows[:20]:
        bar = "#" * int(w.utilization * 40)
        print(f"  t={w.start:7.0f}  {100 * w.utilization:5.1f}%  {bar}")
    if len(windows) > 20:
        print(f"  ... {len(windows) - 20} more windows")
    print(f"  invariants: {'OK' if not bad else f'{len(bad)} window(s) over-booked'}")


def main() -> None:
    args = parse_args()
    out = args.out or f"{args.benchmark}_{args.design_point.lower()}.trace.json"

    result = run_benchmark(
        args.benchmark,
        args.design_point,
        trip_count=args.trips,
        trace=TraceConfig(capacity=1 << 20),
    )
    trace = result.trace
    print(
        f"{args.benchmark} on {args.design_point}, {args.trips} iterations: "
        f"{result.cycles} cycles, {trace.emitted} events traced"
    )

    write_chrome_trace(trace, out)
    print(f"Chrome trace written to {out} (load in chrome://tracing or Perfetto)")

    show_timelines(trace, depth=result.machine.config.queues.depth)

    if not args.skip_profile:
        print()
        report = CommOpProfiler(
            benchmarks=(args.benchmark,), trip_count=min(args.trips, 200)
        ).profile()
        print(report.render())
        print(f"\nCOMM-OP delay ordering: {' > '.join(report.ordering())}")


if __name__ == "__main__":
    main()
