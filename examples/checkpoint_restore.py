#!/usr/bin/env python3
"""Checkpoint/restore walkthrough: snapshot a run mid-flight, kill it,
resume it, and verify the result is bit-identical to never crashing.

Four acts:

1. run wc/EXISTING uninterrupted and record its fingerprint;
2. run it again with a ``Checkpointer``, preempting after two snapshots
   (exactly what a campaign worker does on SIGTERM);
3. recover the snapshot from disk — corrupting the newest generation
   first, to watch quarantine + ``.prev`` fallback do their job;
4. resume and compare fingerprints.

    PYTHONPATH=src python examples/checkpoint_restore.py

The campaign runner automates all of this per cell:
``python -m repro campaign run --grid figure7 --ledger l.jsonl
--checkpoint-every 20000``.
"""

import argparse
import os
import tempfile

from repro import (
    Checkpointer,
    Machine,
    PreemptionRequested,
    recover_snapshot,
    resume_run,
)
from repro.core.design_points import get_design_point
from repro.workloads.suite import build_pipelined


def build_machine():
    point = get_design_point("EXISTING")
    return Machine(point.build_config(), mechanism=point.mechanism)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trips", type=int, default=800)
    parser.add_argument("--every", type=int, default=20_000,
                        help="simulated cycles between snapshots")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="ckpt-demo-")
    path = os.path.join(workdir, "wc.ckpt")
    program = lambda: build_pipelined("wc", trip_count=args.trips)  # noqa: E731

    # -- 1: the uninterrupted reference ---------------------------------
    ref = build_machine().run(program())
    print(f"uninterrupted: {ref.cycles:.0f} cycles, "
          f"fingerprint {ref.fingerprint()}")

    # -- 2: checkpoint, then preempt ------------------------------------
    ckpt = Checkpointer(every=args.every, path=path)

    def on_snapshot(snapshot, snapshot_path):
        print(f"  snapshot {ckpt.snapshots_taken} at cycle "
              f"{snapshot.cycle:.0f} -> {snapshot_path}")
        if ckpt.snapshots_taken >= 2:
            ckpt.request_preempt()  # as a SIGTERM handler would

    ckpt.on_snapshot = on_snapshot
    try:
        build_machine().run(program(), checkpoint=ckpt)
        raise SystemExit("run finished before the preemption — raise --trips")
    except PreemptionRequested as exc:
        print(f"preempted at cycle {exc.cycle:.0f}; worker would exit now")

    # -- 3: corrupt the newest generation, then recover ------------------
    with open(path, "r+b") as fh:
        fh.seek(-64, os.SEEK_END)
        fh.write(b"\xff" * 16)
    print("corrupted the newest snapshot (simulated torn write)")
    recovered = recover_snapshot(path)
    assert recovered is not None, "both generations lost — cold start"
    print(f"recovered from {os.path.basename(recovered.path)} "
          f"(fallback: {recovered.used_fallback}; "
          f"quarantined: {[os.path.basename(q) for q in recovered.quarantined]})")

    # -- 4: resume and verify --------------------------------------------
    resumed = resume_run(recovered.snapshot, program())
    print(f"resumed:       {resumed.cycles:.0f} cycles, "
          f"fingerprint {resumed.fingerprint()}")
    assert resumed.fingerprint() == ref.fingerprint(), "divergence!"
    print("fingerprints match: kill -> restore -> continue == never crashed")


if __name__ == "__main__":
    main()
