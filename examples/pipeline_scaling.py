#!/usr/bin/env python3
"""Driver for the pipeline-scaling study: K-stage DSWP on K cores.

Sweeps pipeline stage count over the four communication design points and
prints speedup, per-hop COMM-OP delay, and shared-bus utilization.  The
paper's machine is a dual-core CMP; this study asks how each design point's
synchronization fares as the pipeline deepens: HEAVYWT (dedicated store +
interconnect) and SYNCOPTI (occupancy counters) keep scaling, while
EXISTING's software queues saturate under growing sync and bus contention.

Usage::

    PYTHONPATH=src python examples/pipeline_scaling.py
    PYTHONPATH=src python examples/pipeline_scaling.py \
        --scale 0.1 --stages 2 4 --benchmarks wc --points EXISTING HEAVYWT
"""

import argparse

from repro.pipeline.scaling import (
    PIPELINE_BENCHMARKS,
    SCALING_POINTS,
    STAGE_COUNTS,
    pipeline_scaling,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiplier on per-benchmark iteration counts (default 1.0)",
    )
    parser.add_argument(
        "--stages",
        type=int,
        nargs="+",
        default=list(STAGE_COUNTS),
        metavar="K",
        help=f"pipeline stage counts to sweep (default {list(STAGE_COUNTS)})",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        default=list(PIPELINE_BENCHMARKS),
        metavar="NAME",
        help=f"kernels to run (default {list(PIPELINE_BENCHMARKS)})",
    )
    parser.add_argument(
        "--points",
        nargs="+",
        default=list(SCALING_POINTS),
        metavar="POINT",
        help=f"design points to compare (default {list(SCALING_POINTS)})",
    )
    args = parser.parse_args()
    result = pipeline_scaling(
        scale=args.scale,
        benchmarks=args.benchmarks,
        stage_counts=args.stages,
        design_points=args.points,
    )
    print(result.text)
    return 1 if result.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
