#!/usr/bin/env python3
"""Design-space sweep: every benchmark x every design point.

Reproduces the Figure 7 / Figure 12 comparison in one table: normalized
execution time (HEAVYWT = 1.0) for all seven design points across the full
benchmark suite, plus the geomean summary the paper quotes (SYNCOPTI ~1.6x
over EXISTING; SC+Q64 ~2x over EXISTING).
"""

from repro import BENCHMARK_ORDER, geomean, get_design_point
from repro.harness.runner import run_benchmark

POINTS = (
    "HEAVYWT",
    "SYNCOPTI_SC_Q64",
    "SYNCOPTI_SC",
    "SYNCOPTI_Q64",
    "SYNCOPTI",
    "EXISTING",
    "MEMOPTI",
)

TRIPS = {
    "art": 300, "equake": 150, "mcf": 120, "bzip2": 320, "adpcmdec": 300,
    "epicdec": 150, "wc": 400, "fir": 300, "fft2": 150,
}


def main() -> None:
    header = f"{'benchmark':10s} " + " ".join(f"{p[:9]:>9s}" for p in POINTS)
    print(header)
    print("-" * len(header))
    norm = {p: [] for p in POINTS}
    for bench in BENCHMARK_ORDER:
        cycles = {
            p: run_benchmark(bench, p, TRIPS[bench]).cycles for p in POINTS
        }
        base = cycles["HEAVYWT"]
        row = [cycles[p] / base for p in POINTS]
        for p, v in zip(POINTS, row):
            norm[p].append(v)
        print(f"{bench:10s} " + " ".join(f"{v:9.2f}" for v in row))
    print("-" * len(header))
    gms = {p: geomean(norm[p]) for p in POINTS}
    print(f"{'GeoMean':10s} " + " ".join(f"{gms[p]:9.2f}" for p in POINTS))

    print(
        f"\nSYNCOPTI speedup over EXISTING:        "
        f"{gms['EXISTING'] / gms['SYNCOPTI']:.2f}x   (paper: ~1.6x)"
    )
    print(
        f"SYNCOPTI_SC_Q64 speedup over EXISTING: "
        f"{gms['EXISTING'] / gms['SYNCOPTI_SC_Q64']:.2f}x   (paper: ~2.0x)"
    )


if __name__ == "__main__":
    main()
