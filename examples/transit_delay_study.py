#!/usr/bin/env python3
"""Transit-delay tolerance study (Figure 6, extended).

The paper's central architectural insight: pipelined streaming tolerates
*transit* delay (core-to-core latency) but is extremely sensitive to
*COMM-OP* delay (per-operation intra-core overhead).  This example sweeps
the dedicated interconnect's end-to-end latency from 1 to 32 cycles on
HEAVYWT and shows that execution time barely moves — except for bzip2,
whose outer-loop queue cannot be pipelined — and that a deeper queue buys
the slack back.
"""

from repro import get_design_point, with_queue_depth, with_transit_delay
from repro.harness.runner import run_benchmark

BENCHES = ("wc", "adpcmdec", "fir", "bzip2")
TRANSITS = (1, 4, 10, 32)
TRIPS = {"wc": 400, "adpcmdec": 300, "fir": 300, "bzip2": 320}


def main() -> None:
    point = get_design_point("HEAVYWT")
    print("HEAVYWT normalized execution time vs interconnect transit delay\n")
    print(f"{'benchmark':10s} " + " ".join(f"{t:>7d}c" for t in TRANSITS) + "   64-entry@10c")
    for bench in BENCHES:
        base = None
        cells = []
        for transit in TRANSITS:
            cfg = with_transit_delay(point.build_config(), transit)
            cycles = run_benchmark(bench, "HEAVYWT", TRIPS[bench], config=cfg).cycles
            if base is None:
                base = cycles
            cells.append(cycles / base)
        deep = with_queue_depth(with_transit_delay(point.build_config(), 10), 64)
        deep_cycles = run_benchmark(bench, "HEAVYWT", TRIPS[bench], config=deep).cycles
        print(
            f"{bench:10s} "
            + " ".join(f"{v:8.2f}" for v in cells)
            + f"   {deep_cycles / base:8.2f}"
        )
    print(
        "\nPipelined queues hide transit delay (Section 2): only bzip2's\n"
        "unpipelineable outer-loop dependence is exposed, and a 64-entry\n"
        "queue restores its decoupling."
    )


if __name__ == "__main__":
    main()
