#!/usr/bin/env python3
"""Resilient campaign over the Figure 7 grid: pool + watchdog + ledger.

Runs the benchmark x design-point grid through the campaign runner with a
worker pool, a per-cell wall-clock watchdog, and a crash-safe JSONL
ledger.  Kill it at any point (Ctrl-C, SIGKILL, power loss) and run it
again with ``--resume``: completed cells are skipped, in-flight ones are
re-queued, and the grid finishes where it left off.

    PYTHONPATH=src python examples/campaign.py --jobs 4 --ledger fig7.jsonl
    # ... Ctrl-C mid-run ...
    PYTHONPATH=src python examples/campaign.py --jobs 4 --ledger fig7.jsonl --resume

The same grid is available from the CLI as
``python -m repro campaign run --grid figure7``.
"""

import argparse

from repro import BENCHMARK_ORDER, geomean
from repro.core.design_points import FIGURE7_ORDER
from repro.harness.campaign import (
    CampaignCell,
    CampaignLedger,
    CampaignPolicy,
    run_campaign,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ledger", default="fig7-campaign.jsonl")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--trips", type=int, default=200)
    parser.add_argument("--budget", type=float, default=120.0,
                        help="wall-clock seconds per cell attempt")
    parser.add_argument("--resume", action="store_true",
                        help="continue a previous run from the ledger")
    args = parser.parse_args()

    cells = [
        CampaignCell(benchmark=b, design_point=p, trip_count=args.trips)
        for b in BENCHMARK_ORDER
        for p in FIGURE7_ORDER
    ]
    key_of = {(c.benchmark, c.design_point): c.key() for c in cells}

    policy = CampaignPolicy(jobs=args.jobs, wall_clock_budget=args.budget)
    report = run_campaign(
        cells,
        policy,
        ledger_path=args.ledger,
        resume=args.resume,
        progress=print,
    )
    print(report.summary())
    if report.skipped:
        print(f"({len(report.skipped)} cell(s) restored from the ledger)")

    # Render the surviving grid, EXISTING-relative, gaps for failures.
    # Cycles come from the ledger replay, so cells completed in a previous
    # (crashed) run contribute without being re-simulated.
    history = CampaignLedger.replay(args.ledger)

    def cycles_of(bench, point):
        hist = history.get(key_of[(bench, point)])
        return hist.cycles if hist is not None and hist.status == "done" else None

    print(f"\n{'benchmark':10s} " + " ".join(f"{p:>9s}" for p in FIGURE7_ORDER))
    speedups = {p: [] for p in FIGURE7_ORDER}
    for bench in BENCHMARK_ORDER:
        base = cycles_of(bench, "EXISTING")
        row = []
        for p in FIGURE7_ORDER:
            cyc = cycles_of(bench, p)
            if cyc is None or base is None:
                row.append(f"{'--':>9s}")
            else:
                speedups[p].append(base / cyc)
                row.append(f"{base / cyc:9.2f}")
        print(f"{bench:10s} " + " ".join(row))
    gm = {p: geomean(v) if v else None for p, v in speedups.items()}
    print(
        f"{'GeoMean':10s} "
        + " ".join(f"{gm[p]:9.2f}" if gm[p] else f"{'--':>9s}" for p in FIGURE7_ORDER)
    )


if __name__ == "__main__":
    main()
