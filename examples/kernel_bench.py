#!/usr/bin/env python3
"""Kernel shoot-out: the same simulation under both stepping engines.

Runs the `wc` streaming kernel on the bus-heavy EXISTING design point and
the bus-light HEAVYWT point under the `reference` kernel (the seed-era
min-timestamp loop) and the `event` kernel (wakeup heap + indexed bus
calendar), then prints host time, simulated cycles/sec, and the speedup.

The punchline is the assertion at the end: both kernels produce the same
fingerprint — the event kernel is faster, never different.  For the full
tracked perf record, use ``python -m repro bench``.
"""

import argparse

from repro.harness.runner import run_benchmark
from repro.sim.kernel import KERNEL_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trips", type=int, default=800)
    parser.add_argument(
        "--points", nargs="+", default=["EXISTING", "HEAVYWT"], metavar="POINT"
    )
    args = parser.parse_args()

    print(f"wc, {args.trips} iterations, kernels: {', '.join(KERNEL_NAMES)}\n")
    print(f"{'design point':<12} {'kernel':<10} {'host s':>8} {'sim cyc/s':>12}")
    for point in args.points:
        results = {}
        for kernel in KERNEL_NAMES:
            res = run_benchmark("wc", point, args.trips, kernel=kernel)
            results[kernel] = res
            print(
                f"{point:<12} {kernel:<10} {res.stats.host_seconds:>8.3f} "
                f"{res.stats.simulated_cycles_per_sec:>12,.0f}"
            )
        fingerprints = {k: r.fingerprint() for k, r in results.items()}
        assert len(set(fingerprints.values())) == 1, (
            f"{point}: kernels disagree: {fingerprints}"
        )
        ref = results["reference"].stats
        ev = results["event"].stats
        if ref.host_seconds > 0 and ev.host_seconds > 0:
            print(
                f"{point:<12} event speedup "
                f"{ref.host_seconds / ev.host_seconds:.2f}x, "
                f"fingerprint {fingerprints['reference']} (identical)\n"
            )


if __name__ == "__main__":
    main()
