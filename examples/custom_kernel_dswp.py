#!/usr/bin/env python3
"""Bring your own loop: write an IR kernel, DSWP it, and evaluate it.

Shows the full pipeline a compiler writer would use: express a streaming
loop in the IR, let the DSWP partitioner split it into producer/consumer
stages, lower both the pipelined and the original single-threaded versions,
and measure what each communication mechanism makes of it.

The example loop is a toy image-filter: stream pixels in, table-map them,
accumulate a histogram (a loop-carried recurrence that anchors the
consumer stage), and write the mapped pixels out.
"""

from repro import baseline_config
from repro.dswp.codegen import lower_partition, lower_single_threaded
from repro.dswp.ir import Loop, Op, OpKind, Sequential, Strided
from repro.dswp.partition import partition_loop
from repro.sim.machine import Machine

MB = 1 << 20


def build_filter_loop(trip_count: int = 600) -> Loop:
    base = 0x4000_0000
    return Loop(
        name="pixfilter",
        trip_count=trip_count,
        body=[
            Op("load_px", OpKind.LOAD, addr=Sequential(base, stride=1, footprint=2 * MB)),
            Op("gamma", OpKind.IALU, deps=("load_px",)),
            Op(
                "lut",
                OpKind.LOAD,
                deps=("gamma",),
                addr=Strided(base + 4 * MB, stride=4, n_elements=256, seed=41),
            ),
            Op("hist", OpKind.IALU, deps=("lut",), carried_deps=("hist",)),
            Op("blend", OpKind.IALU, deps=("lut",)),
            Op(
                "store_px",
                OpKind.STORE,
                deps=("blend",),
                addr=Sequential(base + 8 * MB, stride=1, footprint=2 * MB),
            ),
        ],
    )


def main() -> None:
    loop = build_filter_loop()
    partition = partition_loop(loop)

    print(f"DSWP partition of {loop.name!r}:")
    for stage in (0, 1):
        ops = ", ".join(op.op_id for op in partition.ops_in_stage(stage))
        print(f"  stage {stage} (weight {partition.stage_weight(stage):5.1f}): {ops}")
    print(f"  crossing values -> queues: {partition.crossing_values}")
    print(f"  comm ops per iteration: {partition.comm_ops_per_iteration()}\n")

    single = lower_single_threaded(loop)
    pipelined = lower_partition(partition)

    st = Machine(baseline_config(), mechanism="heavywt").run(single)
    print(f"single-threaded: {st.cycles:8d} cycles")
    for mech in ("existing", "syncopti", "syncopti_sc", "heavywt"):
        stats = Machine(baseline_config(), mechanism=mech).run(pipelined)
        speedup = st.cycles / stats.cycles
        print(
            f"{mech:12s}:    {stats.cycles:8d} cycles   "
            f"speedup over 1 thread: {speedup:4.2f}x"
        )
    print(
        "\nA mechanism with high COMM-OP delay can turn the pipelined "
        "version into a slowdown — the paper's core argument."
    )


if __name__ == "__main__":
    main()
