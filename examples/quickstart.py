#!/usr/bin/env python3
"""Quickstart: run one benchmark on two design points and compare.

Builds the DSWP-parallelized `wc` loop (the paper's tightest streaming
kernel), runs it on the commercial-CMP baseline (EXISTING software queues)
and on the paper's proposed light-weight design (SYNCOPTI + stream cache +
Q64), and prints the speedup and per-thread breakdowns.
"""

from repro import baseline_config, build_pipelined, get_design_point
from repro.sim.machine import Machine


def run_design_point(name: str, trip_count: int = 600):
    point = get_design_point(name)
    program = build_pipelined("wc", trip_count)
    machine = Machine(point.build_config(), mechanism=point.mechanism)
    return machine.run(program)


def main() -> None:
    existing = run_design_point("EXISTING")
    proposed = run_design_point("SYNCOPTI_SC_Q64")
    heavy = run_design_point("HEAVYWT")

    print("wc (Unix `cnt` loop), 600 iterations, dual-core CMP\n")
    rows = [
        ("EXISTING (software queues)", existing),
        ("SYNCOPTI_SC_Q64 (paper's pick)", proposed),
        ("HEAVYWT (dedicated hardware)", heavy),
    ]
    for label, stats in rows:
        print(f"{label:34s} {stats.cycles:8d} cycles")
    print(
        f"\nSpeedup of SYNCOPTI_SC_Q64 over EXISTING: "
        f"{existing.cycles / proposed.cycles:.2f}x"
    )
    print(
        f"Gap to the heavy-weight hardware design:  "
        f"{proposed.cycles / heavy.cycles:.2f}x"
    )

    print("\nConsumer-thread critical-path components (EXISTING):")
    total = existing.consumer.component_sum()
    for name, value in existing.consumer.components.items():
        share = 100.0 * value / total if total else 0.0
        print(f"  {name:8s} {share:5.1f}%  {'#' * int(share / 2)}")


if __name__ == "__main__":
    main()
