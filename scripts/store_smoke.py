#!/usr/bin/env python3
"""Result-store + dispatch smoke — the CI acceptance drill for PR 8.

Phase 1, the dedupe drill:

1. run ``campaign run --grid smoke --store`` cold: every cell simulates
   and publishes;
2. run the identical grid again against the same store with a fresh
   ledger: assert 100% store hits, zero publications, and fingerprints
   bit-identical to the cold run — a repeated campaign performs zero
   re-simulations.

Phase 2, the lease-reclamation drill:

1. enqueue a small grid on the shared work queue (short lease TTL);
2. launch a queue worker subprocess and SIGKILL it as soon as it holds a
   lease — a crashed fleet member mid-cell;
3. run a second worker in-process: assert it reclaims the orphaned
   lease after the TTL and the whole grid completes, with every cell
   simulated exactly once overall (the store's entry count is the grid
   size and nothing was ever published twice).

Phase 3 (PR 9), the randomized chaos phase:

1. draw a fresh random seed (or take ``CHAOS_SEED``) and print it — any
   failure reproduces by re-running with that seed pinned;
2. publish a small grid through a :class:`repro.chaos.fs.ChaosFS` with
   probabilistic EIO bursts, torn writes, lost fsyncs, and short reads,
   retrying each publish until it lands (as a real campaign retries a
   flaky disk);
3. assert the store still verifies clean through the *real* filesystem
   and serves every fingerprint bit-identically: faults may cost
   retries, never integrity.

Finally dumps store + queue stats as JSON to ``STORE_SMOKE_STATS`` (CI
uploads it as an artifact).  Exits 0 on success, 1 with a diagnosis.
"""

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.campaign import (  # noqa: E402
    CampaignCell,
    CampaignLedger,
    CampaignPolicy,
    run_campaign,
)
from repro.store.dispatch import WorkQueue, run_worker  # noqa: E402
from repro.store.store import ResultStore, cell_digest  # noqa: E402

POLL_S = 0.05
LAUNCH_TIMEOUT_S = 120
#: Short TTL so reclamation happens in CI time, long enough that a live
#: worker's heartbeats (every ttl/3) keep it safely renewed.
LEASE_TTL_S = 3.0


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _grid(trips=96):
    from repro.core.design_points import FIGURE7_ORDER

    return [
        CampaignCell(benchmark=b, design_point=p, trip_count=trips)
        for b in ("wc", "fir")
        for p in FIGURE7_ORDER
    ]


def dedupe_drill(root: str) -> ResultStore:
    """Cold campaign populates; warm campaign must be 100% hits."""
    store_root = os.path.join(root, "store")
    cells = _grid()

    store = ResultStore(store_root)
    cold = run_campaign(
        cells,
        CampaignPolicy(),
        ledger_path=os.path.join(root, "cold.jsonl"),
        store=store,
    )
    if cold.n_done != len(cells) or cold.n_failed:
        fail(f"cold run incomplete: {cold.summary()}")
    if store.writes != len(cells):
        fail(f"cold run published {store.writes} entries, want {len(cells)}")
    cold_fps = {k: o.fingerprint() for k, o in cold.outcomes.items()}

    warm_store = ResultStore(store_root)
    warm = run_campaign(
        cells,
        CampaignPolicy(),
        ledger_path=os.path.join(root, "warm.jsonl"),
        store=warm_store,
    )
    if sorted(warm.store_hits) != sorted(c.key() for c in cells):
        fail(
            f"warm run had {len(warm.store_hits)}/{len(cells)} store hits "
            "(want all: zero re-simulations)"
        )
    if warm_store.writes != 0:
        fail(f"warm run published {warm_store.writes} entries (re-simulated!)")
    warm_fps = {k: o.fingerprint() for k, o in warm.outcomes.items()}
    if warm_fps != cold_fps:
        diff = {k for k in cold_fps if warm_fps.get(k) != cold_fps[k]}
        fail(f"warm fingerprints diverged from cold on: {sorted(diff)}")

    # The warm ledger's hits must replay as terminal (attempt 0) records.
    hits = [
        r
        for r in CampaignLedger.read(os.path.join(root, "warm.jsonl"))
        if r.get("store_hit")
    ]
    if len(hits) != len(cells):
        fail(f"warm ledger journalled {len(hits)} store hits, want {len(cells)}")
    print(
        f"OK: dedupe drill — {len(cells)} cells cold, "
        f"{len(warm.store_hits)} hits warm, fingerprints bit-identical"
    )
    return warm_store


def _worker_proc(store_root: str, queue_root: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "store", "worker",
            "--store", store_root, "--queue", queue_root,
            "--lease-ttl", str(LEASE_TTL_S),
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def reclamation_drill(root: str) -> None:
    """SIGKILL a leased worker; a second worker must reclaim and finish."""
    store_root = os.path.join(root, "store2")
    queue_root = os.path.join(root, "queue2")
    store = ResultStore(store_root)
    queue = WorkQueue(queue_root, lease_ttl=LEASE_TTL_S)
    # Bigger cells so the victim is reliably mid-simulation when killed.
    cells = _grid(trips=3000)
    for cell in cells:
        queue.enqueue(cell)

    victim = _worker_proc(store_root, queue_root)
    deadline = time.monotonic() + LAUNCH_TIMEOUT_S
    leased = []
    while not leased:
        if victim.poll() is not None:
            fail(
                "worker exited before holding a lease — output:\n"
                f"{victim.stdout.read()}"
            )
        if time.monotonic() > deadline:
            victim.kill()
            fail("worker never claimed a lease within the launch timeout")
        leased = [
            n for n in os.listdir(queue.leases_dir) if n.endswith(".lease")
        ]
        time.sleep(POLL_S)
    os.kill(victim.pid, signal.SIGKILL)
    victim.wait()
    orphaned = leased[0][: -len(".lease")]
    print(f"killed leased worker; orphaned lease on {orphaned[:16]}")

    # The orphan's digest must not be in the store (it died mid-cell)...
    if store.contains(orphaned):
        # ...unless the kill raced completion; then there is nothing to
        # reclaim.  That window is a few ms — note it loudly and let the
        # survivor finish the grid anyway rather than fail spuriously.
        print("NOTE: victim published its cell before the kill landed")
        for name in list(os.listdir(queue.leases_dir)):
            os.unlink(os.path.join(queue.leases_dir, name))

    counters = run_worker(
        store, queue, worker_id="survivor", poll=POLL_S, drain=True
    )
    if queue.pending():
        fail(f"queue not drained: {len(queue.pending())} cells left")
    if queue.failed():
        fail(f"cells failed during the drill: {sorted(queue.failed())}")
    if not store.contains(cell_digest_of_orphan(orphaned, cells)):
        fail(f"orphaned cell {orphaned[:16]} never completed")
    if store.stats()["entries"] != len(cells):
        fail(
            f"store holds {store.stats()['entries']} entries for a "
            f"{len(cells)}-cell grid"
        )
    # Verify the whole store: every entry valid, none quarantined.
    report = store.verify()
    if report["corrupt"]:
        fail(f"store verify found corruption: {report}")
    print(
        f"OK: reclamation drill — survivor ran {counters['ran']} cells "
        f"(store hits {counters['store_hits']}), lease on {orphaned[:16]} "
        "reclaimed, store verifies clean"
    )


def chaos_phase(root: str) -> None:
    """Randomized-seed fault storm: the store survives a sick disk."""
    from repro.chaos import ChaosFS, ChaosPlan
    from repro.harness.campaign import execute_cell
    from repro.harness.runner import RunResult

    seed = int(os.environ.get("CHAOS_SEED") or random.randrange(2**32))
    print(f"chaos phase: seed {seed} (rerun with CHAOS_SEED={seed})")
    chaos = ChaosFS(
        ChaosPlan(
            seed=seed,
            p_io_error=0.05,
            p_torn_write=0.03,
            p_lost_fsync=0.05,
            p_short_read=0.05,
        )
    )
    store_root = os.path.join(root, "store3")
    # Even the format-marker write goes through the sick disk: retry the
    # construction like any other durable write.
    for attempt in range(50):
        try:
            sick = ResultStore(store_root, fs=chaos)
            break
        except OSError:
            continue
    else:
        fail(f"seed {seed}: store never initialised in 50 attempts")
    cells = _grid(trips=48)
    outcomes = {}
    for cell in cells:
        outcome = execute_cell(cell)
        if not isinstance(outcome, RunResult):
            fail(f"simulation failed outside chaos: {outcome.error}")
        outcomes[cell.key()] = outcome
        for attempt in range(50):
            try:
                sick.put(cell, outcome, provenance={"campaign": "chaos"})
                break
            except OSError:
                continue
        else:
            fail(f"seed {seed}: publish never landed in 50 attempts")
    faults = sum(chaos.injected.values())

    # Integrity is judged through the REAL filesystem: whatever the sick
    # disk did, what is on it now must verify clean and read back whole.
    clean = ResultStore(store_root)
    report = clean.verify()
    if report["corrupt"]:
        fail(f"seed {seed}: chaos left corruption behind: {report}")
    for cell in cells:
        entry = clean.get(cell_digest(cell))
        if entry is None:
            fail(f"seed {seed}: published cell {cell.key()} unreadable")
        if entry.fingerprint != outcomes[cell.key()].fingerprint():
            fail(f"seed {seed}: fingerprint drift on {cell.key()}")
    clean.gc()
    print(
        f"OK: chaos phase — {len(cells)} cells published through "
        f"{faults} injected faults, store verifies clean"
    )


def cell_digest_of_orphan(orphaned: str, cells) -> str:
    for cell in cells:
        if cell_digest(cell) == orphaned:
            return orphaned
    fail(f"orphaned digest {orphaned[:16]} matches no grid cell")
    return ""  # unreachable


def main() -> None:
    root = os.environ.get("STORE_SMOKE_DIR") or tempfile.mkdtemp(
        prefix="store-smoke-"
    )
    os.makedirs(root, exist_ok=True)
    print(f"smoke dir: {root}")
    store = dedupe_drill(root)
    reclamation_drill(root)
    chaos_phase(root)

    stats_path = os.environ.get("STORE_SMOKE_STATS") or os.path.join(
        root, "store_stats.json"
    )
    payload = {
        "store": store.stats(),
        "store2": ResultStore(os.path.join(root, "store2")).stats(),
        "queue2": WorkQueue(
            os.path.join(root, "queue2"), lease_ttl=LEASE_TTL_S
        ).stats(),
    }
    with open(stats_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {stats_path}")


if __name__ == "__main__":
    main()
