#!/usr/bin/env python3
"""Crash/resume smoke for the campaign runner — the CI acceptance drill.

Phase 1, the crash/resume drill:

1. launch ``python -m repro campaign run --grid smoke --jobs 2`` as a
   subprocess;
2. SIGKILL it as soon as the ledger shows the first completed cell —
   a genuine mid-campaign crash, workers and all;
3. confirm ``campaign status`` reports the ledger incomplete;
4. ``campaign resume`` the same grid against the same ledger;
5. assert the grid is now complete, every cell is ``done``, and — the
   point of the ledger — every cell has exactly ONE cell-end record:
   resume never re-ran work that had already finished.

Phase 2, the checkpoint drill: run one long cell with checkpointing on,
SIGKILL the *worker process* (not the campaign) as soon as the first
snapshot is journalled, and assert the retried attempt resumed from the
checkpoint — ``resumed_from_cycle > 0`` in the done record, never cycle
0 — with a fingerprint identical to an uninterrupted serial run.

Exits 0 on success, 1 with a diagnosis on any violated property.
"""

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.campaign import (  # noqa: E402
    CampaignCell,
    CampaignLedger,
    CampaignPolicy,
    campaign_status,
    execute_cell,
    run_campaign,
)

#: Scale for the smoke grid: big enough that 8 cells take several seconds
#: total, so the SIGKILL reliably lands mid-campaign.
SCALE = "8"
POLL_S = 0.05
LAUNCH_TIMEOUT_S = 120


def _campaign(ledger: str, command: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", command,
            "--grid", "smoke", "--ledger", ledger,
            "--scale", SCALE, "--jobs", "2",
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _cell_ends(ledger: str) -> Counter:
    ends = Counter()
    if os.path.exists(ledger):
        for rec in CampaignLedger.read(ledger):
            if rec.get("event") == "cell-end" and rec.get("terminal"):
                ends[rec["cell"]] += 1
    return ends


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _child_pids() -> list:
    """PIDs whose parent is this process (Linux /proc walk)."""
    me = str(os.getpid())
    pids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                data = fh.read()
        except OSError:
            continue
        # Fields after the parenthesized comm: state, ppid, ...
        ppid = data[data.rindex(")") + 1 :].split()[1]
        if ppid != me:
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as fh:
                cmdline = fh.read()
        except OSError:
            continue
        # Spare multiprocessing's bookkeeping helpers; kill only workers.
        if b"resource_tracker" in cmdline or b"semaphore_tracker" in cmdline:
            continue
        pids.append(int(entry))
    return pids


def checkpoint_drill() -> None:
    """SIGKILL a worker mid-cell; assert resume-from-checkpoint."""
    ledger = os.environ.get("CAMPAIGN_CKPT_LEDGER") or os.path.join(
        tempfile.mkdtemp(prefix="campaign-ckpt-"), "ledger.jsonl"
    )
    print(f"checkpoint drill ledger: {ledger}")
    cell = CampaignCell(benchmark="wc", design_point="EXISTING", trip_count=3000)
    ref = execute_cell(CampaignCell.from_spec(cell.spec()))
    print(f"reference fingerprint: {ref.fingerprint()} ({ref.cycles} cycles)")

    killed = threading.Event()

    def assassin() -> None:
        deadline = time.monotonic() + LAUNCH_TIMEOUT_S
        while time.monotonic() < deadline:
            recs = CampaignLedger.read(ledger) if os.path.exists(ledger) else []
            if any(r.get("event") == "cell-ckpt" for r in recs):
                for pid in _child_pids():
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except OSError:
                        pass
                killed.set()
                return
            time.sleep(POLL_S)

    thread = threading.Thread(target=assassin, daemon=True)
    thread.start()
    policy = CampaignPolicy(
        jobs=1, max_attempts=6, backoff_base=0.01, checkpoint_every=8000
    )
    report = run_campaign([cell], policy, ledger_path=ledger)
    thread.join(timeout=5)
    if not killed.is_set():
        fail("no snapshot was journalled before the cell finished")

    outcome = report.outcomes[cell.key()]
    if not outcome.ok:
        fail(f"cell did not complete: {outcome.error_type}: {outcome.error}")
    if outcome.fingerprint() != ref.fingerprint():
        fail(
            "resumed fingerprint diverged: "
            f"{outcome.fingerprint()} != {ref.fingerprint()}"
        )
    records = CampaignLedger.read(ledger)
    deaths = [r for r in records if r.get("status") == "worker-died"]
    if not deaths:
        fail("ledger shows no worker-died record despite the SIGKILL")
    if not all(r.get("transient") for r in deaths):
        fail("worker-died records must be transient (retryable)")
    done = [r for r in records if r.get("status") == "done"]
    if len(done) != 1:
        fail(f"expected exactly one done record, got {len(done)}")
    resumed_from = done[0].get("resumed_from_cycle")
    if not resumed_from or resumed_from <= 0:
        fail(
            "retried attempt restarted from cycle 0 instead of the "
            f"checkpoint (resumed_from_cycle={resumed_from!r})"
        )
    leftovers = [
        f
        for f in os.listdir(ledger + ".ckpt")
        if f.endswith(".ckpt") or f.endswith(".prev")
    ]
    if leftovers:
        fail(f"snapshots not discarded after success: {leftovers}")
    print(
        f"OK: worker SIGKILLed mid-cell; resumed from cycle "
        f"{resumed_from:.0f} of {ref.cycles}, fingerprint intact"
    )


def main() -> None:
    ledger = os.environ.get("CAMPAIGN_SMOKE_LEDGER") or os.path.join(
        tempfile.mkdtemp(prefix="campaign-smoke-"), "ledger.jsonl"
    )
    print(f"ledger: {ledger}")

    # -- 1+2: run, and SIGKILL at the first completed cell -------------
    proc = _campaign(ledger, "run")
    deadline = time.monotonic() + LAUNCH_TIMEOUT_S
    while not _cell_ends(ledger):
        if proc.poll() is not None:
            fail(
                "campaign finished before we could kill it — "
                f"output:\n{proc.stdout.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            fail("no cell completed within the launch timeout")
        time.sleep(POLL_S)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    done_at_kill = set(_cell_ends(ledger))
    print(f"killed campaign mid-flight with {len(done_at_kill)} cell(s) done")

    # -- 3: the ledger must say so -------------------------------------
    status = campaign_status(ledger)
    if status["complete"]:
        fail("status claims the grid is complete right after a mid-flight kill")
    print(
        f"status after kill: {status['by_status']} "
        f"(in-flight: {len(status['in_flight'])})"
    )

    # -- 4: resume ------------------------------------------------------
    proc = _campaign(ledger, "resume")
    out, _ = proc.communicate(timeout=LAUNCH_TIMEOUT_S * 4)
    if proc.returncode != 0:
        fail(f"campaign resume exited {proc.returncode} — output:\n{out}")
    print(out.strip().splitlines()[-1])

    # -- 5: complete, all done, zero re-runs ----------------------------
    status = campaign_status(ledger)
    if not status["complete"]:
        fail(f"grid still incomplete after resume: {status['by_status']}")
    if set(status["by_status"]) != {"done"}:
        fail(f"unexpected terminal statuses: {status['by_status']}")
    ends = _cell_ends(ledger)
    rerun = {cell: n for cell, n in ends.items() if n != 1}
    if rerun:
        fail(f"cells with != 1 terminal record (re-runs!): {rerun}")
    if not done_at_kill <= set(ends):
        fail("cells done at kill time vanished from the final ledger")
    print(
        f"OK: {len(ends)} cells complete, "
        f"{len(done_at_kill)} pre-kill cell(s) untouched by resume"
    )

    # -- phase 2: worker SIGKILL + resume-from-checkpoint ---------------
    checkpoint_drill()


if __name__ == "__main__":
    main()
