#!/usr/bin/env python3
"""Crash/resume smoke for the campaign runner — the CI acceptance drill.

The drill:

1. launch ``python -m repro campaign run --grid smoke --jobs 2`` as a
   subprocess;
2. SIGKILL it as soon as the ledger shows the first completed cell —
   a genuine mid-campaign crash, workers and all;
3. confirm ``campaign status`` reports the ledger incomplete;
4. ``campaign resume`` the same grid against the same ledger;
5. assert the grid is now complete, every cell is ``done``, and — the
   point of the ledger — every cell has exactly ONE cell-end record:
   resume never re-ran work that had already finished.

Exits 0 on success, 1 with a diagnosis on any violated property.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from collections import Counter

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.campaign import CampaignLedger, campaign_status  # noqa: E402

#: Scale for the smoke grid: big enough that 8 cells take several seconds
#: total, so the SIGKILL reliably lands mid-campaign.
SCALE = "8"
POLL_S = 0.05
LAUNCH_TIMEOUT_S = 120


def _campaign(ledger: str, command: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", command,
            "--grid", "smoke", "--ledger", ledger,
            "--scale", SCALE, "--jobs", "2",
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _cell_ends(ledger: str) -> Counter:
    ends = Counter()
    if os.path.exists(ledger):
        for rec in CampaignLedger.read(ledger):
            if rec.get("event") == "cell-end" and rec.get("terminal"):
                ends[rec["cell"]] += 1
    return ends


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ledger = os.environ.get("CAMPAIGN_SMOKE_LEDGER") or os.path.join(
        tempfile.mkdtemp(prefix="campaign-smoke-"), "ledger.jsonl"
    )
    print(f"ledger: {ledger}")

    # -- 1+2: run, and SIGKILL at the first completed cell -------------
    proc = _campaign(ledger, "run")
    deadline = time.monotonic() + LAUNCH_TIMEOUT_S
    while not _cell_ends(ledger):
        if proc.poll() is not None:
            fail(
                "campaign finished before we could kill it — "
                f"output:\n{proc.stdout.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            fail("no cell completed within the launch timeout")
        time.sleep(POLL_S)
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    done_at_kill = set(_cell_ends(ledger))
    print(f"killed campaign mid-flight with {len(done_at_kill)} cell(s) done")

    # -- 3: the ledger must say so -------------------------------------
    status = campaign_status(ledger)
    if status["complete"]:
        fail("status claims the grid is complete right after a mid-flight kill")
    print(
        f"status after kill: {status['by_status']} "
        f"(in-flight: {len(status['in_flight'])})"
    )

    # -- 4: resume ------------------------------------------------------
    proc = _campaign(ledger, "resume")
    out, _ = proc.communicate(timeout=LAUNCH_TIMEOUT_S * 4)
    if proc.returncode != 0:
        fail(f"campaign resume exited {proc.returncode} — output:\n{out}")
    print(out.strip().splitlines()[-1])

    # -- 5: complete, all done, zero re-runs ----------------------------
    status = campaign_status(ledger)
    if not status["complete"]:
        fail(f"grid still incomplete after resume: {status['by_status']}")
    if set(status["by_status"]) != {"done"}:
        fail(f"unexpected terminal statuses: {status['by_status']}")
    ends = _cell_ends(ledger)
    rerun = {cell: n for cell, n in ends.items() if n != 1}
    if rerun:
        fail(f"cells with != 1 terminal record (re-runs!): {rerun}")
    if not done_at_kill <= set(ends):
        fail("cells done at kill time vanished from the final ledger")
    print(
        f"OK: {len(ends)} cells complete, "
        f"{len(done_at_kill)} pre-kill cell(s) untouched by resume"
    )


if __name__ == "__main__":
    main()
