#!/usr/bin/env python3
"""Crash-consistency + degraded-serving drill — the CI chaos job for PR 9.

Phase 1, the crash-point exploration:

    walk every durable-mutation site of every fleet operation (store
    publish, worker commit, lease claim/reclaim, ledger append, snapshot
    rotate) under the three crash models (process kill, torn write,
    power loss) and assert the post-restart invariants — nothing corrupt
    served, nothing acknowledged lost, stale leases reclaimed exactly
    once, quarantine evidence preserved, recovery convergent with the
    never-crashed run.  This is ``python -m repro chaos`` run to
    completion; any violation fails the job with the seeded plan that
    reproduces it.

Phase 2, the degraded-serving drill (in-process, asyncio):

    stand the query service up against a stalling executor and a store
    that can be made to throw ``EIO`` on demand, then verify each
    degradation contract over real HTTP: per-query timeout answers 504;
    an over-bound batch is shed with 503 + ``Retry-After``; a flaky
    store flips ``/healthz`` to ``degraded`` (with the cause) and the
    first clean read flips it back; a drain finishes in-flight work and
    reports clean.

Phase 3, the SIGTERM drill (subprocess):

    launch ``python -m repro serve`` for real, confirm ``/healthz``,
    send SIGTERM, and require a graceful zero exit — the supervisor's
    view of a rolling restart.

Writes a JSON report to ``CHAOS_DRILL_REPORT`` (CI uploads it as an
artifact).  Exits 0 on success, 1 with a diagnosis.
"""

import asyncio
import errno
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.chaos import explore  # noqa: E402
from repro.harness.campaign import CampaignCell, execute_cell  # noqa: E402
from repro.store.service import QueryError, start_service  # noqa: E402
from repro.store.store import ResultStore, cell_digest  # noqa: E402

LAUNCH_TIMEOUT_S = 60


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


# ----------------------------------------------------------------------
# Phase 1: crash-point exploration
# ----------------------------------------------------------------------


def exploration_drill(root: str) -> dict:
    report = explore(root=os.path.join(root, "explore"), progress=print)
    print(report.render())
    if not report.ok:
        fail("crash-point exploration found invariant violations (above)")
    return {
        "operations": len(report.operations),
        "trials": sum(op.trials for op in report.operations),
        "crashes": sum(op.crashes for op in report.operations),
        "violations": 0,
    }


# ----------------------------------------------------------------------
# Phase 2: degraded serving over real HTTP
# ----------------------------------------------------------------------


class StallExecutor:
    """Miss executor that blocks until released — the overload lever."""

    def __init__(self) -> None:
        self.release = asyncio.Event()
        self.stalls = 0

    async def resolve(self, cell, digest):
        self.stalls += 1
        await self.release.wait()
        raise QueryError("stall executor released without a result", status=502)

    def close(self) -> None:
        pass


class FlakyStore:
    """ResultStore proxy whose reads throw EIO while ``sick`` is set."""

    def __init__(self, inner: ResultStore) -> None:
        self._inner = inner
        self.sick = False

    def get(self, digest: str):
        if self.sick:
            raise OSError(errno.EIO, "simulated sick disk", digest)
        return self._inner.get(digest)

    def __getattr__(self, name):
        return getattr(self._inner, name)


async def _http(
    host: str, port: int, method: str, path: str, body=None
) -> tuple:
    """One HTTP/1.1 exchange; returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: drill\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, doc = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(doc)


async def _serve_drill(root: str) -> dict:
    # A populated store: one tiny cell the drill can query as a hit.
    store_root = os.path.join(root, "serve-store")
    store = ResultStore(store_root)
    cell = CampaignCell(benchmark="wc", design_point="HEAVYWT", trip_count=48)
    outcome = execute_cell(cell)
    store.put(cell, outcome, provenance={"campaign": "chaos-drill"})
    digest = cell_digest(cell)

    flaky = FlakyStore(ResultStore(store_root))
    stall = StallExecutor()
    # The query timeout must outlast the store's I/O retry budget
    # (~0.75s of backoff), or the sick-store probe answers 504 before
    # the retries can exhaust into their 503.
    handle = await start_service(
        flaky, stall, port=0, query_timeout=2.0, max_inflight=1
    )
    host, port = handle.host, handle.port
    out: dict = {}
    try:
        # -- hit path sanity + healthy healthz --------------------------
        status, _, doc = await _http(host, port, "GET", "/healthz")
        if status != 200 or doc["state"] != "ok":
            fail(f"healthz not ok at start: {status} {doc}")
        status, _, doc = await _http(
            host, port, "POST", "/query",
            {"queries": [{"benchmark": "wc", "trip_count": 48}]},
        )
        answer = doc["answers"][0]
        if status != 200 or not answer["ok"] or not answer["hit"]:
            fail(f"warm hit query failed: {status} {doc}")

        # -- per-query timeout: a stalled miss answers 504 ---------------
        miss = {"benchmark": "wc", "design_point": "SYNCOPTI", "trip_count": 64}
        status, _, doc = await _http(
            host, port, "POST", "/query", {"queries": [miss]}
        )
        answer = doc["answers"][0]
        if answer.get("status") != 504:
            fail(f"stalled miss should answer 504, got {answer}")
        out["timeout_504"] = True

        # -- load shedding: over-bound batch gets 503 + Retry-After ------
        blocker = asyncio.create_task(
            _http(host, port, "POST", "/query", {"queries": [miss]})
        )
        deadline = time.monotonic() + LAUNCH_TIMEOUT_S
        while handle.service.active < 1:
            if time.monotonic() > deadline:
                fail("blocker query never became active")
            await asyncio.sleep(0.005)
        status, headers, doc = await _http(
            host, port, "POST", "/query", {"queries": [miss]}
        )
        if status != 503 or "retry-after" not in headers:
            fail(f"overload should shed 503 + Retry-After, got {status} {headers}")
        await blocker  # resolves as a 504 answer once the timeout fires
        out["shed_503"] = True

        # -- flaky store: degraded healthz, then recovery ----------------
        flaky.sick = True
        status, _, doc = await _http(
            host, port, "POST", "/query",
            {"queries": [{"benchmark": "wc", "trip_count": 48}]},
        )
        answer = doc["answers"][0]
        if answer.get("status") != 503:
            fail(f"sick store should answer 503 after retries, got {answer}")
        status, _, doc = await _http(host, port, "GET", "/healthz")
        if doc["state"] != "degraded" or "cause" not in doc:
            fail(f"healthz should report degraded with a cause, got {doc}")
        flaky.sick = False
        status, _, doc = await _http(
            host, port, "POST", "/query",
            {"queries": [{"benchmark": "wc", "trip_count": 48}]},
        )
        if not doc["answers"][0]["ok"]:
            fail(f"healed store should answer again, got {doc}")
        status, _, doc = await _http(host, port, "GET", "/healthz")
        if doc["state"] != "ok":
            fail(f"healthz should recover to ok, got {doc}")
        out["degraded_recovery"] = True

        # -- graceful drain ---------------------------------------------
        stall.release.set()  # nothing may linger past the drain
        drained = await handle.drain(grace=10.0)
        if not drained:
            fail("drain did not finish in-flight work within grace")
        out["drained"] = True
        out["metrics"] = handle.metrics.snapshot()
        if out["metrics"]["timeouts"] < 1 or out["metrics"]["shed"] < 1:
            fail(f"metrics did not record the drill: {out['metrics']}")
        if digest and not handle.service.store.contains(digest):
            fail("populated digest vanished during the drill")
    finally:
        stall.release.set()
        await handle.close()
    return out


def serve_drill(root: str) -> dict:
    out = asyncio.run(_serve_drill(root))
    print(
        "OK: serve drill — 504 on timeout, 503+Retry-After on overload, "
        "degraded healthz on EIO with recovery, drain clean"
    )
    return out


# ----------------------------------------------------------------------
# Phase 3: SIGTERM against a real serve process
# ----------------------------------------------------------------------


def sigterm_drill(root: str) -> dict:
    store_root = os.path.join(root, "sigterm-store")
    os.makedirs(store_root, exist_ok=True)
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", store_root, "--port", "0",
            "--jobs", "1", "--drain-grace", "10",
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        deadline = time.monotonic() + LAUNCH_TIMEOUT_S
        while "listening on" not in line:
            if proc.poll() is not None or time.monotonic() > deadline:
                fail(f"serve never came up: {line}{proc.stdout.read()}")
            line = proc.stdout.readline()
        port = int(line.rsplit(":", 1)[1])

        async def probe():
            return await _http("127.0.0.1", port, "GET", "/healthz")

        status, _, doc = asyncio.run(probe())
        if status != 200 or doc["state"] != "ok":
            fail(f"live serve healthz wrong: {status} {doc}")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=LAUNCH_TIMEOUT_S)
        if code != 0:
            fail(
                f"serve exited {code} on SIGTERM (want graceful 0):\n"
                f"{proc.stdout.read()}"
            )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print("OK: sigterm drill — live serve drained and exited 0 on SIGTERM")
    return {"exit_code": 0}


def main() -> None:
    root = os.environ.get("CHAOS_DRILL_DIR") or tempfile.mkdtemp(
        prefix="chaos-drill-"
    )
    os.makedirs(root, exist_ok=True)
    print(f"drill dir: {root}")

    payload = {
        "exploration": exploration_drill(root),
        "serve": serve_drill(root),
        "sigterm": sigterm_drill(root),
    }

    report_path = os.environ.get("CHAOS_DRILL_REPORT") or os.path.join(
        root, "chaos_drill.json"
    )
    with open(report_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {report_path}")


if __name__ == "__main__":
    main()
