#!/usr/bin/env python3
"""Observability smoke — the CI acceptance drill for the repro.obs PR.

Phase 1, the correlated-serve drill: start the async query service
in-process with an obs log and a shared work queue, launch one external
``repro store worker --obs-log`` subprocess on the same log, and POST a
store-miss query.  The answer's correlation ID must chain the full
cross-process story in the shared log — ``serve.query`` span →
``serve.miss`` → ``dispatch.enqueue`` → ``worker.claim`` → ``sim.run``
span (in the worker process) → ``store.publish`` — and a repeat of the
same query must be a ``store.hit`` under a fresh cid.

Phase 2, the metrics drill: run a small campaign plus one in-process
cell under the same process-wide registry, then scrape ``GET /metrics``
and validate the Prometheus text exposition — parseable samples,
cumulative histogram buckets consistent with ``_count``/``_sum``, and
coverage of the serve, executor/dispatch, campaign, and kernel metric
families.  ``GET /metrics.json`` must agree on the query counters.

Phase 3, the span-tooling drill: ``repro obs tail --cid`` replays the
miss chain, ``repro obs report`` rolls the spans up, and ``repro obs
export`` writes a Perfetto-loadable Chrome trace containing the miss
query's slices.

Exits 0 on success, 1 with a diagnosis.
"""

import asyncio
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.harness.campaign import (  # noqa: E402
    CampaignCell,
    CampaignPolicy,
    execute_cell,
    run_campaign,
)
from repro.obs.events import events_for_cid, read_events  # noqa: E402
from repro.obs.spans import rollup, spans_from_events  # noqa: E402
from repro.store.service import serve_forever  # noqa: E402

LAUNCH_TIMEOUT_S = 120
#: Events every store-miss chain must contain, in causal order.
MISS_CHAIN = (
    "serve.miss",
    "dispatch.enqueue",
    "worker.claim",
    "store.publish",
)
#: Metric families /metrics must cover (name prefix -> layer).
REQUIRED_FAMILIES = (
    "repro_serve_queries_total",          # serve
    "repro_serve_query_latency_seconds",  # serve histogram
    "repro_span_seconds",                 # cross-layer spans
    "repro_executor_pending",             # dispatch/executor gauges
    "repro_campaign_attempts_total",      # campaign
    "repro_sim_cycles_per_sec",           # kernel
)


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def _cell(trips: int = 64) -> CampaignCell:
    return CampaignCell(benchmark="wc", design_point="EXISTING", trip_count=trips)


def _post(base: str, doc: dict) -> dict:
    req = urllib.request.Request(
        base + "/query",
        data=json.dumps(doc).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=LAUNCH_TIMEOUT_S) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _get(base: str, path: str) -> bytes:
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.read()


def _worker_proc(store_root: str, queue_root: str, obs_log: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "store", "worker",
            "--store", store_root, "--queue", queue_root,
            "--obs-log", obs_log, "--max-cells", "4",
        ],
        env=env,
        cwd=REPO,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def validate_prometheus(text: str) -> dict:
    """Parse a 0.0.4 text exposition; returns {family: kind}.

    Validates sample syntax, and for every histogram family checks the
    cumulative-bucket invariant: counts are monotone in ``le``, the
    ``+Inf`` bucket equals ``_count``, and ``_sum``/``_count`` exist.
    """
    families: dict = {}
    samples: list = []
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(-?(?:[0-9.eE+-]+|\+?Inf|NaN))$"
    )
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"bad TYPE line: {line!r}")
            families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            fail(f"unexpected comment line: {line!r}")
        m = sample_re.match(line)
        if m is None:
            fail(f"unparseable sample line: {line!r}")
        samples.append((m.group(1), m.group(2) or "", float(m.group(3))))

    for family, kind in families.items():
        if kind != "histogram":
            continue
        # Group buckets by their label set minus ``le``.
        series: dict = {}
        counts: dict = {}
        for name, labels, value in samples:
            if name == f"{family}_bucket":
                le = re.search(r'le="([^"]+)"', labels).group(1)
                rest = re.sub(r'le="[^"]+",?', "", labels).strip("{},")
                series.setdefault(rest, []).append((le, value))
            elif name == f"{family}_count":
                counts[labels.strip("{}")] = value
        if not series:
            fail(f"histogram {family} rendered no buckets")
        for rest, buckets in series.items():
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(f"{family}{{{rest}}} buckets not cumulative: {buckets}")
            if buckets[-1][0] != "+Inf":
                fail(f"{family}{{{rest}}} missing +Inf bucket")
            if rest not in counts or counts[rest] != values[-1]:
                fail(f"{family}{{{rest}}} +Inf bucket != _count")
    return families


async def drill(root: str) -> None:
    store_root = os.path.join(root, "store")
    queue_root = os.path.join(root, "queue")
    obs_log = os.path.join(root, "obs.jsonl")
    loop = asyncio.get_running_loop()
    started: asyncio.Future = loop.create_future()

    def ready(handle) -> None:
        started.set_result(f"http://{handle.host}:{handle.port}")

    server = asyncio.ensure_future(
        serve_forever(
            store_root,
            port=0,
            queue_root=queue_root,
            queue_timeout=LAUNCH_TIMEOUT_S,
            ready=ready,
            obs_log=obs_log,
        )
    )
    base = await asyncio.wait_for(started, timeout=30)
    worker = _worker_proc(store_root, queue_root, obs_log)
    try:
        # ---------------- Phase 1: correlated serve drill ----------------
        query = _cell().spec()
        answer = await loop.run_in_executor(
            None, _post, base, {"queries": [query]}
        )
        miss = answer["answers"][0]
        if not miss.get("ok"):
            fail(f"miss query failed: {miss}")
        if miss.get("hit"):
            fail("first query hit a fresh store")
        miss_cid = miss.get("cid")
        if not miss_cid:
            fail(f"answer carries no correlation id: {miss}")

        answer = await loop.run_in_executor(
            None, _post, base, {"queries": [query]}
        )
        hit = answer["answers"][0]
        if not (hit.get("ok") and hit.get("hit")):
            fail(f"repeat query was not a store hit: {hit}")
        if hit.get("cid") in (None, miss_cid):
            fail(f"repeat query cid not fresh: {hit.get('cid')}")

        events = read_events(obs_log)
        chain = events_for_cid(events, miss_cid)
        names = [e["event"] for e in chain]
        positions = []
        for wanted in MISS_CHAIN:
            if wanted not in names:
                fail(
                    f"cid {miss_cid} chain missing {wanted}; got {names}"
                )
            positions.append(names.index(wanted))
        if positions != sorted(positions):
            fail(f"cid {miss_cid} chain out of causal order: {names}")
        worker_pids = {
            e["pid"] for e in chain if e["event"] in ("worker.claim",)
        }
        if not worker_pids or worker_pids == {os.getpid()}:
            fail("worker.claim did not come from the external worker process")
        miss_spans = [s.name for s in spans_from_events(chain)]
        for wanted in ("serve.query", "store.lookup", "dispatch.wait", "sim.run"):
            if wanted not in miss_spans:
                fail(f"cid {miss_cid} missing span {wanted}; got {miss_spans}")
        hit_chain = events_for_cid(events, hit["cid"])
        if "store.hit" not in [e["event"] for e in hit_chain]:
            fail(f"hit cid {hit['cid']} logged no store.hit event")
        print(
            f"OK: correlated-serve drill — cid {miss_cid} chains "
            f"{len(chain)} events across pids "
            f"{sorted({e['pid'] for e in chain})}, spans {sorted(set(miss_spans))}"
        )

        # ---------------- Phase 2: metrics drill ----------------
        cells = [
            CampaignCell(benchmark=b, design_point="EXISTING", trip_count=48)
            for b in ("fir", "art")
        ]
        await loop.run_in_executor(
            None,
            lambda: run_campaign(
                cells,
                CampaignPolicy(jobs=1),
                ledger_path=os.path.join(root, "campaign.jsonl"),
            ),
        )
        # One in-process run so the kernel family lands in this registry
        # (campaign attempts run in child processes).
        await loop.run_in_executor(None, execute_cell, _cell(48))

        prom = (await loop.run_in_executor(None, _get, base, "/metrics")).decode()
        families = validate_prometheus(prom)
        for family in REQUIRED_FAMILIES:
            base_name = re.sub(r"_(bucket|sum|count)$", "", family)
            if base_name not in families:
                fail(
                    f"/metrics missing family {base_name}; "
                    f"have {sorted(families)}"
                )
        doc = json.loads(
            (await loop.run_in_executor(None, _get, base, "/metrics.json")).decode()
        )
        if doc["serve"]["queries"] < 2 or doc["serve"]["misses"] != 1:
            fail(f"/metrics.json counters wrong: {doc['serve']}")
        print(
            f"OK: metrics drill — {len(families)} Prometheus families, "
            f"histograms consistent, serve counters {doc['serve']['queries']}q/"
            f"{doc['serve']['hits']}h/{doc['serve']['misses']}m"
        )
    finally:
        server.cancel()
        try:
            await server
        except (asyncio.CancelledError, Exception):
            pass
        if worker.poll() is None:
            worker.terminate()
        worker.wait(timeout=30)

    # ---------------- Phase 3: span tooling drill ----------------
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))

    def cli(*argv: str) -> str:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            env=env, cwd=REPO, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            fail(f"repro {' '.join(argv)} exited {proc.returncode}: "
                 f"{proc.stdout}{proc.stderr}")
        return proc.stdout

    tail = cli("obs", "tail", "--log", obs_log, "--cid", miss_cid)
    if "worker.claim" not in tail or "store.publish" not in tail:
        fail(f"obs tail output incomplete:\n{tail}")
    report = cli("obs", "report", "--log", obs_log)
    if "serve.query" not in report or "sim.run" not in report:
        fail(f"obs report missing spans:\n{report}")
    trace_path = os.path.join(root, "obs_trace.json")
    cli("obs", "export", "--log", obs_log, "--out", trace_path, "--cid", miss_cid)
    with open(trace_path) as fh:
        trace = json.load(fh)
    slices = [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("name") in ("serve.query", "sim.run")
    ]
    if not slices:
        fail("Perfetto export has no serve.query/sim.run slices")
    summary = rollup(read_events(obs_log))
    print(
        f"OK: span-tooling drill — tail/report/export cover "
        f"{sorted(summary)} ({len(trace['traceEvents'])} trace events)"
    )


def main() -> None:
    root = os.environ.get("OBS_SMOKE_DIR") or tempfile.mkdtemp(prefix="obs-smoke-")
    os.makedirs(root, exist_ok=True)
    print(f"smoke dir: {root}")
    t0 = time.monotonic()
    asyncio.run(drill(root))
    print(f"obs smoke passed in {time.monotonic() - t0:.1f}s")


if __name__ == "__main__":
    main()
