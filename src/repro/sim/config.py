"""Machine configuration for the simplified dual-core Itanium 2 CMP.

Defaults mirror Table 2 of the paper:

* 6-issue in-order core: 6 ALUs, 4 memory ports, 2 FP units, 3 branch units
* L1I/L1D: 1 cycle, 16 KB, 4-way, 64 B lines, write-through
* L2 (private): 5/7/9 cycles, 256 KB, 8-way, 128 B lines, write-back
* 16 maximum outstanding loads (OzQ depth)
* Shared L3: >12 cycles, 1.5 MB, 12-way, 128 B lines, write-back
* Main memory: 141 cycles
* Coherence: snoop-based write-invalidate
* L3 bus: 16-byte, 1-cycle, 3-stage pipelined, split-transaction,
  round-robin arbitration

All experiment knobs the paper turns (bus latency/width, queue depth, QLU,
interconnect transit delay, stream cache) live here so that every exhibit is
reproducible as a pure configuration delta from the baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.trace.buffer import TraceConfig


@dataclass
class CoreConfig:
    """Issue-width and functional-unit mix of one core (Table 2)."""

    issue_width: int = 6
    n_ialu: int = 6
    n_falu: int = 2
    n_branch: int = 3
    n_mem_ports: int = 4
    #: Commit (writeback/retire) bandwidth, instructions per cycle.  Bounds the
    #: PostL2 component: designs committing many overhead instructions pay here.
    commit_width: int = 6

    def validate(self) -> None:
        for name in ("issue_width", "n_ialu", "n_falu", "n_branch", "n_mem_ports", "commit_width"):
            if getattr(self, name) <= 0:
                raise ValueError(f"core.{name} must be positive")


@dataclass
class CacheConfig:
    """Geometry and access latency of one cache level."""

    size_bytes: int
    assoc: int
    line_bytes: int
    latency: int
    write_back: bool = True

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry fields must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"cache size {self.size_bytes} not divisible by assoc*line "
                f"({self.assoc}*{self.line_bytes})"
            )
        if self.latency < 0:
            raise ValueError("cache latency must be non-negative")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass
class BusConfig:
    """Shared split-transaction L3 bus (Table 2 baseline).

    The paper's sensitivity studies vary ``cycle_latency`` (Figure 10: 4 CPU
    cycles per bus cycle) and ``width_bytes`` (Figure 11: 128 bytes).
    """

    width_bytes: int = 16
    #: CPU cycles per bus cycle (1 in the baseline; 4 in Figures 10/11).
    cycle_latency: int = 1
    stages: int = 3
    pipelined: bool = True

    def validate(self) -> None:
        if self.width_bytes <= 0:
            raise ValueError("bus width must be positive")
        if self.cycle_latency <= 0:
            raise ValueError("bus cycle latency must be positive")
        if self.stages <= 0:
            raise ValueError("bus stage count must be positive")

    def transfer_bus_cycles(self, n_bytes: int) -> int:
        """Bus cycles occupied by a transfer of ``n_bytes`` of payload."""
        if n_bytes <= 0:
            return 1
        return -(-n_bytes // self.width_bytes)  # ceil division


@dataclass
class QueueConfig:
    """Architectural inter-thread queue parameters (Section 4.3)."""

    n_queues: int = 64
    depth: int = 32
    item_bytes: int = 8
    qlu: int = 8

    def validate(self) -> None:
        if self.n_queues <= 0 or self.depth <= 0:
            raise ValueError("queue counts must be positive")
        if self.depth % self.qlu != 0:
            raise ValueError("queue depth must be a multiple of the QLU")


@dataclass
class StreamCacheConfig:
    """The 1 KB fully-associative stream cache of Section 5 (SC variants)."""

    enabled: bool = False
    size_bytes: int = 1024
    item_bytes: int = 8
    #: Consume-to-use latency on a stream-cache hit.
    hit_latency: int = 1

    @property
    def n_entries(self) -> int:
        return self.size_bytes // self.item_bytes

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.item_bytes <= 0:
            raise ValueError("stream cache sizes must be positive")


@dataclass
class DedicatedStoreConfig:
    """HEAVYWT's distributed dedicated backing store + interconnect."""

    #: End-to-end transit latency of the dedicated pipelined interconnect.
    transit_delay: int = 1
    #: Concurrent operations the store services per cycle (Section 4.3).
    ops_per_cycle: int = 4
    #: Consume-to-use latency within the consuming core.
    consume_to_use: int = 1

    def validate(self) -> None:
        if self.transit_delay <= 0 or self.ops_per_cycle <= 0 or self.consume_to_use <= 0:
            raise ValueError("dedicated store parameters must be positive")


@dataclass
class SyncOptiConfig:
    """SYNCOPTI-specific microarchitectural parameters (Section 4.2)."""

    #: Stream address generation latency, overlapped with L1 but serializing
    #: the consume's access to L2 synchronization (paper: 2 cycles).
    stream_addr_latency: int = 2
    #: Cycles after which a consume with no forthcoming write-forward triggers
    #: an L3 access to elicit a writeback from the producer (deadlock avoidance
    #: for streams terminating mid-line, and the only delivery path for
    #: slow queues that never fill a line, e.g. bzip2's outer-loop queue).
    partial_line_timeout: int = 64

    def validate(self) -> None:
        if self.stream_addr_latency < 0 or self.partial_line_timeout <= 0:
            raise ValueError("SYNCOPTI parameters must be positive")


@dataclass
class MachineConfig:
    """Complete configuration of the simulated CMP for one run."""

    n_cores: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, assoc=4, line_bytes=64, latency=1, write_back=False
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, assoc=8, line_bytes=128, latency=7, write_back=True
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1536 * 1024, assoc=12, line_bytes=128, latency=13, write_back=True
        )
    )
    bus: BusConfig = field(default_factory=BusConfig)
    main_memory_latency: int = 141
    #: OzQ depth: maximum outstanding L2 transactions (Table 2: 16 loads).
    ozq_depth: int = 16
    #: L2 cache ports available to recirculating/regular requests per cycle.
    l2_ports: int = 2
    #: Cycles between successive recirculation attempts of a blocked OzQ entry.
    recirculation_interval: int = 4
    queues: QueueConfig = field(default_factory=QueueConfig)
    stream_cache: StreamCacheConfig = field(default_factory=StreamCacheConfig)
    dedicated: DedicatedStoreConfig = field(default_factory=DedicatedStoreConfig)
    syncopti: SyncOptiConfig = field(default_factory=SyncOptiConfig)
    #: Optional seeded fault-injection plan (robustness studies).  ``None``
    #: means the fault-free happy path; a plan is consulted at the narrow
    #: hook points in the bus, memory hierarchy, and queue channels.  Shared
    #: by reference across ``copy()``; each ``Machine`` resets it at
    #: construction so reuse across grid cells stays deterministic.
    faults: Optional[FaultPlan] = None
    #: Optional event-tracing knob, threaded exactly like ``faults``:
    #: ``None`` (the default) means no :class:`~repro.trace.buffer.TraceBuffer`
    #: is ever constructed and every instrumentation site reduces to a single
    #: ``is None`` branch — the zero-overhead contract.
    trace: Optional[TraceConfig] = None
    #: Simulation kernel (stepping engine) name: ``"reference"`` (the
    #: original min-timestamp loop, the differential baseline) or ``"event"``
    #: (event-driven fast path).  Kernels are bit-identical in simulated
    #: outcome — RunStats fingerprints and trace streams match — so this
    #: knob only trades host speed; see :mod:`repro.sim.kernel`.
    kernel: str = "reference"

    def validate(self) -> "MachineConfig":
        """Check invariants; returns self so it chains after construction."""
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        self.core.validate()
        self.l1d.validate()
        self.l2.validate()
        self.l3.validate()
        self.bus.validate()
        self.queues.validate()
        self.stream_cache.validate()
        self.dedicated.validate()
        self.syncopti.validate()
        if self.main_memory_latency <= 0:
            raise ValueError("main memory latency must be positive")
        if self.ozq_depth <= 0:
            raise ValueError("OzQ depth must be positive")
        if self.l2.line_bytes != self.l3.line_bytes:
            raise ValueError("L2 and L3 line sizes must match in this model")
        if self.faults is not None:
            self.faults.validate()
        if self.trace is not None:
            self.trace.validate()
        from repro.sim.kernel import available_kernels  # registry, lazily

        if self.kernel not in available_kernels():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"known: {', '.join(available_kernels())}"
            )
        return self

    def copy(self, **overrides) -> "MachineConfig":
        """Deep-copy this configuration, applying top-level field overrides."""
        dup = dataclasses.replace(
            self,
            core=dataclasses.replace(self.core),
            l1d=dataclasses.replace(self.l1d),
            l2=dataclasses.replace(self.l2),
            l3=dataclasses.replace(self.l3),
            bus=dataclasses.replace(self.bus),
            queues=dataclasses.replace(self.queues),
            stream_cache=dataclasses.replace(self.stream_cache),
            dedicated=dataclasses.replace(self.dedicated),
            syncopti=dataclasses.replace(self.syncopti),
            trace=(
                dataclasses.replace(self.trace) if self.trace is not None else None
            ),
        )
        for key, value in overrides.items():
            if not hasattr(dup, key):
                raise AttributeError(f"MachineConfig has no field {key!r}")
            setattr(dup, key, value)
        return dup

    def describe(self) -> Dict[str, str]:
        """Human-readable parameter table (reproduces Table 2)."""
        core = self.core
        return {
            "Core": (
                f"{core.issue_width}-issue, {core.n_ialu} ALU, {core.n_mem_ports} Memory, "
                f"{core.n_falu} FP, {core.n_branch} Branch"
            ),
            "L1D Cache": (
                f"{self.l1d.latency} cycle, {self.l1d.size_bytes // 1024} KB, "
                f"{self.l1d.assoc}-way, {self.l1d.line_bytes}B lines, "
                + ("Write-back" if self.l1d.write_back else "Write-through")
            ),
            "L2 Cache": (
                f"{self.l2.latency} cycles, {self.l2.size_bytes // 1024} KB, "
                f"{self.l2.assoc}-way, {self.l2.line_bytes}B lines, Write-back"
            ),
            "Maximum Outstanding Loads": str(self.ozq_depth),
            "Shared L3 Cache": (
                f"{self.l3.latency} cycles, {self.l3.size_bytes / (1024 * 1024):.1f} MB, "
                f"{self.l3.assoc}-way, {self.l3.line_bytes}B lines, Write-back"
            ),
            "Main Memory latency": f"{self.main_memory_latency} cycles",
            "Coherence": "Snoop-based, write-invalidate protocol",
            "L3 Bus": (
                f"{self.bus.width_bytes}-byte, {self.bus.cycle_latency}-cycle, "
                f"{self.bus.stages}-stage "
                + ("pipelined, " if self.bus.pipelined else "non-pipelined, ")
                + "split-transaction bus with round robin arbitration"
            ),
            "Simulation kernel": self.kernel,
        }


def baseline_config() -> MachineConfig:
    """The Table 2 baseline machine."""
    return MachineConfig().validate()
