"""Mini-ISA for the simplified Itanium-2-like CMP timing model.

The simulator is trace-driven at the *macro* level: workload kernels emit a
deterministic stream of :class:`DynInst` records (the functional path), and the
core timing model (:mod:`repro.sim.core`) assigns issue/complete timestamps to
each record (the timing path).  ``PRODUCE``/``CONSUME`` are macro-operations
whose realization (a single special instruction, or a ten-instruction
load/store software-queue sequence) is chosen by the active communication
mechanism — see :mod:`repro.core.mechanism`.

Instruction kinds deliberately mirror the resource classes of the baseline
machine in Table 2 of the paper: integer ALUs, FP units, branch units and
memory ports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class InstrKind(enum.Enum):
    """Dynamic instruction categories understood by the core timing model."""

    IALU = "ialu"
    FALU = "falu"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    PRODUCE = "produce"
    CONSUME = "consume"
    FENCE = "fence"
    PREFETCH = "prefetch"
    NOP = "nop"


#: Kinds that occupy a memory port when they issue.
MEMORY_KINDS = frozenset(
    {InstrKind.LOAD, InstrKind.STORE, InstrKind.PREFETCH, InstrKind.PRODUCE, InstrKind.CONSUME}
)

#: Kinds that represent inter-thread communication macro-operations.
COMM_KINDS = frozenset({InstrKind.PRODUCE, InstrKind.CONSUME})

#: Fixed execution latencies (cycles) for non-memory instruction kinds.
EXEC_LATENCY = {
    InstrKind.IALU: 1,
    InstrKind.FALU: 4,
    InstrKind.BRANCH: 1,
    InstrKind.FENCE: 1,
    InstrKind.NOP: 1,
}


@dataclass
class DynInst:
    """A single dynamic instruction in a thread's execution trace.

    Attributes:
        kind: The instruction category.
        dest: Destination register id, or ``None`` for instructions that do
            not define a register (stores, branches, fences).
        srcs: Source register ids read by the instruction.
        addr: Effective byte address for memory instructions (``None``
            otherwise).  Communication macro-ops carry a queue id instead.
        queue: Queue id for ``PRODUCE``/``CONSUME`` macro-ops.
        latency: Optional per-instruction execution latency override.
        is_overhead: True when the instruction exists only to implement
            communication (sync/flag/pointer-update/fence micro-ops).  Used
            for COMM-OP accounting and the Figure 8 instruction ratios.
        tag: Free-form label used by tests and debugging ("flag_load", ...).
    """

    kind: InstrKind
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    addr: Optional[int] = None
    queue: Optional[int] = None
    latency: Optional[int] = None
    is_overhead: bool = False
    tag: str = ""

    def is_memory(self) -> bool:
        """Return True when this instruction occupies a memory port."""
        return self.kind in MEMORY_KINDS

    def is_comm(self) -> bool:
        """Return True for PRODUCE/CONSUME macro-operations."""
        return self.kind in COMM_KINDS

    def exec_latency(self) -> int:
        """Execution latency for non-memory instructions."""
        if self.latency is not None:
            return self.latency
        return EXEC_LATENCY.get(self.kind, 1)


# Register-id conventions used by the kernel builders.  The exact numbering is
# arbitrary (the scoreboard only needs identity), but keeping kernels and the
# comm-op expansions in disjoint ranges avoids accidental false dependences.
KERNEL_REG_BASE = 0
COMM_REG_BASE = 1024


@dataclass
class QueueSpec:
    """Static architectural description of one inter-thread queue.

    Attributes:
        queue_id: Architectural queue number (0..n_queues-1).
        depth: Number of queue slots (paper default: 32).
        item_bytes: Size of one queue datum (paper: 8 bytes).
        qlu: Queue layout unit — queue entries per cache line (Figure 5).
    """

    queue_id: int
    depth: int = 32
    item_bytes: int = 8
    qlu: int = 8

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ValueError("queue depth must be positive")
        if self.item_bytes <= 0:
            raise ValueError("queue item size must be positive")
        if self.qlu <= 0:
            raise ValueError("queue layout unit must be positive")
        if self.depth % self.qlu != 0:
            raise ValueError(
                f"queue depth {self.depth} must be a multiple of the QLU {self.qlu}"
            )

    @property
    def lines(self) -> int:
        """Number of distinct cache lines backing this queue."""
        return self.depth // self.qlu

    def slot_line(self, slot: int) -> int:
        """Cache-line index (within the queue's backing region) of a slot."""
        if not 0 <= slot < self.depth:
            raise ValueError(f"slot {slot} out of range for depth {self.depth}")
        return slot // self.qlu

    def line_slots(self, line: int) -> range:
        """The range of slots that live on backing line ``line``."""
        if not 0 <= line < self.lines:
            raise ValueError(f"line {line} out of range for {self.lines} lines")
        return range(line * self.qlu, (line + 1) * self.qlu)


def ialu(dest: int, *srcs: int, tag: str = "") -> DynInst:
    """Convenience constructor for an integer ALU instruction."""
    return DynInst(InstrKind.IALU, dest=dest, srcs=tuple(srcs), tag=tag)


def falu(dest: int, *srcs: int, tag: str = "") -> DynInst:
    """Convenience constructor for a floating-point instruction."""
    return DynInst(InstrKind.FALU, dest=dest, srcs=tuple(srcs), tag=tag)


def branch(*srcs: int, tag: str = "") -> DynInst:
    """Convenience constructor for a branch instruction."""
    return DynInst(InstrKind.BRANCH, srcs=tuple(srcs), tag=tag)


def load(dest: int, addr: int, *srcs: int, tag: str = "") -> DynInst:
    """Convenience constructor for a load from ``addr``."""
    return DynInst(InstrKind.LOAD, dest=dest, srcs=tuple(srcs), addr=addr, tag=tag)


def store(addr: int, *srcs: int, tag: str = "") -> DynInst:
    """Convenience constructor for a store to ``addr``."""
    return DynInst(InstrKind.STORE, srcs=tuple(srcs), addr=addr, tag=tag)


def produce(queue: int, *srcs: int, tag: str = "") -> DynInst:
    """Convenience constructor for a PRODUCE macro-op on ``queue``."""
    return DynInst(InstrKind.PRODUCE, srcs=tuple(srcs), queue=queue, tag=tag)


def consume(dest: int, queue: int, tag: str = "") -> DynInst:
    """Convenience constructor for a CONSUME macro-op on ``queue``."""
    return DynInst(InstrKind.CONSUME, dest=dest, queue=queue, tag=tag)


def fence(tag: str = "") -> DynInst:
    """Convenience constructor for a memory fence."""
    return DynInst(InstrKind.FENCE, tag=tag)
