"""Busy-interval calendars backing shared-resource reservation.

The shared bus answers one query: *given a request at time ``at`` for
``hold`` cycles, when is the first gap that fits?* (first-fit, because a
split-transaction bus interleaves unrelated transactions between the address
and data phases of an outstanding miss — see :class:`repro.mem.bus.SharedBus`).
How the busy intervals are *stored* is a pure host-speed concern, so the
storage lives behind this small calendar interface and each simulation
kernel installs the implementation it wants
(:meth:`repro.sim.kernel.base.SimKernel.install`):

* :class:`LinearTimeline` — the original list-of-intervals with a linear
  first-fit walk and a rebuild-the-list prune.  O(intervals) per call; the
  profile shows this walk is ~80% of host time on bus-heavy design points.
* :class:`IndexedTimeline` — *merged* disjoint intervals in parallel
  start/end arrays; a ``bisect`` over the (sorted) end array jumps straight
  to the first interval that can conflict, and pruning pops whole intervals
  off the front.  O(log intervals) per call.

**Grant-identity.**  Every implementation must return identical grant times
for identical call sequences — kernels may swap calendars freely without
perturbing simulated timing.  Why the indexed form is exact, not
approximate:

* *Merging touching intervals is lossless.*  Reserved holds are strictly
  positive (``BusConfig.transfer_bus_cycles`` ≥ 1 beat), so a zero-width
  gap between two touching intervals can never satisfy a request; treating
  the pair as one interval yields the same first fit.
* *Pruning is conservative either way.*  The co-simulator bounds how far
  back in time requests may arrive (:data:`PRUNE_MARGIN` behind the newest
  request seen), so intervals wholly behind the cutoff can never affect a
  future grant — whether they are dropped eagerly (linear), lazily
  (indexed), or kept forever, grants are the same.

``tests/sim/test_kernel.py`` pins the equivalence with a hypothesis
round-trip over random reserve sequences.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Tuple

#: Cycles of history kept behind the newest request before pruning.  The
#: co-simulator's conservative min-timestamp policy bounds how far back in
#: time requests may arrive; this margin is far beyond that bound.
PRUNE_MARGIN = 20000.0


class BusTimeline:
    """Interface: a first-fit reservation calendar over busy intervals."""

    def reserve(self, at: float, hold: float, reserve: bool = True) -> float:
        """First-fit gap allocation of ``hold`` cycles starting at ``at``.

        With ``reserve=False`` the gap is found but not claimed (background
        transfers use idle bandwidth without delaying demand traffic).
        """
        raise NotImplementedError

    def intervals(self) -> List[Tuple[float, float]]:
        """Busy intervals as sorted ``(start, end)`` pairs (for conversion)."""
        raise NotImplementedError

    @classmethod
    def from_timeline(cls, other: "BusTimeline") -> "BusTimeline":
        """Build an equivalent calendar from another implementation's state.

        Used when a kernel installs its calendar into a machine that already
        has reservations booked — notably checkpoint resume, where the
        pickled machine carries whichever calendar the snapshotting kernel
        used and the resuming kernel may differ.
        """
        new = cls()
        new.load(other.intervals(), other.prune_before)
        return new

    def load(self, intervals, prune_before: float) -> None:
        raise NotImplementedError


class LinearTimeline(BusTimeline):
    """The original storage: a sorted interval list walked linearly."""

    def __init__(self) -> None:
        # Busy intervals (start, end), kept sorted by start.  Grants are
        # gap-filled, not appended, so the list stays pairwise disjoint.
        self.busy: List[Tuple[float, float]] = []
        self.prune_before = 0.0

    def reserve(self, at: float, hold: float, reserve: bool = True) -> float:
        busy = self.busy
        # Prune intervals that can no longer affect any request.
        if busy and at - PRUNE_MARGIN > self.prune_before:
            self.prune_before = at - PRUNE_MARGIN
            cutoff = self.prune_before
            keep = [iv for iv in busy if iv[1] >= cutoff]
            busy[:] = keep
        t = at
        i = 0
        n = len(busy)
        # Find the first interval that could overlap [t, t+hold).
        while i < n and busy[i][1] <= t:
            i += 1
        while i < n and busy[i][0] < t + hold:
            t = max(t, busy[i][1])
            i += 1
        if reserve:
            busy.insert(i, (t, t + hold))
        return t

    def intervals(self) -> List[Tuple[float, float]]:
        return list(self.busy)

    def load(self, intervals, prune_before: float) -> None:
        self.busy = [(float(s), float(e)) for s, e in intervals]
        self.prune_before = prune_before


class IndexedTimeline(BusTimeline):
    """Merged disjoint intervals in parallel arrays, searched by bisect.

    Invariants: ``starts`` is strictly increasing, ``ends[i] > starts[i]``,
    and ``starts[i+1] > ends[i]`` (a true gap between successive intervals —
    touching neighbours are merged on insert).  Disjointness makes ``ends``
    sorted too, so the first interval ending after ``t`` is one bisect away.
    """

    def __init__(self) -> None:
        self.starts: List[float] = []
        self.ends: List[float] = []
        self.prune_before = 0.0

    def reserve(self, at: float, hold: float, reserve: bool = True) -> float:
        starts = self.starts
        ends = self.ends
        if starts and at - PRUNE_MARGIN > self.prune_before:
            self.prune_before = at - PRUNE_MARGIN
            k = bisect_left(ends, self.prune_before)
            if k:
                del starts[:k]
                del ends[:k]
        t = at
        end = at + hold
        n = len(starts)
        # First interval ending after t is the first possible conflict.
        i = bisect_right(ends, t)
        while i < n and starts[i] < end:
            t = ends[i]  # > t: ends is sorted and ends[i] > t by bisect
            end = t + hold
            i += 1
        if reserve:
            merge_left = i > 0 and ends[i - 1] == t
            merge_right = i < n and starts[i] == end
            if merge_left and merge_right:
                ends[i - 1] = ends[i]
                del starts[i]
                del ends[i]
            elif merge_left:
                ends[i - 1] = end
            elif merge_right:
                starts[i] = t
            else:
                starts.insert(i, t)
                ends.insert(i, end)
        return t

    def intervals(self) -> List[Tuple[float, float]]:
        return list(zip(self.starts, self.ends))

    def load(self, intervals, prune_before: float) -> None:
        starts: List[float] = []
        ends: List[float] = []
        for s, e in intervals:  # merge touching neighbours while loading
            if ends and s <= ends[-1]:
                if e > ends[-1]:
                    ends[-1] = e
            else:
                starts.append(float(s))
                ends.append(float(e))
        self.starts = starts
        self.ends = ends
        self.prune_before = prune_before
