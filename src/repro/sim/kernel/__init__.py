"""repro.sim.kernel — pluggable co-simulation stepping engines.

Public surface:

* :class:`~repro.sim.kernel.base.SimKernel` — the engine interface plus all
  shared machinery (runner book-keeping, yield protocol, wall-clock
  watchdog, post-mortems, checkpoint hook).
* :func:`~repro.sim.kernel.base.create_kernel` /
  :func:`~repro.sim.kernel.base.available_kernels` /
  :func:`~repro.sim.kernel.base.kernel_class` — the registry.
* :class:`~repro.sim.kernel.reference.ReferenceKernel` (``"reference"``) —
  the original min-timestamp loop, the differential baseline.
* :class:`~repro.sim.kernel.event.EventKernel` (``"event"``) — the
  event-driven fast path (wakeup heap + indexed bus calendar).

Pick one with ``MachineConfig(kernel=...)``, ``Machine.run(kernel=...)``,
or ``python -m repro ... --kernel event``; see DESIGN.md §11 for the
differential guarantee kernels must uphold.
"""

from repro.sim.kernel.base import (
    ContextProbe,
    CoreRunner,
    DeadlockError,
    SimKernel,
    SimulationAbortedError,
    SimulationError,
    SimulationLimitError,
    WALL_CLOCK_CHECK_INTERVAL,
    WALL_CLOCK_CHECK_MAX_INTERVAL,
    WALL_CLOCK_CHECK_MIN_INTERVAL,
    WALL_CLOCK_CHECK_TARGET,
    WallClockExceededError,
    available_kernels,
    create_kernel,
    kernel_class,
    observe_run,
    register_kernel,
)
from repro.sim.kernel.event import EventKernel
from repro.sim.kernel.reference import ReferenceKernel
from repro.sim.kernel.timeline import (
    BusTimeline,
    IndexedTimeline,
    LinearTimeline,
)

#: Registered kernel names, for CLI choices and config validation.
KERNEL_NAMES = tuple(available_kernels())

__all__ = [
    "BusTimeline",
    "ContextProbe",
    "CoreRunner",
    "DeadlockError",
    "EventKernel",
    "IndexedTimeline",
    "KERNEL_NAMES",
    "LinearTimeline",
    "ReferenceKernel",
    "SimKernel",
    "SimulationAbortedError",
    "SimulationError",
    "SimulationLimitError",
    "WALL_CLOCK_CHECK_INTERVAL",
    "WALL_CLOCK_CHECK_MAX_INTERVAL",
    "WALL_CLOCK_CHECK_MIN_INTERVAL",
    "WALL_CLOCK_CHECK_TARGET",
    "WallClockExceededError",
    "available_kernels",
    "create_kernel",
    "kernel_class",
    "observe_run",
    "register_kernel",
]
