"""The :class:`SimKernel` interface: pluggable co-simulation stepping engines.

A *kernel* owns the loop that drives the per-core generators to completion.
Everything around that loop — the yield protocol, per-runner book-keeping,
the wall-clock watchdog, failure forensics, and the checkpoint hook — is
shared infrastructure provided here, so every kernel exposes the identical
contract to :class:`~repro.sim.machine.Machine`, the harness, and the
checkpoint subsystem:

* attach generators at construction (or restore runners from a snapshot),
* ``run()`` to completion, raising the same :class:`SimulationError`
  subclasses with the same structured post-mortems,
* bit-identical :class:`~repro.sim.stats.RunStats` fingerprints and trace
  streams regardless of which kernel stepped the run.

Two kernels are registered:

* ``"reference"`` (:mod:`repro.sim.kernel.reference`) — the original
  conservative min-timestamp loop, kept byte-for-byte as the trusted
  baseline every other kernel is differentially tested against.
* ``"event"`` (:mod:`repro.sim.kernel.event`) — an event-driven fast path:
  a heap of next-wakeup times plus incremental runnable/blocked
  book-keeping at the stepping level, and an event-indexed reservation
  calendar installed into the shared bus so idle spans are skipped instead
  of walked (:mod:`repro.sim.kernel.timeline`).

**Equivalence contract.**  Kernels may differ only in *host* cost.  They
must issue the same sequence of ``generator.send`` calls with the same
resume values, which pins the simulated outcome bit for bit.  The policy
both implement: wake every blocked runner whose predicate holds (in core-id
order) or whose deadline has provably passed; when nothing is runnable,
fire the earliest deadline (ties to the lowest core id); otherwise step the
runnable runner with the smallest local time (ties to the lowest core id).
Block predicates must be *pure* functions of shared simulation state — the
event kernel is free to evaluate them fewer times than the reference kernel.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple, Type

from repro.sim.forensics import ChannelDump, CoreDump, PostMortem

#: Signature of the optional machine-context probe: returns (channel
#: snapshots, fault-injection records[, per-core trace tail]) for
#: post-mortem construction — the third element is optional so probes
#: written before the tracing subsystem keep working.
ContextProbe = Callable[[], Tuple[Sequence[ChannelDump], Sequence[object]]]

#: Scheduler steps before the *first* wall-clock watchdog check.  The check
#: cadence is time-based from then on: after each check the step interval is
#: rescaled so successive checks land roughly :data:`WALL_CLOCK_CHECK_TARGET`
#: host seconds apart, whatever the kernel's per-step cost.  A fast kernel
#: therefore checks after more steps and a slow one after fewer, and
#: :class:`WallClockExceededError` fires within the same host-latency bound
#: on every kernel.
WALL_CLOCK_CHECK_INTERVAL = 256

#: Target host seconds between wall-clock watchdog checks.
WALL_CLOCK_CHECK_TARGET = 0.05

#: Bounds on the adaptive check interval (steps).  The floor keeps a
#: pathologically slow step from degrading to per-step timer calls; the
#: ceiling bounds how far one adaptation can overshoot on a host hiccup.
WALL_CLOCK_CHECK_MIN_INTERVAL = 16
WALL_CLOCK_CHECK_MAX_INTERVAL = 1 << 16


class SimulationError(RuntimeError):
    """Base class for kernel failures; carries a structured post-mortem."""

    def __init__(self, message: str, post_mortem: Optional[PostMortem] = None) -> None:
        super().__init__(message)
        self.post_mortem = post_mortem


class DeadlockError(SimulationError):
    """All live cores are blocked and no deadline can fire."""


class SimulationLimitError(SimulationError):
    """The kernel exceeded its step budget (runaway program)."""


class WallClockExceededError(SimulationError):
    """The simulation outlived its host wall-clock budget.

    Raised by the kernel's in-process watchdog (time-based cadence, see
    :data:`WALL_CLOCK_CHECK_TARGET`), so the post-mortem is built while the
    run's channel and core state are still alive — the campaign runner
    records it in a :class:`~repro.harness.runner.TimedOutRun` before the
    pool's hard kill would have destroyed all forensics.

    Unlike deadlocks and step-limit overruns — which are functions of the
    (seeded, deterministic) simulation alone and therefore reproduce on every
    retry — a wall-clock overrun depends on host load, so it is classified
    *transient* by :func:`repro.faults.classify.classify_error_type`.
    """

    def __init__(
        self,
        message: str,
        post_mortem: Optional[PostMortem] = None,
        budget: float = 0.0,
        elapsed: float = 0.0,
    ) -> None:
        super().__init__(message, post_mortem=post_mortem)
        self.budget = budget
        self.elapsed = elapsed


class SimulationAbortedError(SimulationError):
    """An external abort probe asked the run to stop.

    Raised at the wall-clock watchdog's cadence when the kernel's ``abort``
    callable returns a reason string: queue workers use it to fence a
    simulation whose lease was reclaimed (a zombie burning host time on a
    cell someone else now owns), and the chaos drill uses it to bound
    exploratory runs.  Like a wall-clock overrun it says nothing about the
    simulation itself, so the failure classifier treats it as transient.
    """


class _State(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class CoreRunner:
    """Book-keeping wrapper around one core generator."""

    core_id: int
    gen: Generator
    time: float = 0.0
    state: _State = _State.RUNNABLE
    predicate: Optional[Callable[[], bool]] = None
    deadline: Optional[float] = None
    resume_value: Optional[str] = None
    steps: int = 0
    #: Scheduler step / local time at this runner's most recent advance.
    last_progress_step: int = 0
    last_progress_time: float = 0.0


class SimKernel:
    """Shared machinery of every stepping engine; subclasses supply ``run``.

    The constructor signature is the old ``Scheduler`` one — every caller
    (machine, checkpoint resume, tests driving raw generators) builds a
    kernel exactly the way it used to build a scheduler.
    """

    #: Registry name; set by :func:`register_kernel`.
    name: str = "abstract"

    def __init__(
        self,
        generators,
        max_steps: int = 50_000_000,
        context_probe: Optional[ContextProbe] = None,
        trace=None,
        wall_clock_budget: Optional[float] = None,
        checkpoint=None,
        abort: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        self.runners: List[CoreRunner] = [
            CoreRunner(core_id=i, gen=g) for i, g in enumerate(generators)
        ]
        self.max_steps = max_steps
        self.total_steps = 0
        self.context_probe = context_probe
        #: Host seconds this run may consume (None = unbounded).  The clock
        #: starts at construction so setup cost counts against the budget.
        self.wall_clock_budget = wall_clock_budget
        #: External-cancellation probe: returns a reason string to stop the
        #: run (:class:`SimulationAbortedError`) or ``None`` to continue.
        #: Checked at the watchdog cadence, so it shares the watchdog's
        #: zero-overhead contract — when both it and the budget are ``None``
        #: the hot loop keeps its single dead branch.
        self.abort = abort
        self._wall_clock_start = (
            time.monotonic() if (wall_clock_budget or abort is not None) else None
        )
        self._wall_clock_last_check = self._wall_clock_start
        self._wall_clock_interval = WALL_CLOCK_CHECK_INTERVAL
        self._wall_clock_next_step = WALL_CLOCK_CHECK_INTERVAL
        #: Optional :class:`~repro.trace.buffer.TraceBuffer`; ``None`` keeps
        #: every kernel hook to a single branch (zero-overhead contract).
        self.trace = trace
        #: Optional :class:`~repro.sim.checkpoint.Checkpointer`, pinned like
        #: ``trace``: ``None`` (the default) reduces the hook to one branch
        #: per kernel step.  When set, its ``on_step`` runs after every
        #: step and snapshots the machine at due safe points.  Checkpointing
        #: never mutates simulation state, so enabling it cannot change
        #: RunStats or the trace stream.
        self.checkpoint = checkpoint

    # ------------------------------------------------------------------
    # The engine — subclasses implement the policy loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Drive all cores to completion."""
        raise NotImplementedError

    @classmethod
    def timeline_class(cls):
        """The busy-interval calendar class this kernel installs in shared
        resources (see :meth:`install`).  ``None`` keeps whatever the
        resource was built with (the reference structures)."""
        return None

    def install(self, machine) -> None:
        """Swap the machine's resource calendars for this kernel's.

        Called by :meth:`Machine.run <repro.sim.machine.Machine.run>` (and
        by checkpoint resume) before the first step.  A calendar swap is a
        pure data-structure conversion — reservations already booked carry
        over, and every calendar implementation answers reservation queries
        identically (:mod:`repro.sim.kernel.timeline`) — so installing a
        kernel can never change simulated timing, only host speed.
        """
        tl_cls = self.timeline_class()
        if tl_cls is None or machine is None:
            return
        bus = getattr(getattr(machine, "mem", None), "bus", None)
        if bus is not None and not isinstance(bus.timeline, tl_cls):
            bus.timeline = tl_cls.from_timeline(bus.timeline)

    # ------------------------------------------------------------------
    # Shared wake / step primitives
    # ------------------------------------------------------------------

    def _others_past(self, runner: CoreRunner, deadline: float) -> bool:
        """True when no other core can produce an event before ``deadline``."""
        for other in self.runners:
            if other is runner:
                continue
            if other.state is _State.DONE:
                continue
            if other.state is _State.RUNNABLE and other.time <= deadline:
                return False
            if other.state is _State.BLOCKED:
                # A blocked peer could be woken by us later; treat its
                # current time as its earliest possible event time.
                if other.time <= deadline:
                    return False
        return True

    def _wake(self, runner: CoreRunner, value: str) -> None:
        runner.state = _State.RUNNABLE
        runner.resume_value = value
        runner.predicate = None
        runner.deadline = None
        if self.trace is not None:
            self.trace.emit(
                "sched.resume", runner.time, core=runner.core_id, status=value
            )

    def _step(self, runner: CoreRunner) -> None:
        self.total_steps += 1
        runner.steps += 1
        runner.last_progress_step = self.total_steps
        if self.total_steps > self.max_steps:
            self._raise_limit()
        if (
            self._wall_clock_start is not None
            and self.total_steps >= self._wall_clock_next_step
        ):
            self._check_wall_clock()
        try:
            msg = runner.gen.send(runner.resume_value)
        except StopIteration:
            runner.state = _State.DONE
            runner.last_progress_time = runner.time
            if self.trace is not None:
                self.trace.emit("sched.done", runner.time, core=runner.core_id)
            return
        finally:
            runner.resume_value = None
        if not isinstance(msg, tuple) or not msg:
            raise TypeError(f"core {runner.core_id} yielded malformed message {msg!r}")
        kind = msg[0]
        if kind == "time":
            runner.time = max(runner.time, float(msg[1]))
            runner.last_progress_time = runner.time
        elif kind == "block":
            _, predicate, deadline = msg
            if predicate():
                runner.resume_value = "ok"  # condition already satisfied
            else:
                runner.state = _State.BLOCKED
                runner.predicate = predicate
                runner.deadline = deadline
                if self.trace is not None:
                    self.trace.emit(
                        "sched.block",
                        runner.time,
                        core=runner.core_id,
                        deadline=deadline,
                    )
        else:
            raise ValueError(f"core {runner.core_id} yielded unknown message {msg!r}")

    # ------------------------------------------------------------------
    # Failure forensics
    # ------------------------------------------------------------------

    def build_post_mortem(self, reason: str) -> PostMortem:
        """Snapshot kernel + machine context into a structured report."""
        cores = [
            CoreDump(
                core_id=r.core_id,
                state=r.state.value,
                time=r.time,
                steps=r.steps,
                last_progress_step=r.last_progress_step,
                last_progress_time=r.last_progress_time,
                deadline=r.deadline,
            )
            for r in self.runners
        ]
        channels: List[ChannelDump] = []
        injections: List[object] = []
        trace_tail: dict = {}
        if self.context_probe is not None:
            probed = self.context_probe()
            channels = list(probed[0])
            injections = list(probed[1])
            if len(probed) > 2:  # older two-tuple probes stay supported
                trace_tail = dict(probed[2])
        return PostMortem(
            reason=reason,
            total_steps=self.total_steps,
            cores=cores,
            channels=channels,
            injections=injections,
            trace_tail=trace_tail,
        )

    def _raise_deadlock(self) -> None:
        blocked = [r.core_id for r in self.runners if r.state is _State.BLOCKED]
        pm = self.build_post_mortem("deadlock")
        raise DeadlockError(
            f"cores {blocked} are blocked with no satisfiable predicate — "
            "produce/consume counts are mismatched or a queue dependency "
            f"cycle exists\n{pm.render()}",
            post_mortem=pm,
        )

    def _raise_limit(self) -> None:
        pm = self.build_post_mortem("step-limit")
        raise SimulationLimitError(
            f"exceeded {self.max_steps} scheduler steps; "
            f"suspected runaway workload\n{pm.render()}",
            post_mortem=pm,
        )

    def _check_wall_clock(self) -> None:
        """One watchdog check, then re-aim the next one ~TARGET seconds out.

        The adaptive cadence is a host-side concern only: checks never
        mutate simulation state, so checking more or less often cannot
        change RunStats or the trace stream — it only bounds how long past
        its budget a wedged run can live.
        """
        if self.abort is not None:
            reason = self.abort()
            if reason is not None:
                pm = self.build_post_mortem("aborted")
                raise SimulationAbortedError(
                    f"run aborted after {self.total_steps} steps: {reason}"
                    f"\n{pm.render()}",
                    post_mortem=pm,
                )
        now = time.monotonic()
        elapsed = now - self._wall_clock_start
        if self.wall_clock_budget is not None and elapsed > self.wall_clock_budget:
            pm = self.build_post_mortem("wall-clock")
            raise WallClockExceededError(
                f"exceeded the {self.wall_clock_budget:g}s wall-clock budget after "
                f"{elapsed:.2f}s and {self.total_steps} steps — the run is wedged "
                f"or far too slow for its deadline\n{pm.render()}",
                post_mortem=pm,
                budget=self.wall_clock_budget,
                elapsed=elapsed,
            )
        since_last = now - self._wall_clock_last_check
        self._wall_clock_last_check = now
        interval = self._wall_clock_interval
        if since_last < WALL_CLOCK_CHECK_TARGET / 2:
            interval = min(interval * 2, WALL_CLOCK_CHECK_MAX_INTERVAL)
        elif since_last > WALL_CLOCK_CHECK_TARGET * 2:
            interval = max(interval // 2, WALL_CLOCK_CHECK_MIN_INTERVAL)
        self._wall_clock_interval = interval
        self._wall_clock_next_step = self.total_steps + interval


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type[SimKernel]] = {}


def register_kernel(name: str):
    """Class decorator registering a kernel under ``name``."""

    def decorate(cls: Type[SimKernel]) -> Type[SimKernel]:
        if name in _REGISTRY:
            raise ValueError(f"kernel {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorate


def kernel_class(name: str) -> Type[SimKernel]:
    """Look up a registered kernel class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from None


def create_kernel(name: str, generators, **kwargs) -> SimKernel:
    """Instantiate a registered kernel by name (Scheduler-compatible args)."""
    return kernel_class(name)(generators, **kwargs)


def available_kernels():
    """Names of all registered kernels."""
    return sorted(_REGISTRY)


def observe_run(kernel_name: str, stats) -> None:
    """Fold one completed run's throughput into ``repro.obs``.

    Called by :meth:`Machine.run` after stamping ``host_seconds`` — i.e.
    once per simulation, entirely outside the stepping loop, in whatever
    process ran the kernel (a serve pool worker, a fleet worker, the
    campaign parent).  Observes ``simulated_cycles_per_sec`` into the
    per-kernel registry histogram and logs a ``kernel.run`` event tagged
    with the ambient correlation ID.  When obs is disabled the entire
    cost is the ``get_state()`` check, preserving the kernel subsystem's
    zero-overhead contract (``host_seconds`` itself stays out of
    fingerprints, so none of this perturbs determinism).
    """
    from repro.obs import runtime as _obs
    from repro.obs.registry import CYCLES_PER_SEC_BUCKETS

    state = _obs.get_state()
    if state is None:
        return
    cps = stats.simulated_cycles_per_sec
    state.registry.histogram(
        "repro_sim_cycles_per_sec",
        "Simulated cycles per host second, per kernel",
        buckets=CYCLES_PER_SEC_BUCKETS,
        kernel=kernel_name,
    ).observe(cps)
    state.registry.counter(
        "repro_sim_runs_total", "Completed simulation runs", kernel=kernel_name
    ).inc()
    state.emit(
        "kernel.run",
        cid=_obs.current_cid(),
        kernel=kernel_name,
        cycles=stats.cycles,
        cycles_per_sec=round(cps, 1),
        host_seconds=round(stats.host_seconds, 6),
    )
