"""The ``reference`` kernel: the original conservative min-timestamp loop.

This is the trusted baseline — the stepping loop is kept exactly as it
shipped in ``repro.sim.cosim.Scheduler`` (which now aliases this class), and
every other kernel is differentially tested against it.  Per iteration it
re-scans all runners for wakeable predicates, rebuilds the runnable set, and
takes a linear ``min`` over it; the cost is O(cores) per step, which is fine
for the dual-core figure reproduction and intentionally left untouched.
"""

from __future__ import annotations

from repro.sim.kernel.base import SimKernel, _State, register_kernel
from repro.sim.kernel.timeline import LinearTimeline


@register_kernel("reference")
class ReferenceKernel(SimKernel):
    """Min-timestamp scheduler over a set of core generators."""

    @classmethod
    def timeline_class(cls):
        """The original list-walk calendar — so installing the reference
        kernel restores the exact seed-era machinery even on a machine (or
        snapshot) previously driven by another kernel."""
        return LinearTimeline

    def run(self) -> None:
        """Drive all cores to completion."""
        while True:
            self._wake_ready()
            runnable = [r for r in self.runners if r.state is _State.RUNNABLE]
            if not runnable:
                if all(r.state is _State.DONE for r in self.runners):
                    return
                if not self._fire_timeout():
                    self._raise_deadlock()
                continue
            runner = min(runnable, key=lambda r: r.time)
            self._step(runner)
            if self.checkpoint is not None:
                self.checkpoint.on_step(self)

    # ------------------------------------------------------------------

    def _wake_ready(self) -> None:
        for r in self.runners:
            if r.state is not _State.BLOCKED:
                continue
            if r.predicate is not None and r.predicate():
                self._wake(r, "ok")
            elif r.deadline is not None and self._others_past(r, r.deadline):
                self._wake(r, "timeout")

    def _fire_timeout(self) -> bool:
        """With everyone blocked, fire the earliest deadline, if any.

        Ties (equal deadlines) resolve to the lowest core id: ``min`` is
        stable and runners are kept in core-id order, so repeated runs fire
        the same runner first — determinism the tests pin down.
        """
        candidates = [
            r for r in self.runners if r.state is _State.BLOCKED and r.deadline is not None
        ]
        if not candidates:
            return False
        self._wake(min(candidates, key=lambda r: r.deadline), "timeout")
        return True
