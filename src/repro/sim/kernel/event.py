"""The ``event`` kernel: event-driven stepping that skips dead work.

Three host-cost reductions over the reference loop, none of which change
which generator is stepped when (the differential tests in
``tests/sim/test_kernel.py`` pin bit-identical fingerprints and trace
streams):

* **Wakeup heap.**  Runnable runners live in a heapq of
  ``(next_wakeup_time, core_id)`` entries — core heartbeats and block
  resume points land here, so picking the next runner is a pop instead of a
  rebuild-the-list-and-``min`` scan.  A runnable runner's time only changes
  when *it* is stepped, so entries are never stale (pop → step → push), and
  the tuple's ``core_id`` tiebreak reproduces the reference ``min``'s
  stable lowest-core-id-first ordering exactly.
* **Conditional wake scans.**  The reference loop polls every runner's
  block predicate before every step.  Predicates are required to be pure
  functions of shared simulation state (see :mod:`repro.sim.kernel.base`),
  so when *no* runner is blocked the scan is provably a no-op and is
  skipped; when runners are blocked the scan runs at exactly the reference
  loop's point in the step sequence (before choosing the next runner, in
  core-id order), so the same wakes fire in the same order with the same
  deadline semantics (block deadlines and the everyone-blocked timeout
  firing are evaluated identically).
* **Idle-span skipping in shared resources.**  The kernel installs an
  :class:`~repro.sim.kernel.timeline.IndexedTimeline` into the shared bus:
  reservation queries bisect an index of merged busy intervals instead of
  linearly walking (and per-call re-pruning) thousands of stale grant
  records — on bus-heavy design points that walk *is* the dead-cycle cost,
  ~80% of host time.  Checkpoint grid points, fault-injection events, and
  trace timestamps need no special handling: they are observers keyed off
  the same step sequence, which is unchanged.

Single-runnable fast path: once every other runner is done (the long
single-threaded baseline runs, or a run's drain phase), the kernel steps
the survivor in a tight loop with no heap traffic or state re-checks at
all — the reference loop's per-step list rebuild is pure overhead there.
"""

from __future__ import annotations

import heapq

from repro.sim.kernel.base import SimKernel, _State, register_kernel
from repro.sim.kernel.timeline import IndexedTimeline


@register_kernel("event")
class EventKernel(SimKernel):
    """Heap-scheduled kernel, step-sequence-identical to the reference."""

    @classmethod
    def timeline_class(cls):
        return IndexedTimeline

    def run(self) -> None:
        """Drive all cores to completion."""
        runners = self.runners
        n = len(runners)
        # Build book-keeping from current runner state (not construction
        # state): checkpoint resume restores runners as DONE/RUNNABLE after
        # the kernel is constructed, and must be respected here.
        heap = [(r.time, r.core_id) for r in runners if r.state is _State.RUNNABLE]
        heapq.heapify(heap)
        n_done = sum(1 for r in runners if r.state is _State.DONE)
        n_blocked = n - n_done - len(heap)
        checkpoint = self.checkpoint
        while True:
            if n_blocked:
                # Same scan as the reference _wake_ready: core-id order,
                # predicate wake first, deadline wake second.
                for r in runners:
                    if r.state is not _State.BLOCKED:
                        continue
                    if r.predicate is not None and r.predicate():
                        self._wake(r, "ok")
                    elif r.deadline is not None and self._others_past(r, r.deadline):
                        self._wake(r, "timeout")
                    else:
                        continue
                    n_blocked -= 1
                    heapq.heappush(heap, (r.time, r.core_id))
            elif len(heap) == 1:
                # Single-runnable fast path: nobody is blocked, so no wake
                # scan can fire until this runner blocks or finishes —
                # identical step sequence, no heap or scan traffic.
                runner = runners[heap[0][1]]
                del heap[:]
                while runner.state is _State.RUNNABLE:
                    self._step(runner)
                    if checkpoint is not None:
                        checkpoint.on_step(self)
                if runner.state is _State.BLOCKED:
                    n_blocked += 1
                else:
                    n_done += 1
                continue
            if not heap:
                if n_done == n:
                    return
                if not self._fire_timeout(heap):
                    self._raise_deadlock()
                n_blocked -= 1
                continue
            runner = runners[heapq.heappop(heap)[1]]
            self._step(runner)
            state = runner.state
            if state is _State.RUNNABLE:
                heapq.heappush(heap, (runner.time, runner.core_id))
            elif state is _State.BLOCKED:
                n_blocked += 1
            else:
                n_done += 1
            if checkpoint is not None:
                checkpoint.on_step(self)

    def _fire_timeout(self, heap) -> bool:
        """With everyone blocked, fire the earliest deadline, if any.

        Same tie policy as the reference kernel: equal deadlines resolve to
        the lowest core id (stable ``min`` over core-id-ordered runners).
        """
        candidates = [
            r for r in self.runners if r.state is _State.BLOCKED and r.deadline is not None
        ]
        if not candidates:
            return False
        runner = min(candidates, key=lambda r: r.deadline)
        self._wake(runner, "timeout")
        heapq.heappush(heap, (runner.time, runner.core_id))
        return True
