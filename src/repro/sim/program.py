"""Multi-threaded program representation consumed by the Machine.

A :class:`Program` bundles one dynamic-instruction-stream builder per thread
with the queue endpoint table (which thread produces into and which consumes
from each architectural queue).  Builders are zero-argument callables
returning fresh iterators, so a program can be run multiple times (and on
multiple configurations) deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Tuple

from repro.sim.isa import DynInst


@dataclass
class ThreadProgram:
    """One thread's instruction stream."""

    name: str
    builder: Callable[[], Iterator[DynInst]]

    def instructions(self) -> Iterator[DynInst]:
        return self.builder()


@dataclass
class Program:
    """A complete multi-threaded streaming program."""

    name: str
    threads: List[ThreadProgram]
    #: queue id -> (producer thread index, consumer thread index)
    queue_endpoints: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.threads:
            raise ValueError("a program needs at least one thread")
        n = len(self.threads)
        for qid, (prod, cons) in self.queue_endpoints.items():
            if not (0 <= prod < n and 0 <= cons < n):
                raise ValueError(f"queue {qid} endpoints {(prod, cons)} out of range")
            if prod == cons:
                raise ValueError(f"queue {qid} endpoints must be distinct threads")

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def is_single_threaded(self) -> bool:
        return len(self.threads) == 1
