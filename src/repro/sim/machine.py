"""The top-level simulated CMP: cores + memory hierarchy + mechanism.

``Machine`` wires a :class:`~repro.sim.config.MachineConfig` into core timing
models, the coherent memory hierarchy, and one communication mechanism, then
co-simulates a :class:`~repro.sim.program.Program` to completion, returning
per-thread statistics.

Typical use::

    from repro import Machine, baseline_config
    machine = Machine(baseline_config(), mechanism="syncopti")
    stats = machine.run(program)
    print(stats.cycles, stats.producer.components)
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.core.mechanism import create_mechanism

# Importing the implementations registers them.
from repro.core import heavywt as _heavywt  # noqa: F401
from repro.core import software_queue as _software_queue  # noqa: F401
from repro.core import stream_cache as _stream_cache  # noqa: F401
from repro.core import syncopti as _syncopti  # noqa: F401
from repro.core import write_forwarding as _write_forwarding  # noqa: F401
from repro.core.queue_model import QueueChannel
from repro.mem.hierarchy import MemorySystem
from repro.sim.config import MachineConfig
from repro.sim.core import CoreModel
from repro.sim.forensics import dump_channel
from repro.sim.kernel import create_kernel, observe_run
from repro.sim.program import Program
from repro.sim.stats import RunStats
from repro.trace.buffer import TraceBuffer

#: Events attached per core to deadlock/step-limit post-mortems.
POST_MORTEM_TRACE_TAIL = 8


class Machine:
    """A configured CMP instance; single-use per ``run`` for clean state."""

    def __init__(self, config: MachineConfig, mechanism: str = "existing") -> None:
        self.config = config.validate()
        #: Fault plan shared with the memory system / bus / channels.  Reset
        #: here so a plan reused across grid cells starts every run from
        #: event zero — same seed, same injections, same RunStats.
        self.faults = config.faults
        if self.faults is not None:
            self.faults.reset()
        #: Trace sink shared with every instrumented component, or ``None``
        #: when tracing is off — each hook is then one ``is None`` branch.
        self.trace = (
            TraceBuffer(config.trace)
            if config.trace is not None and config.trace.enabled
            else None
        )
        if self.faults is not None:
            self.faults.trace = self.trace
        self.mem = MemorySystem(config, trace=self.trace)
        self.mechanism = create_mechanism(mechanism, self)
        self.mem.on_streaming_eviction = self.mechanism.on_streaming_eviction
        self.cores = [CoreModel(i, self) for i in range(config.n_cores)]
        self.channels: Dict[int, QueueChannel] = {}
        self._ran = False

    def channel(self, queue_id: int) -> QueueChannel:
        """Get (or lazily create) the channel for one architectural queue."""
        ch = self.channels.get(queue_id)
        if ch is None:
            if queue_id >= self.config.queues.n_queues:
                raise ValueError(
                    f"queue {queue_id} exceeds the configured "
                    f"{self.config.queues.n_queues} queues"
                )
            ch = QueueChannel(
                layout=self.mechanism.layout_for(queue_id),
                fault_plan=self.faults,
                trace=self.trace,
            )
            self.channels[queue_id] = ch
        return ch

    def _forensics_probe(self):
        """Channel snapshots + fault log + trace tail for post-mortems."""
        channels = [
            dump_channel(self.channels[qid]) for qid in sorted(self.channels)
        ]
        injections = list(self.faults.injections) if self.faults is not None else []
        trace_tail = (
            self.trace.tail_by_core(POST_MORTEM_TRACE_TAIL)
            if self.trace is not None
            else {}
        )
        return channels, injections, trace_tail

    def run(
        self,
        program: Program,
        max_steps: int = 50_000_000,
        wall_clock_budget: Optional[float] = None,
        checkpoint=None,
        kernel: Optional[str] = None,
        abort=None,
    ) -> RunStats:
        """Co-simulate ``program`` to completion; returns per-thread stats.

        ``abort`` is an external-cancellation probe (``() -> Optional[str]``;
        a reason string stops the run with
        :class:`~repro.sim.kernel.SimulationAbortedError`), checked at the
        wall-clock watchdog's cadence — queue workers pass their lease
        fence here.  ``None`` (the default) costs nothing.

        ``wall_clock_budget`` bounds the *host* seconds the run may consume
        (None = unbounded): a run that outlives it raises
        :class:`~repro.sim.cosim.WallClockExceededError` with a full
        post-mortem attached — the campaign watchdog's in-process layer.

        ``checkpoint`` takes a :class:`~repro.sim.checkpoint.Checkpointer`
        that snapshots the whole machine every ``every`` simulated cycles at
        global safe points; ``None`` (the default) costs one branch per
        scheduler step.  Checkpointing never mutates simulation state, so
        stats and traces are identical either way.

        ``kernel`` names the stepping engine (:mod:`repro.sim.kernel`);
        ``None`` uses ``config.kernel``.  Kernels are bit-identical in
        simulated outcome — same fingerprint, same trace stream — so the
        choice only affects ``RunStats.host_seconds``.
        """
        if self._ran:
            raise RuntimeError(
                "a Machine accumulates cache/queue state; build a fresh one per run"
            )
        self._ran = True
        if program.n_threads > self.config.n_cores:
            raise ValueError(
                f"program {program.name!r} has {program.n_threads} threads "
                f"but the machine has only {self.config.n_cores} cores; "
                f"build it with MachineConfig(n_cores={program.n_threads}) "
                f"or config.copy(n_cores={program.n_threads}) to run it"
            )
        for queue_id, (producer, consumer) in program.queue_endpoints.items():
            ch = self.channel(queue_id)
            ch.producer_core = producer
            ch.consumer_core = consumer
        generators = [
            self.cores[i].run(thread.instructions())
            for i, thread in enumerate(program.threads)
        ]
        if checkpoint is not None:
            checkpoint.attach(self, program)
        started = time.perf_counter()
        engine = create_kernel(
            kernel if kernel is not None else self.config.kernel,
            generators,
            max_steps=max_steps,
            context_probe=self._forensics_probe,
            trace=self.trace,
            wall_clock_budget=wall_clock_budget,
            checkpoint=checkpoint,
            abort=abort,
        )
        engine.install(self)
        engine.run()
        stats = RunStats(
            threads=[self.cores[i].stats for i in range(program.n_threads)],
            host_seconds=time.perf_counter() - started,
        )
        # Host-side throughput observation (repro.obs): once per run,
        # outside the stepping loop, no-op unless obs is configured.
        observe_run(
            kernel if kernel is not None else self.config.kernel, stats
        )
        return stats


def run_program(
    config: MachineConfig,
    mechanism: str,
    program: Program,
    max_steps: int = 50_000_000,
    wall_clock_budget: Optional[float] = None,
    checkpoint=None,
    kernel: Optional[str] = None,
) -> RunStats:
    """One-shot convenience: build a Machine, run, return stats."""
    return Machine(config, mechanism=mechanism).run(
        program,
        max_steps=max_steps,
        wall_clock_budget=wall_clock_budget,
        checkpoint=checkpoint,
        kernel=kernel,
    )
