"""Per-thread statistics and critical-path component attribution.

The paper's breakdown bars (Figures 7, 10, 11, 12) split each thread's
execution time into non-overlappable components:

* ``PreL2``  — main-pipe stalls before the L2 (issue stalls, OzQ backpressure,
  queue-full/empty blocking, fences).
* ``L2``     — time spent in the L2 cache (hits, port contention,
  recirculation churn).
* ``BUS``    — time on the shared bus (arbitration, snoops, data transfer).
* ``L3``     — time in the shared L3.
* ``MEM``    — main-memory time.
* ``PostL2`` — stages following the L2: L1 fill, writeback/commit.  Designs
  that commit many overhead instructions (software queues) pay here.

We additionally track a ``COMPUTE`` component (cycles the core is doing
useful, non-stalled work) so components always sum to the thread's execution
time, and a rich set of event counters used by tests and the Figure 8 ratios.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

#: Ordered component names, bottom-to-top as stacked in the paper's figures.
COMPONENTS = ("COMPUTE", "PreL2", "L2", "BUS", "L3", "MEM", "PostL2")

#: Components that come from memory-access latency breakdowns.
MEMORY_COMPONENTS = ("L2", "BUS", "L3", "MEM")


@dataclass
class LatencyBreakdown:
    """Where the cycles of one memory access were spent.

    ``total`` may exceed the sum of the named components (e.g. L1-hit cycles
    or stream-address generation are folded into the issuing core's view);
    the residual is charged to the consuming instruction's compute time.
    """

    total: int = 0
    l2: int = 0
    bus: int = 0
    l3: int = 0
    mem: int = 0
    #: Front-end/queue-blocking share (queue-empty waits folded into a
    #: consume's defining mix charge to PreL2).
    prel2: int = 0

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            total=self.total + other.total,
            l2=self.l2 + other.l2,
            bus=self.bus + other.bus,
            l3=self.l3 + other.l3,
            mem=self.mem + other.mem,
            prel2=self.prel2 + other.prel2,
        )

    def residual(self) -> int:
        """Cycles not attributed to any named component."""
        return max(0, self.total - (self.l2 + self.bus + self.l3 + self.mem + self.prel2))

    def scaled_to(self, cycles: int) -> "LatencyBreakdown":
        """Proportionally rescale the named components to ``cycles`` total.

        Used when only part of an access's latency is exposed on the critical
        path (the rest overlapped with other work): the exposure keeps the
        access's component *mix* but the exposed magnitude.

        Components are allocated sequentially against a running remainder so
        per-component rounding can never push their sum above ``cycles`` —
        independent ``round()`` calls could each round up and overshoot,
        which used to leak negative residuals into the caller.
        """
        if cycles <= 0 or self.total <= 0:
            return LatencyBreakdown()
        f = min(1.0, cycles / self.total)
        out = LatencyBreakdown(total=cycles)
        remaining = cycles
        for name in ("l2", "bus", "l3", "mem", "prel2"):
            share = min(remaining, int(round(getattr(self, name) * f)))
            setattr(out, name, share)
            remaining -= share
        return out


@dataclass
class ThreadStats:
    """Counters and component attribution for one thread of a run."""

    thread_id: int = 0
    #: Total simulated execution cycles of this thread.
    cycles: int = 0
    #: Committed *application* instructions (kernel work).
    app_instructions: int = 0
    #: Committed communication/synchronization overhead instructions.
    comm_instructions: int = 0
    #: Number of PRODUCE macro-ops executed.
    produces: int = 0
    #: Number of CONSUME macro-ops executed.
    consumes: int = 0
    #: Cycles stalled because a produce found its queue full.
    queue_full_stall: int = 0
    #: Cycles stalled because a consume found its queue empty.
    queue_empty_stall: int = 0
    #: Spin-loop flag-load reissues (software-queue designs).
    spin_reissues: int = 0
    #: OzQ-full backpressure events.
    ozq_backpressure_events: int = 0
    #: Stream-cache hits / misses (SC designs).
    stream_cache_hits: int = 0
    stream_cache_misses: int = 0
    #: Write-forwarded lines sent (producer side).
    lines_forwarded: int = 0
    #: Critical-path component attribution, cycles per component.
    components: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in COMPONENTS}
    )

    def charge(self, component: str, cycles: float) -> None:
        """Attribute ``cycles`` of critical-path time to ``component``."""
        if component not in self.components:
            raise KeyError(f"unknown component {component!r}")
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.components[component] += cycles

    def charge_breakdown(self, bd: LatencyBreakdown, exposed: float) -> None:
        """Attribute an exposed memory latency using the access's mix.

        Exactly ``exposed`` cycles are charged in total: the named components
        receive at most ``int(exposed)`` cycles (``scaled_to`` caps their
        sum), and the residual — fractional cycles plus anything the mix does
        not cover — lands in COMPUTE with no clamping.  Rounding can shift a
        cycle between components but never create or destroy one.
        """
        if exposed <= 0:
            return
        scaled = bd.scaled_to(int(exposed))
        self.charge("L2", scaled.l2)
        self.charge("BUS", scaled.bus)
        self.charge("L3", scaled.l3)
        self.charge("MEM", scaled.mem)
        self.charge("PreL2", scaled.prel2)
        named = scaled.l2 + scaled.bus + scaled.l3 + scaled.mem + scaled.prel2
        self.charge("COMPUTE", exposed - named)

    @property
    def total_instructions(self) -> int:
        return self.app_instructions + self.comm_instructions

    @property
    def comm_to_app_ratio(self) -> float:
        """Figure 8's y-axis: communication vs application instructions."""
        if self.app_instructions == 0:
            return 0.0
        return self.comm_instructions / self.app_instructions

    def component_sum(self) -> float:
        return sum(self.components.values())

    def canonical(self) -> Dict[str, object]:
        """Order-stable plain-data view of every counter, for fingerprinting."""
        return {
            "thread_id": self.thread_id,
            "cycles": self.cycles,
            "app_instructions": self.app_instructions,
            "comm_instructions": self.comm_instructions,
            "produces": self.produces,
            "consumes": self.consumes,
            "queue_full_stall": self.queue_full_stall,
            "queue_empty_stall": self.queue_empty_stall,
            "spin_reissues": self.spin_reissues,
            "ozq_backpressure_events": self.ozq_backpressure_events,
            "stream_cache_hits": self.stream_cache_hits,
            "stream_cache_misses": self.stream_cache_misses,
            "lines_forwarded": self.lines_forwarded,
            "components": {name: self.components[name] for name in COMPONENTS},
        }

    def normalized_components(self, baseline_cycles: float) -> Dict[str, float]:
        """Components rescaled so their sum equals cycles/baseline_cycles.

        The attribution is approximate (overlap makes exact attribution
        ill-posed even in real simulators); normalizing preserves each
        component's share while making bars comparable across design points,
        exactly how the paper plots them.
        """
        if baseline_cycles <= 0:
            raise ValueError("baseline cycles must be positive")
        total = self.component_sum()
        height = self.cycles / baseline_cycles
        if total <= 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: height * value / total for name, value in self.components.items()}


@dataclass
class RunStats:
    """Statistics for a complete multi-threaded run."""

    threads: List[ThreadStats] = field(default_factory=list)
    #: Host wall-clock seconds the run consumed (``Machine.run`` /
    #: ``resume_run`` stamp it).  Host-side observability only — excluded
    #: from :meth:`fingerprint` *and* from ``==`` (``compare=False``):
    #: both express simulated outcome and must not vary with machine load
    #: or the kernel choice.
    host_seconds: float = field(default=0.0, compare=False)

    @property
    def cycles(self) -> int:
        """Wall-clock cycles of the run: the slowest thread defines it."""
        return max((t.cycles for t in self.threads), default=0)

    @property
    def simulated_cycles_per_sec(self) -> float:
        """Simulation throughput: simulated cycles per host second.

        The unit of the perf trajectory (``repro.bench`` / ``BENCH_*.json``)
        and the runner/campaign ledgers.  0.0 when timing was not captured.
        """
        if self.host_seconds <= 0:
            return 0.0
        return self.cycles / self.host_seconds

    def thread(self, thread_id: int) -> ThreadStats:
        for t in self.threads:
            if t.thread_id == thread_id:
                return t
        raise KeyError(f"no thread {thread_id}")

    @property
    def producer(self) -> ThreadStats:
        """Thread 0 by convention (the pipeline's first stage)."""
        return self.thread(0)

    @property
    def consumer(self) -> ThreadStats:
        """Highest-numbered thread by convention (the pipeline's last stage).

        Thread 1 for the paper's two-stage partitions; the terminal stage
        for the K-stage pipelines of :mod:`repro.pipeline`.
        """
        return self.thread(max(t.thread_id for t in self.threads))

    def fingerprint(self) -> str:
        """Stable hash of every counter of every thread of this run.

        The simulator is deterministic end to end (seeded
        :class:`~repro.faults.plan.FaultPlan` RNG, ordered scheduler
        tie-breaks), so re-running a cell with the same configuration must
        reproduce this value byte for byte.  The campaign ledger records it
        per completed cell, turning that determinism promise into a checked
        invariant and a golden-regression store for CI.

        Canonical form: compact JSON with sorted keys over
        :meth:`ThreadStats.canonical`, SHA-256, first 16 hex digits (64 bits
        — ample for grid-sized collections, short enough to eyeball in the
        ledger).
        """
        payload = json.dumps(
            [t.canonical() for t in self.threads],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, as used for the paper's summary bars."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
