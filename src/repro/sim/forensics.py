"""Structured post-mortems for deadlocked or runaway co-simulations.

When the :class:`~repro.sim.cosim.Scheduler` finds every live core blocked
with no satisfiable predicate and no deadline (deadlock), or blows through
its step budget (runaway), a bare exception message is useless for
diagnosis: the interesting state — which cores were blocked since when,
which queue's produce/consume counts diverged, which injected faults were
active — lives in the machine, not the scheduler.

This module defines the machine-readable report the scheduler attaches to
:class:`~repro.sim.cosim.SimulationError` (as ``exc.post_mortem``) and
renders into the exception message.  The scheduler owns the per-core half
(:class:`CoreDump`); the :class:`~repro.sim.machine.Machine` supplies the
per-channel half (:class:`ChannelDump`) and any fault-injection records via
a context probe, so ``cosim`` stays decoupled from queues and faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CoreDump:
    """One core's scheduler-visible state at failure time."""

    core_id: int
    state: str
    time: float
    steps: int
    #: Scheduler step at which this core last advanced.
    last_progress_step: int
    #: This core's local clock when it last advanced.
    last_progress_time: float
    deadline: Optional[float] = None

    def describe(self) -> str:
        line = (
            f"core {self.core_id}: {self.state} at t={self.time:.0f} "
            f"after {self.steps} steps "
            f"(last progress: step {self.last_progress_step}, "
            f"t={self.last_progress_time:.0f})"
        )
        if self.state == "blocked":
            line += (
                f", deadline={self.deadline:.0f}"
                if self.deadline is not None
                else ", no deadline"
            )
        return line


@dataclass
class ChannelDump:
    """One inter-thread queue's visibility-timeline state at failure time."""

    queue_id: int
    producer_core: int
    consumer_core: int
    depth: int
    n_produced: int
    n_consumed: int
    #: Items whose values have been published to the consumer.
    n_published: int
    #: Slots whose recycling has become producer-visible.
    n_freed: int
    last_produced_at: Optional[float] = None
    last_freed_at: Optional[float] = None
    lines_forwarded: int = 0
    #: A fault wedged this channel: no further frees will ever be observed.
    wedged: bool = False

    @property
    def occupancy(self) -> int:
        """Produced items whose slots are not yet known-freed."""
        return self.n_produced - self.n_freed

    @property
    def produce_consume_delta(self) -> int:
        return self.n_produced - self.n_consumed

    def suspicions(self) -> List[str]:
        """Heuristic diagnoses for why this channel may block a core."""
        out = []
        if self.wedged:
            out.append("WEDGED: slot recycling permanently stalled by a fault")
        if self.n_consumed > self.n_produced:
            out.append(
                f"consumer ran ahead: {self.n_consumed} consumes vs "
                f"{self.n_produced} produces (mismatched counts)"
            )
        elif self.occupancy >= self.depth:
            out.append(
                f"queue full with no frees in sight "
                f"(occupancy {self.occupancy}/{self.depth})"
            )
        if self.n_published < self.n_consumed:
            out.append(
                f"consumer waiting on unpublished item "
                f"{self.n_published} (e.g. a dropped write-forward)"
            )
        return out

    def describe(self) -> str:
        line = (
            f"queue {self.queue_id} (core {self.producer_core} -> "
            f"core {self.consumer_core}, depth {self.depth}): "
            f"produced={self.n_produced} consumed={self.n_consumed} "
            f"published={self.n_published} freed={self.n_freed} "
            f"occupancy={self.occupancy}"
        )
        for s in self.suspicions():
            line += f"\n    ! {s}"
        return line


@dataclass
class PostMortem:
    """Machine-readable report attached to a failed simulation."""

    reason: str  # "deadlock" or "step-limit"
    total_steps: int
    cores: List[CoreDump] = field(default_factory=list)
    channels: List[ChannelDump] = field(default_factory=list)
    #: FaultInjection records applied during the run (if a plan was active).
    injections: List[object] = field(default_factory=list)
    #: Last trace events per core (``None`` key = global events), when the
    #: run was traced: the actual event sequence leading up to the wedge.
    trace_tail: Dict[Optional[int], List[object]] = field(default_factory=dict)

    def blocked_cores(self) -> List[int]:
        return [c.core_id for c in self.cores if c.state == "blocked"]

    def suspect_channels(self) -> List[ChannelDump]:
        return [ch for ch in self.channels if ch.suspicions()]

    def render(self) -> str:
        lines = [f"post-mortem ({self.reason}, {self.total_steps} scheduler steps):"]
        for core in self.cores:
            lines.append("  " + core.describe())
        if self.channels:
            for ch in self.channels:
                lines.append("  " + ch.describe())
        else:
            lines.append("  (no queue channels instantiated)")
        if self.injections:
            lines.append(f"  {len(self.injections)} fault injection(s) applied:")
            for inj in self.injections[-8:]:
                desc = inj.describe() if hasattr(inj, "describe") else repr(inj)
                lines.append("    " + desc)
            if len(self.injections) > 8:
                lines.append(f"    ... and {len(self.injections) - 8} earlier")
        if self.trace_tail:
            lines.append("  last trace events per core:")
            for core in sorted(
                self.trace_tail, key=lambda c: (c is None, c)
            ):
                label = "global" if core is None else f"core {core}"
                lines.append(f"    {label}:")
                for ev in self.trace_tail[core]:
                    desc = ev.describe() if hasattr(ev, "describe") else repr(ev)
                    lines.append("      " + desc)
        return "\n".join(lines)


def dump_channel(ch) -> ChannelDump:
    """Snapshot a :class:`~repro.core.queue_model.QueueChannel` (duck-typed)."""
    return ChannelDump(
        queue_id=ch.queue_id,
        producer_core=ch.producer_core,
        consumer_core=ch.consumer_core,
        depth=ch.depth,
        n_produced=ch.n_produced,
        n_consumed=ch.n_consumed,
        n_published=len(ch.produced),
        n_freed=len(ch.freed),
        last_produced_at=ch.produced[-1] if ch.produced else None,
        last_freed_at=ch.freed[-1] if ch.freed else None,
        lines_forwarded=len(ch.line_forwarded),
        wedged=getattr(ch, "wedged", False),
    )
