"""Timestamp-based resource availability timelines.

The simulator is timestamp-driven rather than cycle-stepped: each shared
resource (functional units, memory ports, cache ports, bus slots, dedicated
store ports) is a small calendar that answers "given a request arriving at
time T, when is the resource granted?" and records the grant.  This models
structural hazards and contention at full fidelity for in-order request
streams while running orders of magnitude faster than per-cycle simulation.
"""

from __future__ import annotations

import heapq
from typing import List


class UnitPool:
    """A pool of ``n`` identical units, each busy for some cycles per grant.

    Grants are served by the earliest-free unit.  This models a group of
    functional units (e.g. 4 memory ports) where each accepted operation
    occupies one unit for ``busy`` cycles.
    """

    def __init__(self, n_units: int, name: str = "") -> None:
        if n_units <= 0:
            raise ValueError("unit pool needs at least one unit")
        self.name = name
        self.n_units = n_units
        # Min-heap of times at which each unit becomes free.
        self._free_at: List[float] = [0.0] * n_units
        heapq.heapify(self._free_at)
        self.grants = 0
        self.busy_cycles = 0.0

    def earliest_grant(self, at: float) -> float:
        """When would a request arriving at ``at`` be granted? (no booking)"""
        return max(at, self._free_at[0])

    def acquire(self, at: float, busy: float = 1.0) -> float:
        """Grant a unit to a request arriving at ``at``; returns grant time.

        The granted unit is busy for ``busy`` cycles from the grant.
        """
        if busy < 0:
            raise ValueError("busy time must be non-negative")
        grant = max(at, self._free_at[0])
        heapq.heapreplace(self._free_at, grant + busy)
        self.grants += 1
        self.busy_cycles += busy
        return grant

    def begin(self, at: float) -> float:
        """Two-phase grant: claim the earliest-free unit, hold it open-ended.

        Must be paired with :meth:`end`.  Used when the occupancy duration is
        only known after the serviced operation completes (e.g. an OzQ entry
        held for the full, contention-dependent miss service time).
        """
        grant = max(at, heapq.heappop(self._free_at))
        self.grants += 1
        self._open_grants = getattr(self, "_open_grants", 0) + 1
        return grant

    def end(self, grant: float, free_at: float) -> None:
        """Close a :meth:`begin` grant, freeing its unit at ``free_at``."""
        open_grants = getattr(self, "_open_grants", 0)
        if open_grants <= 0:
            raise RuntimeError("UnitPool.end() without matching begin()")
        self._open_grants = open_grants - 1
        heapq.heappush(self._free_at, max(grant, free_at))
        self.busy_cycles += max(0.0, free_at - grant)

    def utilization(self, horizon: float) -> float:
        """Fraction of unit-cycles busy up to ``horizon``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / (horizon * self.n_units))


class ThroughputPort:
    """A resource accepting at most one new request every ``interval`` cycles.

    Models pipelined structures (a pipelined bus accepts a new transaction
    every ``latency/stages`` cycles; a dedicated store accepts ``k`` ops per
    cycle via interval ``1/k``).
    """

    def __init__(self, interval: float, name: str = "") -> None:
        if interval <= 0:
            raise ValueError("issue interval must be positive")
        self.name = name
        self.interval = interval
        self._next_free = 0.0
        self.grants = 0

    def earliest_grant(self, at: float) -> float:
        return max(at, self._next_free)

    def acquire(self, at: float, occupancy: float = None) -> float:
        """Grant the port; it re-opens after ``occupancy`` (default interval)."""
        grant = max(at, self._next_free)
        occ = self.interval if occupancy is None else occupancy
        if occ < 0:
            raise ValueError("occupancy must be non-negative")
        self._next_free = grant + occ
        self.grants += 1
        return grant


class Scoreboard:
    """Register ready-time tracking for in-order dependence stalls."""

    def __init__(self) -> None:
        self._ready_at = {}

    def ready_time(self, regs) -> float:
        """Earliest time all of ``regs`` are available."""
        t = 0.0
        for r in regs:
            rt = self._ready_at.get(r, 0.0)
            if rt > t:
                t = rt
        return t

    def set_ready(self, reg: int, at: float) -> None:
        """Record that ``reg`` is produced at time ``at``."""
        self._ready_at[reg] = at

    def reg_ready(self, reg: int) -> float:
        return self._ready_at.get(reg, 0.0)
