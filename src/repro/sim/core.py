"""In-order multi-issue core timing model with COMM-OP expansion hooks.

The core consumes a thread's dynamic instruction stream and assigns each
instruction an issue timestamp subject to: in-order issue at ``issue_width``
per cycle, register dependences (scoreboard), functional-unit and memory-port
structural hazards, memory-fence ordering, and — for PRODUCE/CONSUME
macro-ops — the active communication mechanism's expansion, which may insert
overhead micro-ops, touch the memory hierarchy, and block on queue state.

Stall attribution follows the paper's component taxonomy: time waiting on a
value returned by the memory system is charged using that access's
L2/BUS/L3/MEM mix; front-end, resource, queue-blocking and OzQ-backpressure
stalls are charged to ``PreL2``; retire bandwidth for every committed
instruction is charged to ``PostL2``; the residual issue pacing is
``COMPUTE``.  Attribution is necessarily approximate in the presence of
overlap — the reporting layer normalizes component *shares*, exactly as the
paper's stacked bars do.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Tuple

from repro.sim.isa import COMM_KINDS, DynInst, InstrKind
from repro.sim.resources import UnitPool
from repro.sim.stats import LatencyBreakdown, ThreadStats

#: How many instructions a core may run between scheduler heartbeats.  Comm
#: macro-ops always synchronize, so this only bounds timestamp skew between
#: cores on communication-free stretches.
YIELD_INTERVAL = 64


class _Scoreboard:
    """Register ready-times plus the latency mix that produced each value."""

    __slots__ = ("_ready", "_mix")

    def __init__(self) -> None:
        self._ready = {}
        self._mix = {}

    def ready(self, regs) -> float:
        t = 0.0
        for r in regs:
            rt = self._ready.get(r, 0.0)
            if rt > t:
                t = rt
        return t

    def dominant_mix(self, regs, at: float) -> Optional[LatencyBreakdown]:
        """Breakdown of the operand that is last to arrive (None if ALU)."""
        best_t, best_mix = -1.0, None
        for r in regs:
            rt = self._ready.get(r, 0.0)
            if rt > best_t:
                best_t = rt
                best_mix = self._mix.get(r)
        return best_mix

    def define(self, reg: int, at: float, mix: Optional[LatencyBreakdown] = None) -> None:
        self._ready[reg] = at
        if mix is not None:
            self._mix[reg] = mix
        else:
            self._mix.pop(reg, None)


class CoreModel:
    """Timing model of one in-order core."""

    def __init__(self, core_id: int, machine) -> None:
        self.core_id = core_id
        self.machine = machine
        cfg = machine.config.core
        self.config = machine.config
        self.stats = ThreadStats(thread_id=core_id)
        self.scoreboard = _Scoreboard()
        self.ialu = UnitPool(cfg.n_ialu, name=f"c{core_id}-ialu")
        self.falu = UnitPool(cfg.n_falu, name=f"c{core_id}-falu")
        self.branch = UnitPool(cfg.n_branch, name=f"c{core_id}-branch")
        self.mem_ports = UnitPool(cfg.n_mem_ports, name=f"c{core_id}-mem")
        self._pace = 1.0 / cfg.issue_width
        self._commit_cost = 1.0 / cfg.commit_width
        self.t_issue = 0.0
        self.fence_ready = 0.0
        #: (complete, breakdown) of stores not yet covered by a fence.
        self.pending_stores = []
        #: Latest completion of any instruction (drain horizon).
        self.horizon = 0.0
        self.instructions_run = 0
        #: Trace sink shared with the machine (``None`` = tracing off; every
        #: core hook is then a single ``is None`` branch).
        self.trace = machine.trace
        #: True exactly while this core's generator is suspended at an
        #: instruction-boundary yield of :meth:`run` (or has not started /
        #: has finished).  At such a suspension the generator's entire
        #: hidden state is ``instructions_run`` — the invariant the
        #: checkpoint subsystem (:mod:`repro.sim.checkpoint`) is built on:
        #: a machine whose live cores are all at safe points can be
        #: serialized and later resumed by replaying each thread's
        #: instruction stream from its cursor.
        self.at_safe_point = True

    # ------------------------------------------------------------------
    # Public helpers used by communication mechanisms
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.t_issue

    def charge(self, component: str, cycles: float) -> None:
        self.stats.charge(component, cycles)

    def stall_until(
        self, t: float, mix: Optional[LatencyBreakdown] = None, component: str = "PreL2"
    ) -> None:
        """Advance the issue clock to ``t``, attributing the stall.

        With a ``mix``, the stall takes the memory-access component shares of
        that breakdown; otherwise it is charged to ``component``.
        """
        gap = t - self.t_issue
        if gap <= 0:
            return
        if mix is not None:
            self.stats.charge_breakdown(mix, gap)
        else:
            self.charge(component, gap)
        self.t_issue = t

    def retire(self, n: int = 1, overhead: bool = False) -> None:
        """Account for ``n`` committed instructions (PostL2 bandwidth)."""
        if overhead:
            self.stats.comm_instructions += n
        else:
            self.stats.app_instructions += n
        self.charge("PostL2", n * self._commit_cost)
        if self.trace is not None:
            self.trace.emit(
                "core.retire", self.t_issue, core=self.core_id,
                n=n, overhead=overhead,
            )

    def overhead_alu(self, n: int, dep_height: int = 1) -> float:
        """Issue ``n`` overhead ALU/branch ops with the given chain height.

        Returns the completion time of the dependence chain.  Used by the
        software-queue expansion (compares, branches, pointer updates).
        """
        if n <= 0:
            return self.t_issue
        start = self.t_issue
        for _ in range(n):
            grant = self.ialu.acquire(self.t_issue + self._pace, busy=1.0)
            self.charge("COMPUTE", self._pace)
            self.charge("PreL2", max(0.0, grant - (self.t_issue + self._pace)))
            self.t_issue = grant
        self.retire(n, overhead=True)
        complete = max(self.t_issue, start + dep_height)
        self.horizon = max(self.horizon, complete)
        return complete

    def overhead_load(
        self, addr: int, at: Optional[float] = None, streaming: bool = True
    ):
        """Issue one overhead load; returns the AccessResult (not exposed yet)."""
        issue = self._issue_mem_slot(at)
        result = self.machine.mem.load(self.core_id, addr, issue, streaming=streaming)
        self.retire(1, overhead=True)
        self.horizon = max(self.horizon, result.complete)
        return result

    def overhead_store(
        self, addr: int, at: Optional[float] = None, streaming: bool = True
    ):
        """Issue one overhead store; returns the AccessResult."""
        issue = self._issue_mem_slot(at)
        result = self.machine.mem.store(self.core_id, addr, issue, streaming=streaming)
        self.pending_stores.append((result.ordered, result.breakdown))
        self.retire(1, overhead=True)
        self.horizon = max(self.horizon, result.complete)
        return result

    def spin_wait(self, until: float, mix: LatencyBreakdown, instrs_per_spin: int = 2) -> int:
        """Model a software spin loop from ``now`` until ``until``.

        Each spin iteration re-executes the flag load + branch, flowing
        through the pipeline and recirculating through the OzQ, occupying L2
        ports (Section 4.4).  The whole window is charged using ``mix`` —
        the coherence-fetch component shares of the spun-on flag load.
        Returns the number of spin iterations modeled.
        """
        start = self.t_issue
        if until <= start:
            return 0
        interval = self.config.recirculation_interval
        n = max(1, int((until - start) / interval))
        self.machine.mem.ozq[self.core_id].recirculate(start, until)
        self.stats.spin_reissues += n
        self.retire(n * instrs_per_spin, overhead=True)
        self.stall_until(until, mix)
        return n

    def overhead_fence(self) -> None:
        """Issue a memory fence as part of a comm-op expansion."""
        self._do_fence(overhead=True)

    def _issue_mem_slot(self, at: Optional[float] = None) -> float:
        """Advance the issue clock through a memory-port issue slot."""
        target = max(self.t_issue + self._pace, at if at is not None else 0.0, self.fence_ready)
        grant = self.mem_ports.acquire(target, busy=1.0)
        self.charge("COMPUTE", self._pace)
        self.charge("PreL2", max(0.0, grant - target))
        self.t_issue = grant
        return grant

    def issue_comm_slot(self, inst: DynInst) -> float:
        """Issue a PRODUCE/CONSUME instruction in-order.

        Like any instruction on an in-order core, a communication op cannot
        issue before its source operands are ready — a produce of a value
        still in flight from a cache miss stalls the pipe at issue, exposing
        that miss's latency in the producer thread.
        """
        floor = self.t_issue + self._pace
        self.charge("COMPUTE", self._pace)
        op_ready = self.scoreboard.ready(inst.srcs) if inst.srcs else 0.0
        start = max(floor, self.fence_ready)
        if op_ready > start:
            mix = self.scoreboard.dominant_mix(inst.srcs, op_ready)
            wait = op_ready - start
            if mix is not None:
                self.stats.charge_breakdown(mix, wait)
            else:
                self.charge("PreL2", wait)
            start = op_ready
        grant = self.mem_ports.acquire(start, busy=1.0)
        self.charge("PreL2", max(0.0, grant - start))
        self.t_issue = grant
        return grant

    # ------------------------------------------------------------------
    # Main execution loop
    # ------------------------------------------------------------------

    def run(self, program: Iterable[DynInst]) -> Generator:
        """Generator executing ``program``; yields cosim protocol messages.

        The ``at_safe_point`` toggles bracket exactly the suspensions at
        which the generator's state is fully described by
        ``instructions_run``: before re-entering the loop body (a comm op
        re-executes from scratch, so suspension at its leading heartbeat is
        safe — nothing of instruction *k* has run yet) and at the
        between-instruction heartbeats.  Suspensions inside ``_comm`` (queue
        blocking, mechanism expansions) leave the flag False.
        """
        self.at_safe_point = False
        for inst in program:
            if inst.kind in COMM_KINDS:
                self.at_safe_point = True
                yield ("time", self.t_issue)
                self.at_safe_point = False
                yield from self._comm(inst)
            else:
                self._plain(inst)
            self.instructions_run += 1
            if self.instructions_run % YIELD_INTERVAL == 0:
                self.at_safe_point = True
                yield ("time", self.t_issue)
                self.at_safe_point = False
        self._finish()
        self.at_safe_point = True
        yield ("time", self.stats.cycles)

    # ------------------------------------------------------------------

    def _pool_for(self, kind: InstrKind) -> Tuple[UnitPool, float]:
        if kind is InstrKind.IALU or kind is InstrKind.NOP or kind is InstrKind.FENCE:
            return self.ialu, 1.0
        if kind is InstrKind.FALU:
            return self.falu, 1.0
        if kind is InstrKind.BRANCH:
            return self.branch, 1.0
        return self.mem_ports, 1.0

    def _issue(self, inst: DynInst) -> float:
        """Compute and book the issue time of a plain instruction."""
        floor = self.t_issue + self._pace
        self.charge("COMPUTE", self._pace)
        op_ready = self.scoreboard.ready(inst.srcs) if inst.srcs else 0.0
        start = max(floor, self.fence_ready)
        if op_ready > start:
            mix = self.scoreboard.dominant_mix(inst.srcs, op_ready)
            wait = op_ready - start
            if mix is not None:
                self.stats.charge_breakdown(mix, wait)
            else:
                self.charge("PreL2", wait)
            start = op_ready
        pool, busy = self._pool_for(inst.kind)
        grant = pool.acquire(start, busy=busy)
        self.charge("PreL2", max(0.0, grant - start))
        self.t_issue = grant
        return grant

    def _plain(self, inst: DynInst) -> None:
        kind = inst.kind
        if kind is InstrKind.FENCE:
            self._do_fence(overhead=inst.is_overhead)
            return
        issue = self._issue(inst)
        if kind is InstrKind.LOAD:
            result = self.machine.mem.load(
                self.core_id, inst.addr, issue, streaming=False
            )
            if inst.dest is not None:
                self.scoreboard.define(inst.dest, result.complete, result.breakdown)
            self.horizon = max(self.horizon, result.complete)
        elif kind is InstrKind.STORE:
            result = self.machine.mem.store(
                self.core_id, inst.addr, issue, streaming=False
            )
            self.pending_stores.append((result.ordered, result.breakdown))
            self.horizon = max(self.horizon, result.complete)
        elif kind is InstrKind.PREFETCH:
            self.machine.mem.load(self.core_id, inst.addr, issue, streaming=False)
        else:
            complete = issue + inst.exec_latency()
            if inst.dest is not None:
                self.scoreboard.define(inst.dest, complete)
            self.horizon = max(self.horizon, complete)
        self.retire(1, overhead=inst.is_overhead)

    def _do_fence(self, overhead: bool) -> None:
        """Stall issue until all prior stores are globally visible."""
        grant = self.ialu.acquire(self.t_issue + self._pace, busy=1.0)
        self.charge("COMPUTE", self._pace)
        self.t_issue = grant
        if self.pending_stores:
            worst_t, worst_mix = max(self.pending_stores, key=lambda p: p[0])
            if worst_t > self.t_issue:
                self.stats.charge_breakdown(worst_mix, worst_t - self.t_issue)
                self.t_issue = worst_t
            self.pending_stores.clear()
        self.fence_ready = self.t_issue
        self.retire(1, overhead=overhead)

    def _comm(self, inst: DynInst) -> Generator:
        """Dispatch a PRODUCE/CONSUME macro-op to the mechanism.

        When tracing, the whole macro-op is bracketed so the COMM-OP
        profiler can recover its issue-clock span (``dur``), the queue
        full/empty blocking inside that span (``stall``), and the
        per-component attribution deltas — everything needed to compute the
        paper's COMM-OP delay without touching the mechanisms themselves.
        """
        mech = self.machine.mechanism
        if self.trace is None:
            if inst.kind is InstrKind.PRODUCE:
                self.stats.produces += 1
                yield from mech.produce(self, inst)
            else:
                self.stats.consumes += 1
                yield from mech.consume(self, inst)
            return
        t0 = self.t_issue
        comp0 = dict(self.stats.components)
        stall0 = self.stats.queue_full_stall + self.stats.queue_empty_stall
        if inst.kind is InstrKind.PRODUCE:
            self.stats.produces += 1
            kind = "comm.produce"
            yield from mech.produce(self, inst)
        else:
            self.stats.consumes += 1
            kind = "comm.consume"
            yield from mech.consume(self, inst)
        comps = self.stats.components
        deltas = {
            name.lower(): comps[name] - comp0[name]
            for name in comps
            if comps[name] > comp0[name]
        }
        stall = (
            self.stats.queue_full_stall + self.stats.queue_empty_stall - stall0
        )
        # Operand-feed exposure: a produce cannot complete before the app
        # dataflow delivers the value being sent.  That wait is application
        # time (identical across design points), not operation cost — the
        # profiler subtracts it from COMM-OP delay.
        feed = 0.0
        if inst.srcs:
            feed = max(
                0.0, min(self.scoreboard.ready(inst.srcs), self.t_issue) - t0
            )
        self.trace.emit(
            kind,
            t0,
            core=self.core_id,
            queue=inst.queue,
            dur=self.t_issue - t0,
            stall=stall,
            feed=feed,
            **deltas,
        )

    def _finish(self) -> None:
        """Drain: the thread ends when its last effect completes."""
        end = max(self.t_issue + 1.0, self.horizon)
        if self.pending_stores:
            end = max(end, max(t for t, _ in self.pending_stores))
        self.stats.cycles = int(round(end))
