"""Deterministic full-machine checkpoints: snapshot, persist, resume.

A long simulation that dies — preempted worker, OOM kill, watchdog SIGKILL —
used to restart from cycle 0.  This module makes the whole machine state a
*resumable value*: cores (stats, scoreboards, unit pools), software/hardware
queue channels, the OzQ/bus/cache hierarchy, mechanism state, the seeded
fault-plan counters, and the trace ring buffer are serialized together with
just enough scheduler state to continue the co-simulation exactly where it
stopped.

**Safe points.**  Core timing models run as Python generators, which cannot
be serialized mid-frame.  Instead, checkpoints are taken only at *global
safe points*: moments between scheduler steps when every live core generator
is suspended at an instruction-boundary heartbeat of
:meth:`~repro.sim.core.CoreModel.run` (``CoreModel.at_safe_point``).  At such
a suspension the generator's entire hidden state is its instruction cursor
(``instructions_run``), so a restored machine rebuilds each core's generator
by replaying the thread's (deterministic) instruction *stream* — not the
simulation — up to the cursor and continuing.  The scheduler's min-timestamp
policy is never perturbed: the checkpointer only observes, so enabling it
cannot change :class:`~repro.sim.stats.RunStats` or the trace stream, and a
kill → restore → continue sequence is bit-identical to never having crashed.

**Corruption safety.**  Snapshots are written to a temporary file, fsynced,
and atomically renamed into place; the previous snapshot is rotated to
``<path>.prev`` first.  The on-disk format carries a magic, a format
version, and CRC32s over both the metadata and the payload, so a torn,
truncated, or bit-flipped snapshot is *detected* (:func:`read_snapshot`
raises :class:`SnapshotCorruptError`), *quarantined*
(:func:`quarantine_snapshot` renames it aside for forensics), and recovery
falls back to the previous snapshot — or cycle 0 — never silently loading
garbage state (:func:`recover_snapshot`).

**Preemption.**  :meth:`Checkpointer.request_preempt` is async-signal-safe
(it only sets a flag): a SIGTERM handler can call it, the run checkpoints at
the next safe point, and :class:`PreemptionRequested` unwinds out of
``Machine.run`` with the snapshot attached — a preemptible worker loses at
most one checkpoint interval.

Typical use::

    from repro import Checkpointer, resume_run

    ckpt = Checkpointer(every=20_000, path="run.ckpt")
    try:
        stats = machine.run(program, checkpoint=ckpt)
    except PreemptionRequested:
        ...  # exit cleanly; a later process picks the snapshot up

    recovered = recover_snapshot("run.ckpt")
    if recovered is not None:
        stats = resume_run(recovered.snapshot, rebuild_program())
"""

from __future__ import annotations

import io
import json
import math
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import time as _time

from repro.sim.cosim import CoreRunner, Scheduler, _State
from repro.sim.kernel import create_kernel
from repro.sim.stats import RunStats

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "MachineSnapshot",
    "PreemptionRequested",
    "RecoveredSnapshot",
    "RunnerSnapshot",
    "SnapshotCorruptError",
    "SnapshotError",
    "inspect_snapshot",
    "quarantine_snapshot",
    "read_snapshot",
    "recover_snapshot",
    "resume_run",
    "write_snapshot",
]

#: File magic: 8 bytes, never reused across incompatible layouts.
CHECKPOINT_MAGIC = b"RPROCKPT"

#: Current snapshot format version.  Readers reject anything else — a
#: version bump is how incompatible machine-state changes stay safe.
CHECKPOINT_VERSION = 1

#: Suffix of the rotated previous snapshot (the fallback generation).
PREV_SUFFIX = ".prev"

#: Suffix quarantined (corrupt) snapshots are renamed to.
QUARANTINE_SUFFIX = ".quarantined"

_HEADER = struct.Struct("<8sII")  # magic, version, meta length
_META_TAIL = struct.Struct("<I")  # CRC32 of the meta block
_PAYLOAD_HEAD = struct.Struct("<QI")  # payload length, CRC32 of payload


class SnapshotError(RuntimeError):
    """Base class for checkpoint/restore failures."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file failed validation (magic/version/length/CRC/decode).

    Callers must treat the file as untrusted: quarantine it and fall back
    to an older snapshot or a cold start.  Never retried in place.
    """


class PreemptionRequested(Exception):
    """A graceful preemption completed: the run checkpointed and unwound.

    Not a :class:`~repro.sim.cosim.SimulationError` — the simulation is
    healthy; the *host* asked it to stop.  Carries everything a worker needs
    to report a clean hand-off.
    """

    def __init__(self, cycle: float, path: Optional[str], snapshot: "MachineSnapshot") -> None:
        super().__init__(
            f"preempted at cycle {cycle:.0f}"
            + (f"; snapshot written to {path}" if path else "")
        )
        self.cycle = cycle
        self.path = path
        self.snapshot = snapshot


@dataclass
class RunnerSnapshot:
    """Serializable state of one scheduler runner at a safe point."""

    core_id: int
    time: float
    done: bool
    steps: int
    last_progress_step: int
    last_progress_time: float


@dataclass
class MachineSnapshot:
    """One resumable machine state, captured at a global safe point.

    ``machine`` is the live object graph (cores, memory system, channels,
    mechanism, fault plan, trace buffer) — everything except the core
    generators, whose positions are the ``cursors``.  A snapshot read from
    disk owns a private copy of that graph; one obtained in memory shares
    the running machine's and must be serialized (or deep-copied) before the
    run advances further.
    """

    version: int
    mechanism: str
    program_name: str
    n_threads: int
    #: Conservative progress front (min live runner time) at capture.
    cycle: float
    total_steps: int
    runners: List[RunnerSnapshot]
    #: Instructions fully retired per thread — the replay cursor.
    cursors: List[int]
    machine: object = field(repr=False)

    def meta(self) -> dict:
        """Deterministic plain-data header block (no machine state)."""
        return {
            "version": self.version,
            "mechanism": self.mechanism,
            "program": self.program_name,
            "n_threads": self.n_threads,
            "cycle": self.cycle,
            "total_steps": self.total_steps,
            "cursors": list(self.cursors),
        }


# ----------------------------------------------------------------------
# On-disk format
# ----------------------------------------------------------------------


def _encode(snapshot: MachineSnapshot) -> bytes:
    meta = json.dumps(snapshot.meta(), sort_keys=True, separators=(",", ":")).encode()
    payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    out = io.BytesIO()
    out.write(_HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, len(meta)))
    out.write(meta)
    out.write(_META_TAIL.pack(zlib.crc32(meta)))
    out.write(_PAYLOAD_HEAD.pack(len(payload), zlib.crc32(payload)))
    out.write(payload)
    return out.getvalue()


def snapshot_to_bytes(snapshot: MachineSnapshot) -> bytes:
    """Serialize a snapshot to its (header + CRC + pickle) byte form."""
    return _encode(snapshot)


def snapshot_from_bytes(data: bytes, source: str = "<bytes>") -> MachineSnapshot:
    """Validate and decode :func:`snapshot_to_bytes` output.

    Raises :class:`SnapshotCorruptError` on any structural defect: short
    header, wrong magic, unknown version, truncation, CRC mismatch, or an
    undecodable payload.  Validation happens *before* unpickling, so a
    corrupt file never reaches the deserializer.
    """

    def corrupt(reason: str) -> SnapshotCorruptError:
        return SnapshotCorruptError(f"snapshot {source}: {reason}")

    if len(data) < _HEADER.size:
        raise corrupt(f"truncated header ({len(data)} bytes)")
    magic, version, meta_len = _HEADER.unpack_from(data, 0)
    if magic != CHECKPOINT_MAGIC:
        raise corrupt(f"bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise corrupt(
            f"format version {version} unsupported (reader is v{CHECKPOINT_VERSION})"
        )
    off = _HEADER.size
    if len(data) < off + meta_len + _META_TAIL.size:
        raise corrupt("truncated metadata block")
    meta_raw = data[off : off + meta_len]
    off += meta_len
    (meta_crc,) = _META_TAIL.unpack_from(data, off)
    off += _META_TAIL.size
    if zlib.crc32(meta_raw) != meta_crc:
        raise corrupt("metadata CRC mismatch")
    if len(data) < off + _PAYLOAD_HEAD.size:
        raise corrupt("truncated payload header")
    payload_len, payload_crc = _PAYLOAD_HEAD.unpack_from(data, off)
    off += _PAYLOAD_HEAD.size
    payload = data[off : off + payload_len]
    if len(payload) != payload_len:
        raise corrupt(
            f"truncated payload ({len(payload)} of {payload_len} bytes)"
        )
    if zlib.crc32(payload) != payload_crc:
        raise corrupt("payload CRC mismatch (bit flip or torn write)")
    try:
        snapshot = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any decode failure is corruption
        raise corrupt(f"payload failed to decode: {exc}") from exc
    if not isinstance(snapshot, MachineSnapshot):
        raise corrupt(f"payload decoded to {type(snapshot).__name__}, not a snapshot")
    return snapshot


def _resolve_fs(fs):
    # Imported lazily: repro.store.__init__ reaches this module through
    # dispatch → campaign, so a top-level import would form a cycle while
    # those packages are still half-initialised.
    from repro.store.io import resolve_fs

    return resolve_fs(fs)


def write_snapshot(
    path: str, snapshot: MachineSnapshot, keep_previous: bool = True, fs=None
) -> None:
    """Durably persist a snapshot with write-then-rename atomicity.

    The bytes land in ``<path>.tmp`` first and are fsynced before an
    ``os.replace`` into place, so a crash at any point leaves either the old
    snapshot or the new one — never a half-written file under the real name.
    With ``keep_previous`` the outgoing snapshot is rotated to
    ``<path>.prev`` first, preserving a fallback generation in case the new
    file is later found corrupt (media error after the write).

    ``fs`` is the OS facade from :mod:`repro.store.io` (default: the real
    filesystem; the chaos harness injects here).
    """
    fs = _resolve_fs(fs)
    data = _encode(snapshot)
    tmp = path + ".tmp"
    fd = fs.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        fs.write(fd, data)
        fs.fsync(fd)
    finally:
        fs.close(fd)
    if keep_previous and fs.exists(path):
        fs.replace(path, path + PREV_SUFFIX)
    fs.replace(tmp, path)
    fs.fsync_dir(os.path.dirname(os.path.abspath(path)))


def read_snapshot(path: str, fs=None) -> MachineSnapshot:
    """Read and validate one snapshot file (no quarantine, no fallback)."""
    try:
        data = _resolve_fs(fs).read_bytes(path)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return snapshot_from_bytes(data, source=path)


def inspect_snapshot(path: str) -> dict:
    """Validated metadata of a snapshot file, without unpickling the payload.

    Cheap enough for status displays: reads the header and meta block only
    (plus their CRC).  Raises :class:`SnapshotCorruptError` on a damaged
    header/meta region.
    """
    with open(path, "rb") as fh:
        head = fh.read(_HEADER.size)
        if len(head) < _HEADER.size:
            raise SnapshotCorruptError(f"snapshot {path}: truncated header")
        magic, version, meta_len = _HEADER.unpack(head)
        if magic != CHECKPOINT_MAGIC:
            raise SnapshotCorruptError(f"snapshot {path}: bad magic {magic!r}")
        if version != CHECKPOINT_VERSION:
            raise SnapshotCorruptError(
                f"snapshot {path}: format version {version} unsupported"
            )
        meta_raw = fh.read(meta_len)
        tail = fh.read(_META_TAIL.size)
    if len(meta_raw) != meta_len or len(tail) != _META_TAIL.size:
        raise SnapshotCorruptError(f"snapshot {path}: truncated metadata block")
    if zlib.crc32(meta_raw) != _META_TAIL.unpack(tail)[0]:
        raise SnapshotCorruptError(f"snapshot {path}: metadata CRC mismatch")
    return json.loads(meta_raw)


def quarantine_snapshot(path: str, fs=None) -> str:
    """Move a corrupt snapshot aside for forensics; returns the new path.

    Never deletes: a quarantined file is evidence (CI uploads them as
    artifacts).  Numbered suffixes keep multiple quarantines apart.
    """
    fs = _resolve_fs(fs)
    target = path + QUARANTINE_SUFFIX
    n = 1
    while fs.exists(target):
        n += 1
        target = f"{path}{QUARANTINE_SUFFIX}.{n}"
    fs.replace(path, target)
    return target


@dataclass
class RecoveredSnapshot:
    """What :func:`recover_snapshot` found: a snapshot plus provenance."""

    snapshot: MachineSnapshot
    path: str
    #: True when the newest generation was corrupt and the rotated
    #: ``.prev`` generation was used instead.
    used_fallback: bool = False
    #: Paths the corrupt generations were quarantined to (may be empty).
    quarantined: List[str] = field(default_factory=list)


def recover_snapshot(path: str, fs=None) -> Optional[RecoveredSnapshot]:
    """Load the newest *valid* snapshot generation, quarantining bad ones.

    Tries ``path`` then ``path + ".prev"``.  A generation that fails
    validation is quarantined (renamed aside, kept for forensics) and the
    next one is tried.  Returns ``None`` when no valid generation exists —
    the caller's signal to fall back to cycle 0.  Corruption therefore
    costs at most one checkpoint interval of progress, never correctness.
    """
    fs = _resolve_fs(fs)
    quarantined: List[str] = []
    for used_fallback, candidate in ((False, path), (True, path + PREV_SUFFIX)):
        if not fs.exists(candidate):
            continue
        try:
            snapshot = read_snapshot(candidate, fs=fs)
        except SnapshotCorruptError:
            quarantined.append(quarantine_snapshot(candidate, fs=fs))
            continue
        return RecoveredSnapshot(
            snapshot=snapshot,
            path=candidate,
            used_fallback=used_fallback,
            quarantined=quarantined,
        )
    return None


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------


def _progress_front(scheduler: Scheduler) -> float:
    """Min local time over live runners — the conservative progress bound."""
    live = [r.time for r in scheduler.runners if r.state is not _State.DONE]
    if not live:
        return max((r.time for r in scheduler.runners), default=0.0)
    return min(live)


def capture_snapshot(machine, program, scheduler: Scheduler) -> MachineSnapshot:
    """Build a :class:`MachineSnapshot` from a machine at a global safe point.

    The caller must have verified safety (every live runner suspended at an
    instruction-boundary heartbeat); :class:`Checkpointer` does.  The
    returned snapshot *shares* the live machine graph — serialize it before
    stepping the scheduler again.
    """
    runners = [
        RunnerSnapshot(
            core_id=r.core_id,
            time=r.time,
            done=r.state is _State.DONE,
            steps=r.steps,
            last_progress_step=r.last_progress_step,
            last_progress_time=r.last_progress_time,
        )
        for r in scheduler.runners
    ]
    cursors = [machine.cores[r.core_id].instructions_run for r in scheduler.runners]
    return MachineSnapshot(
        version=CHECKPOINT_VERSION,
        mechanism=machine.mechanism.name,
        program_name=program.name,
        n_threads=len(scheduler.runners),
        cycle=_progress_front(scheduler),
        total_steps=scheduler.total_steps,
        runners=runners,
        cursors=cursors,
        machine=machine,
    )


class Checkpointer:
    """Periodic safe-point snapshot engine threaded through the scheduler.

    Args:
        every: Simulated cycles between snapshots.  A snapshot is taken at
            the first global safe point after the progress front crosses
            each multiple of ``every`` (the absolute grid keeps restored
            runs on the same schedule as uninterrupted ones).
        path: Snapshot file destination (atomic write-then-rename, previous
            generation rotated to ``.prev``).  ``None`` keeps snapshots
            in memory only (``on_snapshot`` receives them).
        on_snapshot: Optional callback ``(snapshot, path_or_None)`` invoked
            after each snapshot is persisted — the campaign worker's journal
            hook.
        keep_previous: Rotate the outgoing file to ``.prev`` (default on).
        on_write_error: Optional handler for :class:`OSError` raised while
            persisting (``ENOSPC``, ``EIO``, ...).  When set, a failed write
            is *tolerated*: the handler is notified, ``write_failures`` is
            bumped, this snapshot is skipped, and the run continues to the
            next grid point — checkpointing is an optimization, and a full
            disk must not kill an otherwise-healthy simulation.  When
            ``None`` (the default) the error propagates.
        fs: OS facade from :mod:`repro.store.io` used to persist snapshots
            (default: the real filesystem; the chaos harness injects here).

    The engine is passive: it never mutates machine, channel, or scheduler
    state, so RunStats and trace streams are identical with checkpointing
    on or off.  ``Machine.run(checkpoint=...)`` wires it in; ``None`` keeps
    the scheduler hook to a single branch per step (zero-overhead contract).
    """

    def __init__(
        self,
        every: int,
        path: Optional[str] = None,
        on_snapshot: Optional[Callable[[MachineSnapshot, Optional[str]], None]] = None,
        keep_previous: bool = True,
        on_write_error: Optional[Callable[[OSError], None]] = None,
        fs=None,
    ) -> None:
        if every <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.every = int(every)
        self.path = path
        self.on_snapshot = on_snapshot
        self.keep_previous = keep_previous
        self.on_write_error = on_write_error
        self.fs = fs
        self._machine = None
        self._program = None
        self._next: float = float(every)
        self._preempt = False
        #: Snapshots taken over the engine's lifetime (spans resumes).
        self.snapshots_taken = 0
        #: Progress front at the most recent snapshot (None before any).
        self.last_cycle: Optional[float] = None
        #: Persist attempts swallowed by ``on_write_error``.
        self.write_failures = 0

    # -- wiring ---------------------------------------------------------

    def attach(self, machine, program, from_cycle: float = 0.0) -> "Checkpointer":
        """Bind to one run.  Called by ``Machine.run`` / :func:`resume_run`.

        ``from_cycle`` aligns the schedule to the absolute ``every`` grid so
        a restored run checkpoints at the same simulated cycles an
        uninterrupted run would.
        """
        self._machine = machine
        self._program = program
        self._next = (math.floor(from_cycle / self.every) + 1) * float(self.every)
        return self

    def request_preempt(self) -> None:
        """Ask for a checkpoint-and-stop at the next safe point.

        Async-signal-safe (only sets a flag): call it from a SIGTERM
        handler.  The run raises :class:`PreemptionRequested` once the
        snapshot is persisted.
        """
        self._preempt = True

    # -- scheduler hook -------------------------------------------------

    def _all_safe(self, scheduler: Scheduler) -> bool:
        cores = self._machine.cores
        for r in scheduler.runners:
            if r.state is _State.DONE:
                continue
            if r.state is not _State.RUNNABLE or not cores[r.core_id].at_safe_point:
                return False
        return True

    def on_step(self, scheduler: Scheduler) -> None:
        """Evaluate one checkpoint opportunity (after a scheduler step)."""
        front = _progress_front(scheduler)
        if not self._preempt and front < self._next:
            return
        if not self._all_safe(scheduler):
            return
        snapshot = capture_snapshot(self._machine, self._program, scheduler)
        persisted_path = self._persist(snapshot)
        self._next = (math.floor(front / self.every) + 1) * float(self.every)
        if self._preempt:
            self._preempt = False
            raise PreemptionRequested(snapshot.cycle, persisted_path, snapshot)

    def _persist(self, snapshot: MachineSnapshot) -> Optional[str]:
        """Persist one snapshot; returns its durable path (None if none)."""
        if self.path is not None:
            try:
                write_snapshot(
                    self.path,
                    snapshot,
                    keep_previous=self.keep_previous,
                    fs=self.fs,
                )
            except OSError as exc:
                if self.on_write_error is None:
                    raise
                # Tolerated: count it, tell the handler, skip this snapshot.
                # The schedule still advances, so a persistently full disk
                # costs one failed write per interval, not one per step.
                self.write_failures += 1
                self.on_write_error(exc)
                return None
        self.snapshots_taken += 1
        self.last_cycle = snapshot.cycle
        if self.on_snapshot is not None:
            self.on_snapshot(snapshot, self.path)
        return self.path


# ----------------------------------------------------------------------
# Resume
# ----------------------------------------------------------------------


def _empty_generator():
    return iter(())


def resume_run(
    snapshot: MachineSnapshot,
    program,
    max_steps: int = 50_000_000,
    wall_clock_budget: Optional[float] = None,
    checkpoint: Optional[Checkpointer] = None,
    kernel: Optional[str] = None,
    abort: Optional[Callable[[], Optional[str]]] = None,
) -> RunStats:
    """Continue a snapshotted run to completion; returns the full-run stats.

    ``program`` must be the same program the snapshot was taken from —
    programs carry generator *builders* (closures), which snapshots cannot
    serialize, so the caller rebuilds the program deterministically (exactly
    what campaign cells do) and this function replays each thread's
    instruction stream up to its cursor before handing the tail to the
    restored core.  Mismatched names or thread counts raise
    :class:`SnapshotError` rather than silently diverging.

    The returned :class:`~repro.sim.stats.RunStats` covers the run *from
    cycle 0*: restored counters already include all pre-snapshot history, so
    fingerprints are directly comparable with an uninterrupted run's.
    ``host_seconds``, by contrast, covers only the resumed segment — the
    host time the pre-crash process spent is gone with that process.

    ``kernel`` names the stepping engine for the resumed segment; ``None``
    uses the restored machine's ``config.kernel``.  Kernels may differ
    across a kill → restore boundary (the snapshot carries whichever bus
    calendar the snapshotting kernel used; the resuming kernel converts it
    on install) without perturbing the differential guarantee.

    A snapshot is single-use (resuming mutates its machine graph); read the
    file again — or re-decode the bytes — to resume twice.
    """
    if snapshot.version != CHECKPOINT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.version} unsupported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    if getattr(snapshot, "_consumed", False):
        raise SnapshotError(
            "snapshot already resumed once; a resume mutates its machine "
            "state — re-read the snapshot to resume again"
        )
    snapshot._consumed = True
    if program.name != snapshot.program_name:
        raise SnapshotError(
            f"snapshot was taken from program {snapshot.program_name!r} "
            f"but got {program.name!r}"
        )
    if program.n_threads != snapshot.n_threads:
        raise SnapshotError(
            f"snapshot has {snapshot.n_threads} threads "
            f"but program {program.name!r} has {program.n_threads}"
        )
    machine = snapshot.machine
    generators = []
    for i, thread in enumerate(program.threads):
        rs = snapshot.runners[i]
        if rs.done:
            generators.append(_empty_generator())
            continue
        stream = thread.instructions()
        for _ in range(snapshot.cursors[i]):
            next(stream)
        generators.append(machine.cores[i].run(stream))
    if checkpoint is not None:
        checkpoint.attach(machine, program, from_cycle=snapshot.cycle)
    started = _time.perf_counter()
    engine = create_kernel(
        kernel if kernel is not None else machine.config.kernel,
        generators,
        max_steps=max_steps,
        context_probe=machine._forensics_probe,
        trace=machine.trace,
        wall_clock_budget=wall_clock_budget,
        checkpoint=checkpoint,
        abort=abort,
    )
    engine.total_steps = snapshot.total_steps
    for runner, rs in zip(engine.runners, snapshot.runners):
        _restore_runner(runner, rs)
    engine.install(machine)
    engine.run()
    return RunStats(
        threads=[machine.cores[i].stats for i in range(program.n_threads)],
        host_seconds=_time.perf_counter() - started,
    )


def _restore_runner(runner: CoreRunner, rs: RunnerSnapshot) -> None:
    runner.time = rs.time
    runner.state = _State.DONE if rs.done else _State.RUNNABLE
    runner.steps = rs.steps
    runner.last_progress_step = rs.last_progress_step
    runner.last_progress_time = rs.last_progress_time
