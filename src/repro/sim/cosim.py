"""Conservative min-timestamp co-simulation of multiple core models.

Each core's timing model runs as a Python generator that yields control
messages; the scheduler always advances the runnable core with the smallest
local time, which guarantees that whenever a core touches shared state
(caches, bus, queue channels) at time *t*, every other core has either
advanced past *t* or is blocked waiting on this core — so shared state is
read and written in (approximately) timestamp order without any global clock
stepping.

Yield protocol (producer side is the core/mechanism code):

* ``("time", t)`` — heartbeat: the core's local clock reached ``t``.
* ``("block", predicate, deadline)`` — the core cannot proceed until
  ``predicate()`` (a closure over shared channel state) becomes true.  The
  scheduler resumes the generator with ``"ok"`` once the predicate holds, or
  with ``"timeout"`` when ``deadline`` (a simulated time, or ``None``) passes
  without the predicate holding — used by SYNCOPTI's partial-line timeout.

A generator finishing (``StopIteration``) marks its core done.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Tuple


class DeadlockError(RuntimeError):
    """All live cores are blocked and no deadline can fire."""


class SimulationLimitError(RuntimeError):
    """The scheduler exceeded its step budget (runaway program)."""


class _State(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class CoreRunner:
    """Book-keeping wrapper around one core generator."""

    core_id: int
    gen: Generator
    time: float = 0.0
    state: _State = _State.RUNNABLE
    predicate: Optional[Callable[[], bool]] = None
    deadline: Optional[float] = None
    resume_value: Optional[str] = None
    steps: int = 0


class Scheduler:
    """Min-timestamp scheduler over a set of core generators."""

    def __init__(self, generators, max_steps: int = 50_000_000) -> None:
        self.runners: List[CoreRunner] = [
            CoreRunner(core_id=i, gen=g) for i, g in enumerate(generators)
        ]
        self.max_steps = max_steps
        self.total_steps = 0

    def run(self) -> None:
        """Drive all cores to completion."""
        while True:
            self._wake_ready()
            runnable = [r for r in self.runners if r.state is _State.RUNNABLE]
            if not runnable:
                if all(r.state is _State.DONE for r in self.runners):
                    return
                if not self._fire_timeout():
                    self._raise_deadlock()
                continue
            runner = min(runnable, key=lambda r: r.time)
            self._step(runner)

    # ------------------------------------------------------------------

    def _wake_ready(self) -> None:
        for r in self.runners:
            if r.state is not _State.BLOCKED:
                continue
            if r.predicate is not None and r.predicate():
                self._wake(r, "ok")
            elif r.deadline is not None and self._others_past(r, r.deadline):
                self._wake(r, "timeout")

    def _others_past(self, runner: CoreRunner, deadline: float) -> bool:
        """True when no other core can produce an event before ``deadline``."""
        for other in self.runners:
            if other is runner:
                continue
            if other.state is _State.DONE:
                continue
            if other.state is _State.RUNNABLE and other.time <= deadline:
                return False
            if other.state is _State.BLOCKED:
                # A blocked peer could be woken by us later; treat its
                # current time as its earliest possible event time.
                if other.time <= deadline:
                    return False
        return True

    def _wake(self, runner: CoreRunner, value: str) -> None:
        runner.state = _State.RUNNABLE
        runner.resume_value = value
        runner.predicate = None
        runner.deadline = None

    def _fire_timeout(self) -> bool:
        """With everyone blocked, fire the earliest deadline, if any."""
        candidates = [
            r for r in self.runners if r.state is _State.BLOCKED and r.deadline is not None
        ]
        if not candidates:
            return False
        self._wake(min(candidates, key=lambda r: r.deadline), "timeout")
        return True

    def _raise_deadlock(self) -> None:
        blocked = [r.core_id for r in self.runners if r.state is _State.BLOCKED]
        raise DeadlockError(
            f"cores {blocked} are blocked with no satisfiable predicate — "
            "produce/consume counts are mismatched or a queue dependency cycle exists"
        )

    def _step(self, runner: CoreRunner) -> None:
        self.total_steps += 1
        runner.steps += 1
        if self.total_steps > self.max_steps:
            raise SimulationLimitError(
                f"exceeded {self.max_steps} scheduler steps; "
                "suspected runaway workload"
            )
        try:
            msg = runner.gen.send(runner.resume_value)
        except StopIteration:
            runner.state = _State.DONE
            return
        finally:
            runner.resume_value = None
        if not isinstance(msg, tuple) or not msg:
            raise TypeError(f"core {runner.core_id} yielded malformed message {msg!r}")
        kind = msg[0]
        if kind == "time":
            runner.time = max(runner.time, float(msg[1]))
        elif kind == "block":
            _, predicate, deadline = msg
            if predicate():
                runner.resume_value = "ok"  # condition already satisfied
            else:
                runner.state = _State.BLOCKED
                runner.predicate = predicate
                runner.deadline = deadline
        else:
            raise ValueError(f"core {runner.core_id} yielded unknown message {msg!r}")
