"""Conservative min-timestamp co-simulation of multiple core models.

Each core's timing model runs as a Python generator that yields control
messages; the kernel always advances the runnable core with the smallest
local time, which guarantees that whenever a core touches shared state
(caches, bus, queue channels) at time *t*, every other core has either
advanced past *t* or is blocked waiting on this core — so shared state is
read and written in (approximately) timestamp order without any global clock
stepping.

Yield protocol (producer side is the core/mechanism code):

* ``("time", t)`` — heartbeat: the core's local clock reached ``t``.
* ``("block", predicate, deadline)`` — the core cannot proceed until
  ``predicate()`` (a closure over shared channel state) becomes true.  The
  kernel resumes the generator with ``"ok"`` once the predicate holds, or
  with ``"timeout"`` when ``deadline`` (a simulated time, or ``None``) passes
  without the predicate holding — used by SYNCOPTI's partial-line timeout.

A generator finishing (``StopIteration``) marks its core done.

Failure forensics: when the kernel detects a deadlock (everyone blocked,
no deadline can fire) or exhausts its step budget, it raises a
:class:`SimulationError` subclass carrying a structured
:class:`~repro.sim.forensics.PostMortem` (``exc.post_mortem``) built from
its per-core book-keeping plus whatever the optional ``context_probe``
callback supplies (queue-channel snapshots and fault-injection records from
the owning :class:`~repro.sim.machine.Machine`).

The implementation lives in :mod:`repro.sim.kernel`: the stepping loop is
a pluggable :class:`~repro.sim.kernel.base.SimKernel` and this module is
its historical import surface.  :class:`Scheduler` is the ``reference``
kernel — the original loop, unchanged — which every other kernel (e.g. the
event-driven ``"event"`` fast path) is differentially tested against.
"""

from __future__ import annotations

from repro.sim.kernel.base import (  # noqa: F401  (re-exported API surface)
    ContextProbe,
    CoreRunner,
    DeadlockError,
    SimulationAbortedError,
    SimulationError,
    SimulationLimitError,
    WALL_CLOCK_CHECK_INTERVAL,
    WallClockExceededError,
    _State,
)
from repro.sim.kernel.reference import ReferenceKernel

#: The original scheduler name; the class moved to
#: :class:`repro.sim.kernel.reference.ReferenceKernel` unchanged.
Scheduler = ReferenceKernel

__all__ = [
    "ContextProbe",
    "CoreRunner",
    "DeadlockError",
    "Scheduler",
    "SimulationAbortedError",
    "SimulationError",
    "SimulationLimitError",
    "WALL_CLOCK_CHECK_INTERVAL",
    "WallClockExceededError",
]
