"""Conservative min-timestamp co-simulation of multiple core models.

Each core's timing model runs as a Python generator that yields control
messages; the scheduler always advances the runnable core with the smallest
local time, which guarantees that whenever a core touches shared state
(caches, bus, queue channels) at time *t*, every other core has either
advanced past *t* or is blocked waiting on this core — so shared state is
read and written in (approximately) timestamp order without any global clock
stepping.

Yield protocol (producer side is the core/mechanism code):

* ``("time", t)`` — heartbeat: the core's local clock reached ``t``.
* ``("block", predicate, deadline)`` — the core cannot proceed until
  ``predicate()`` (a closure over shared channel state) becomes true.  The
  scheduler resumes the generator with ``"ok"`` once the predicate holds, or
  with ``"timeout"`` when ``deadline`` (a simulated time, or ``None``) passes
  without the predicate holding — used by SYNCOPTI's partial-line timeout.

A generator finishing (``StopIteration``) marks its core done.

Failure forensics: when the scheduler detects a deadlock (everyone blocked,
no deadline can fire) or exhausts its step budget, it raises a
:class:`SimulationError` subclass carrying a structured
:class:`~repro.sim.forensics.PostMortem` (``exc.post_mortem``) built from
its per-core book-keeping plus whatever the optional ``context_probe``
callback supplies (queue-channel snapshots and fault-injection records from
the owning :class:`~repro.sim.machine.Machine`).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from repro.sim.forensics import ChannelDump, CoreDump, PostMortem

#: Signature of the optional machine-context probe: returns (channel
#: snapshots, fault-injection records[, per-core trace tail]) for
#: post-mortem construction — the third element is optional so probes
#: written before the tracing subsystem keep working.
ContextProbe = Callable[[], Tuple[Sequence[ChannelDump], Sequence[object]]]

#: Scheduler steps between wall-clock watchdog checks: frequent enough that a
#: livelocked run (e.g. a spin loop recirculating through a huge injected
#: queue-slot stall) is caught within milliseconds of its budget, rare enough
#: that the ``time.monotonic()`` call is invisible in profile.
WALL_CLOCK_CHECK_INTERVAL = 2048


class SimulationError(RuntimeError):
    """Base class for scheduler failures; carries a structured post-mortem."""

    def __init__(self, message: str, post_mortem: Optional[PostMortem] = None) -> None:
        super().__init__(message)
        self.post_mortem = post_mortem


class DeadlockError(SimulationError):
    """All live cores are blocked and no deadline can fire."""


class SimulationLimitError(SimulationError):
    """The scheduler exceeded its step budget (runaway program)."""


class WallClockExceededError(SimulationError):
    """The simulation outlived its host wall-clock budget.

    Raised by the scheduler's in-process watchdog (checked every
    :data:`WALL_CLOCK_CHECK_INTERVAL` steps), so the post-mortem is built
    while the run's channel and core state are still alive — the campaign
    runner records it in a :class:`~repro.harness.runner.TimedOutRun` before
    the pool's hard kill would have destroyed all forensics.

    Unlike deadlocks and step-limit overruns — which are functions of the
    (seeded, deterministic) simulation alone and therefore reproduce on every
    retry — a wall-clock overrun depends on host load, so it is classified
    *transient* by :func:`repro.faults.classify.classify_error_type`.
    """

    def __init__(
        self,
        message: str,
        post_mortem: Optional[PostMortem] = None,
        budget: float = 0.0,
        elapsed: float = 0.0,
    ) -> None:
        super().__init__(message, post_mortem=post_mortem)
        self.budget = budget
        self.elapsed = elapsed


class _State(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class CoreRunner:
    """Book-keeping wrapper around one core generator."""

    core_id: int
    gen: Generator
    time: float = 0.0
    state: _State = _State.RUNNABLE
    predicate: Optional[Callable[[], bool]] = None
    deadline: Optional[float] = None
    resume_value: Optional[str] = None
    steps: int = 0
    #: Scheduler step / local time at this runner's most recent advance.
    last_progress_step: int = 0
    last_progress_time: float = 0.0


class Scheduler:
    """Min-timestamp scheduler over a set of core generators."""

    def __init__(
        self,
        generators,
        max_steps: int = 50_000_000,
        context_probe: Optional[ContextProbe] = None,
        trace=None,
        wall_clock_budget: Optional[float] = None,
        checkpoint=None,
    ) -> None:
        self.runners: List[CoreRunner] = [
            CoreRunner(core_id=i, gen=g) for i, g in enumerate(generators)
        ]
        self.max_steps = max_steps
        self.total_steps = 0
        self.context_probe = context_probe
        #: Host seconds this run may consume (None = unbounded).  Checked
        #: every WALL_CLOCK_CHECK_INTERVAL steps; the clock starts at
        #: construction so setup cost counts against the budget too.
        self.wall_clock_budget = wall_clock_budget
        self._wall_clock_start = time.monotonic() if wall_clock_budget else None
        #: Optional :class:`~repro.trace.buffer.TraceBuffer`; ``None`` keeps
        #: every scheduler hook to a single branch (zero-overhead contract).
        self.trace = trace
        #: Optional :class:`~repro.sim.checkpoint.Checkpointer`, pinned like
        #: ``trace``: ``None`` (the default) reduces the hook to one branch
        #: per scheduler step.  When set, its ``on_step`` runs after every
        #: step and snapshots the machine at due safe points.  Checkpointing
        #: never mutates simulation state, so enabling it cannot change
        #: RunStats or the trace stream.
        self.checkpoint = checkpoint

    def run(self) -> None:
        """Drive all cores to completion."""
        while True:
            self._wake_ready()
            runnable = [r for r in self.runners if r.state is _State.RUNNABLE]
            if not runnable:
                if all(r.state is _State.DONE for r in self.runners):
                    return
                if not self._fire_timeout():
                    self._raise_deadlock()
                continue
            runner = min(runnable, key=lambda r: r.time)
            self._step(runner)
            if self.checkpoint is not None:
                self.checkpoint.on_step(self)

    # ------------------------------------------------------------------

    def _wake_ready(self) -> None:
        for r in self.runners:
            if r.state is not _State.BLOCKED:
                continue
            if r.predicate is not None and r.predicate():
                self._wake(r, "ok")
            elif r.deadline is not None and self._others_past(r, r.deadline):
                self._wake(r, "timeout")

    def _others_past(self, runner: CoreRunner, deadline: float) -> bool:
        """True when no other core can produce an event before ``deadline``."""
        for other in self.runners:
            if other is runner:
                continue
            if other.state is _State.DONE:
                continue
            if other.state is _State.RUNNABLE and other.time <= deadline:
                return False
            if other.state is _State.BLOCKED:
                # A blocked peer could be woken by us later; treat its
                # current time as its earliest possible event time.
                if other.time <= deadline:
                    return False
        return True

    def _wake(self, runner: CoreRunner, value: str) -> None:
        runner.state = _State.RUNNABLE
        runner.resume_value = value
        runner.predicate = None
        runner.deadline = None
        if self.trace is not None:
            self.trace.emit(
                "sched.resume", runner.time, core=runner.core_id, status=value
            )

    def _fire_timeout(self) -> bool:
        """With everyone blocked, fire the earliest deadline, if any.

        Ties (equal deadlines) resolve to the lowest core id: ``min`` is
        stable and runners are kept in core-id order, so repeated runs fire
        the same runner first — determinism the tests pin down.
        """
        candidates = [
            r for r in self.runners if r.state is _State.BLOCKED and r.deadline is not None
        ]
        if not candidates:
            return False
        self._wake(min(candidates, key=lambda r: r.deadline), "timeout")
        return True

    # ------------------------------------------------------------------
    # Failure forensics
    # ------------------------------------------------------------------

    def build_post_mortem(self, reason: str) -> PostMortem:
        """Snapshot scheduler + machine context into a structured report."""
        cores = [
            CoreDump(
                core_id=r.core_id,
                state=r.state.value,
                time=r.time,
                steps=r.steps,
                last_progress_step=r.last_progress_step,
                last_progress_time=r.last_progress_time,
                deadline=r.deadline,
            )
            for r in self.runners
        ]
        channels: List[ChannelDump] = []
        injections: List[object] = []
        trace_tail: dict = {}
        if self.context_probe is not None:
            probed = self.context_probe()
            channels = list(probed[0])
            injections = list(probed[1])
            if len(probed) > 2:  # older two-tuple probes stay supported
                trace_tail = dict(probed[2])
        return PostMortem(
            reason=reason,
            total_steps=self.total_steps,
            cores=cores,
            channels=channels,
            injections=injections,
            trace_tail=trace_tail,
        )

    def _raise_deadlock(self) -> None:
        blocked = [r.core_id for r in self.runners if r.state is _State.BLOCKED]
        pm = self.build_post_mortem("deadlock")
        raise DeadlockError(
            f"cores {blocked} are blocked with no satisfiable predicate — "
            "produce/consume counts are mismatched or a queue dependency "
            f"cycle exists\n{pm.render()}",
            post_mortem=pm,
        )

    def _raise_limit(self) -> None:
        pm = self.build_post_mortem("step-limit")
        raise SimulationLimitError(
            f"exceeded {self.max_steps} scheduler steps; "
            f"suspected runaway workload\n{pm.render()}",
            post_mortem=pm,
        )

    def _check_wall_clock(self) -> None:
        elapsed = time.monotonic() - self._wall_clock_start
        if elapsed <= self.wall_clock_budget:
            return
        pm = self.build_post_mortem("wall-clock")
        raise WallClockExceededError(
            f"exceeded the {self.wall_clock_budget:g}s wall-clock budget after "
            f"{elapsed:.2f}s and {self.total_steps} steps — the run is wedged "
            f"or far too slow for its deadline\n{pm.render()}",
            post_mortem=pm,
            budget=self.wall_clock_budget,
            elapsed=elapsed,
        )

    # ------------------------------------------------------------------

    def _step(self, runner: CoreRunner) -> None:
        self.total_steps += 1
        runner.steps += 1
        runner.last_progress_step = self.total_steps
        if self.total_steps > self.max_steps:
            self._raise_limit()
        if (
            self._wall_clock_start is not None
            and self.total_steps % WALL_CLOCK_CHECK_INTERVAL == 0
        ):
            self._check_wall_clock()
        try:
            msg = runner.gen.send(runner.resume_value)
        except StopIteration:
            runner.state = _State.DONE
            runner.last_progress_time = runner.time
            if self.trace is not None:
                self.trace.emit("sched.done", runner.time, core=runner.core_id)
            return
        finally:
            runner.resume_value = None
        if not isinstance(msg, tuple) or not msg:
            raise TypeError(f"core {runner.core_id} yielded malformed message {msg!r}")
        kind = msg[0]
        if kind == "time":
            runner.time = max(runner.time, float(msg[1]))
            runner.last_progress_time = runner.time
        elif kind == "block":
            _, predicate, deadline = msg
            if predicate():
                runner.resume_value = "ok"  # condition already satisfied
            else:
                runner.state = _State.BLOCKED
                runner.predicate = predicate
                runner.deadline = deadline
                if self.trace is not None:
                    self.trace.emit(
                        "sched.block",
                        runner.time,
                        core=runner.core_id,
                        deadline=deadline,
                    )
        else:
            raise ValueError(f"core {runner.core_id} yielded unknown message {msg!r}")
