"""Transient-vs-deterministic classification of failed experiment cells.

The simulator is deterministic end to end: every fault-injection decision is
drawn from :class:`~repro.faults.plan.FaultPlan`'s seeded per-event RNG, the
scheduler breaks ties in core-id order, and no global randomness is
consumed.  That guarantee cuts the failure space cleanly in two:

* **Deterministic** — failures produced *by the simulation itself*
  (deadlock, step-limit overrun, config/usage errors surfaced inside a
  worker).  Re-running the cell with the same seed replays the exact same
  event sequence, so a retry is guaranteed to fail identically: the
  campaign runner fails these fast and keeps the diagnosis.

* **Transient** — failures produced *by the host*: a wall-clock watchdog
  kill (:class:`~repro.harness.runner.TimedOutRun`), a worker process that
  died without reporting (OOM kill, operator signal), a graceful preemption
  (:class:`~repro.harness.runner.PreemptedRun` — the worker checkpointed
  first), or an I/O failure while writing the ledger or a checkpoint
  (``ENOSPC``, ``EIO``, ...).  These depend on machine load and disk
  health, not on the simulated program, so the campaign runner retries them
  with seeded exponential backoff.

The classifier keys on ``error_type`` strings rather than exception classes
because the campaign ledger round-trips outcomes through JSON — a resumed
campaign must classify a record read from disk exactly as it classified the
live outcome.
"""

from __future__ import annotations

import enum
from typing import Optional

#: ``error_type`` values describing host-side interference; anything else
#: came out of the deterministic simulation (or deterministic user error).
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "WallClockExceededError",  # in-process watchdog fired
        "SimulationAbortedError",  # external abort probe (lease fence, drill)
        "TimedOutRun",  # hard kill by the pool watchdog
        "WorkerDiedError",  # worker exited without reporting an outcome
        "PreemptedRun",  # worker checkpointed and exited on SIGTERM
        # Host I/O failures during ledger or checkpoint writes: a full or
        # flaky disk (ENOSPC, EIO, ...) says nothing about the simulated
        # program, so the campaign retries with backoff instead of crashing
        # the loop.  All OSError flavors surface under these names.
        "OSError",
        "IOError",  # alias of OSError, but workers report the raised name
        "BlockingIOError",
        "InterruptedError",
        "TimeoutError",
        "LedgerWriteError",  # ledger append exhausted its own retries
        "CheckpointWriteError",  # snapshot persist exhausted its own retries
    }
)


class FailureClass(enum.Enum):
    """Retry verdict for one failed cell attempt."""

    #: Host-side interference: retrying may succeed.
    TRANSIENT = "transient"
    #: Simulation-side failure: the seeded replay will fail identically.
    DETERMINISTIC = "deterministic"


def classify_error_type(error_type: str) -> FailureClass:
    """Classify a failure by its ``error_type`` string (ledger-stable)."""
    if error_type in TRANSIENT_ERROR_TYPES:
        return FailureClass.TRANSIENT
    return FailureClass.DETERMINISTIC


def classify_outcome(outcome) -> Optional[FailureClass]:
    """Classify a :data:`~repro.harness.runner.RunOutcome`.

    Returns ``None`` for successful runs, :attr:`FailureClass.TRANSIENT`
    for watchdog kills and dead workers, and
    :attr:`FailureClass.DETERMINISTIC` for simulation diagnoses.
    """
    if outcome.ok:
        return None
    return classify_error_type(outcome.error_type)
