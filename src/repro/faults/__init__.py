"""Deterministic fault injection for robustness studies (see plan.py), plus
the transient-vs-deterministic failure classification the campaign runner's
retry policy is built on (see classify.py)."""

from repro.faults.classify import (
    TRANSIENT_ERROR_TYPES,
    FailureClass,
    classify_error_type,
    classify_outcome,
)
from repro.faults.plan import FaultInjection, FaultKind, FaultPlan, FaultRule

__all__ = [
    "TRANSIENT_ERROR_TYPES",
    "FailureClass",
    "FaultInjection",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "classify_error_type",
    "classify_outcome",
]
