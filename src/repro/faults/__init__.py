"""Deterministic fault injection for robustness studies (see plan.py)."""

from repro.faults.plan import FaultInjection, FaultKind, FaultPlan, FaultRule

__all__ = ["FaultInjection", "FaultKind", "FaultPlan", "FaultRule"]
