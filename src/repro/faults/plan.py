"""Seeded, deterministic fault injection for the simulated CMP.

The paper's mechanisms exist precisely because streaming hardware must
tolerate imperfect timing: SYNCOPTI's partial-line timeout absorbs forwards
that never complete, write-forward delivery rides a contended snoop bus, and
occupancy-counter ACKs are small messages that can be arbitrarily delayed.
A :class:`FaultPlan` lets experiments *exercise* those tolerance paths — and
the failure-diagnosis machinery around them — without touching mechanism
code: the memory system, bus, and queue channels each consult the plan at a
narrow hook point, and mechanisms stay fault-oblivious.

Fault sites (one :class:`FaultKind` per hook):

* ``FORWARD_DELAY`` / ``FORWARD_DROP`` — perturb or suppress the delivery of
  a producer-initiated write-forward (:meth:`MemorySystem.forward_line`).  A
  dropped forward leaves the line owned by the producer; SYNCOPTI consumers
  recover via the partial-line-timeout demand fetch, MEMOPTI consumers via
  their normal coherence miss.
* ``BUS_JITTER`` — add bounded random latency to a shared-bus transaction's
  arbitration request (:meth:`SharedBus.transfer`).
* ``QUEUE_SLOT_STALL`` — delay the visibility of a queue slot's recycling to
  the producer (:meth:`QueueChannel.record_freed`).  An *infinite* stall
  wedges the channel: no further frees are ever observed, which is the
  canonical way to force a diagnosable deadlock.
* ``ACK_DELAY`` — delay occupancy-counter ACK / control messages
  (:meth:`MemorySystem.control_ack`), SYNCOPTI's bulk-ACK path.

Determinism: every injection decision is drawn from a ``random.Random``
seeded by an integer mix of ``(plan seed, rule index, per-rule event
number)``.  No global RNG state is consumed, so two plans built with the
same seed and rules drive byte-identical simulations — the property the
robustness tests assert on ``RunStats``.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class FaultKind(enum.Enum):
    """Injection site selector; one value per hook point."""

    FORWARD_DELAY = "forward-delay"
    FORWARD_DROP = "forward-drop"
    BUS_JITTER = "bus-jitter"
    QUEUE_SLOT_STALL = "queue-slot-stall"
    ACK_DELAY = "ack-delay"


@dataclass(frozen=True)
class FaultRule:
    """One fault source: where to inject, how hard, and how often.

    Args:
        kind: Which hook point this rule applies to.
        magnitude: Delay in CPU cycles.  Fixed for delay/stall kinds; the
            upper bound of a uniform draw for ``BUS_JITTER``.  ``math.inf``
            is allowed only for ``QUEUE_SLOT_STALL`` and wedges the channel.
        probability: Per-event injection probability in ``[0, 1]``.
        queue_id: Restrict to one architectural queue (``None`` = any).
        core_id: Restrict to one core / bus requester (``None`` = any).
        after: Skip the first ``after`` matching events at this rule.
        count: Inject at most ``count`` times (``None`` = unlimited).
    """

    kind: FaultKind
    magnitude: float = 0.0
    probability: float = 1.0
    queue_id: Optional[int] = None
    core_id: Optional[int] = None
    after: int = 0
    count: Optional[int] = None

    def validate(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise ValueError(f"rule kind must be a FaultKind, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")
        if self.magnitude < 0:
            raise ValueError("fault magnitude must be non-negative")
        if math.isinf(self.magnitude) and self.kind is not FaultKind.QUEUE_SLOT_STALL:
            raise ValueError("only QUEUE_SLOT_STALL rules may use an infinite magnitude")
        if self.after < 0:
            raise ValueError("after must be non-negative")
        if self.count is not None and self.count <= 0:
            raise ValueError("count must be positive (or None)")

    def matches(self, queue_id: Optional[int], core_id: Optional[int]) -> bool:
        if self.queue_id is not None and self.queue_id != queue_id:
            return False
        if self.core_id is not None and self.core_id != core_id:
            return False
        return True


@dataclass
class FaultInjection:
    """Forensic record of one applied fault (consumed by post-mortems)."""

    kind: str
    at: float
    delay: float
    queue_id: Optional[int] = None
    core_id: Optional[int] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        where = []
        if self.queue_id is not None:
            where.append(f"queue {self.queue_id}")
        if self.core_id is not None:
            where.append(f"core {self.core_id}")
        loc = " ".join(where) or "global"
        delay = "inf" if math.isinf(self.delay) else f"{self.delay:g}"
        return f"t={self.at:.0f} {self.kind} @ {loc} (+{delay} cycles)"


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus its injection log.

    The plan is attached to a :class:`~repro.sim.config.MachineConfig` via
    its ``faults`` field; :class:`~repro.sim.machine.Machine` calls
    :meth:`reset` at construction so a plan reused across grid cells starts
    every run from event zero.
    """

    def __init__(self, seed: int = 0, rules: Tuple[FaultRule, ...] = ()) -> None:
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self._event_counts: List[int] = [0] * len(self.rules)
        self.injections: List[FaultInjection] = []
        #: Optional trace sink, set by the owning Machine at construction;
        #: injections then also land in the event trace as ``fault.inject``.
        self.trace = None

    # ------------------------------------------------------------------

    def validate(self) -> "FaultPlan":
        for rule in self.rules:
            rule.validate()
        return self

    def reset(self) -> None:
        """Rewind all per-rule event counters and clear the injection log."""
        self._event_counts = [0] * len(self.rules)
        self.injections = []

    # ------------------------------------------------------------------
    # Deterministic per-event randomness
    # ------------------------------------------------------------------

    def _rng(self, rule_index: int, event: int) -> random.Random:
        # Integer mixing keeps the draw independent of Python hash
        # randomization and of call order at other sites.
        key = (
            (self.seed & 0xFFFFFFFF) * 0x9E3779B1
            ^ (rule_index + 1) * 0x85EBCA77
            ^ (event + 1) * 0xC2B2AE3D
        ) & 0xFFFFFFFFFFFFFFFF
        return random.Random(key)

    def _fires(self, rule_index: int, rule: FaultRule) -> Tuple[bool, random.Random]:
        """Advance the rule's event counter; decide whether it injects."""
        event = self._event_counts[rule_index]
        self._event_counts[rule_index] = event + 1
        if event < rule.after:
            return False, self._rng(rule_index, event)
        if rule.count is not None and event >= rule.after + rule.count:
            return False, self._rng(rule_index, event)
        rng = self._rng(rule_index, event)
        if rule.probability < 1.0 and rng.random() >= rule.probability:
            return False, rng
        return True, rng

    def _collect(
        self,
        kind: FaultKind,
        at: float,
        queue_id: Optional[int],
        core_id: Optional[int],
        uniform: bool,
        **detail,
    ) -> float:
        """Sum the delays of every firing rule of ``kind`` at this event."""
        total = 0.0
        for index, rule in enumerate(self.rules):
            if rule.kind is not kind or not rule.matches(queue_id, core_id):
                continue
            fired, rng = self._fires(index, rule)
            if not fired:
                continue
            delay = rng.uniform(0.0, rule.magnitude) if uniform else rule.magnitude
            total += delay
            self._record(
                FaultInjection(
                    kind=kind.value,
                    at=at,
                    delay=delay,
                    queue_id=queue_id,
                    core_id=core_id,
                    detail=dict(detail),
                )
            )
        return total

    def _record(self, inj: FaultInjection) -> None:
        """Log one injection (and mirror it into the trace, if any)."""
        self.injections.append(inj)
        if self.trace is not None:
            self.trace.emit(
                "fault.inject",
                inj.at,
                core=inj.core_id,
                queue=inj.queue_id,
                fault=inj.kind,
                delay=inj.delay,
            )

    # ------------------------------------------------------------------
    # Hook-point queries (called by the memory system / bus / channels)
    # ------------------------------------------------------------------

    def bus_jitter(self, requester: int, at: float) -> float:
        """Extra cycles before a bus transaction may request arbitration."""
        return self._collect(
            FaultKind.BUS_JITTER, at, queue_id=None, core_id=requester, uniform=True
        )

    def forward_fault(
        self, queue_id: Optional[int], src: int, dst: int, at: float
    ) -> Tuple[bool, float]:
        """(dropped, extra_delay) verdict for one write-forward delivery."""
        dropped = False
        for index, rule in enumerate(self.rules):
            if rule.kind is not FaultKind.FORWARD_DROP:
                continue
            if not rule.matches(queue_id, src):
                continue
            fired, _ = self._fires(index, rule)
            if fired:
                dropped = True
                self._record(
                    FaultInjection(
                        kind=FaultKind.FORWARD_DROP.value,
                        at=at,
                        delay=0.0,
                        queue_id=queue_id,
                        core_id=src,
                        detail={"dst": dst},
                    )
                )
        delay = 0.0
        if not dropped:
            delay = self._collect(
                FaultKind.FORWARD_DELAY,
                at,
                queue_id=queue_id,
                core_id=src,
                uniform=False,
                dst=dst,
            )
        return dropped, delay

    def queue_slot_stall(self, queue_id: int, slot_index: int, at: float) -> float:
        """Extra cycles before slot recycling becomes producer-visible.

        ``math.inf`` wedges the channel (no further frees observed).
        """
        return self._collect(
            FaultKind.QUEUE_SLOT_STALL,
            at,
            queue_id=queue_id,
            core_id=None,
            uniform=False,
            slot=slot_index,
        )

    def ack_delay(self, core_id: int, at: float) -> float:
        """Extra cycles before an occupancy ACK / control message issues."""
        return self._collect(
            FaultKind.ACK_DELAY, at, queue_id=None, core_id=core_id, uniform=False
        )

    # ------------------------------------------------------------------

    def injections_for_queue(self, queue_id: int) -> List[FaultInjection]:
        return [inj for inj in self.injections if inj.queue_id == queue_id]

    def describe(self) -> str:
        if not self.rules:
            return f"FaultPlan(seed={self.seed}, no rules)"
        parts = ", ".join(
            f"{r.kind.value}x{r.magnitude:g}@p={r.probability:g}" for r in self.rules
        )
        return f"FaultPlan(seed={self.seed}, {parts})"
