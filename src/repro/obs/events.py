"""Structured JSON event log with correlation IDs.

One serve query (or campaign cell) gets one **correlation ID** (cid)
minted at the edge; every layer the request passes through — coalescing,
the executor pool, ``WorkQueue`` lease files, the worker's store
publish, store hit/miss — appends a JSON event tagged with that cid to
a shared-filesystem JSONL log.  ``repro obs tail --cid <id>`` then
reconstructs the request's full cross-process story by filtering and
time-ordering the log.

Write discipline mirrors the campaign ledger (the proven crash-safe
appender): each event is **one ``write`` of one full line** to an
``O_APPEND`` descriptor opened through the :mod:`repro.store.io`
facade, so concurrent writers (serve process, pool workers, fleet
workers on other hosts) interleave at line granularity and a crash can
only tear the final line.  The reader skips torn/garbage tails instead
of failing.  ``fsync`` per event is optional (``sync=True``) — the obs
log is diagnostic, not a ledger of record, so the default favors
latency.

Timestamps are host wall-clock (``time.time()`` via the fs facade's
``clock`` when available).  Obs events never feed fingerprints, so
this does not violate the determinism contract.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "EventLog",
    "new_cid",
    "read_events",
    "events_for_cid",
    "list_cids",
]

_CID_BYTES = 6


def new_cid() -> str:
    """Mint a correlation ID: 12 hex chars, unique across the fleet.

    Randomness comes from ``os.urandom`` — cids label host-side
    observability records only and never enter cell digests or
    fingerprints, so this does not perturb determinism.
    """
    return os.urandom(_CID_BYTES).hex()


def _resolve_fs(fs: Optional[object]) -> object:
    from repro.store import io as store_io

    return store_io.resolve_fs(fs)


class EventLog:
    """Append-only JSONL event sink shared by every fleet process.

    Thread-safe: a lock serializes the encode+write so one event is
    always one contiguous ``write``.  Cross-process safety comes from
    ``O_APPEND`` semantics, exactly like the campaign ledger.
    """

    def __init__(self, path: str, fs: Optional[object] = None, sync: bool = False):
        self.path = os.fspath(path)
        self.fs = _resolve_fs(fs)
        self.sync = bool(sync)
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        self._seq = 0
        self._pid = os.getpid()

    def _ensure_fd(self) -> int:
        if self._fd is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            if parent and not os.path.isdir(parent):
                self.fs.makedirs(parent, exist_ok=True)
            self._fd = self.fs.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def emit(self, event: str, cid: Optional[str] = None, **fields: object) -> Dict[str, object]:
        """Append one event; returns the record that was written.

        Failures are swallowed (the event is dropped): observability
        must never take down the serving path it observes.
        """
        with self._lock:
            pid = os.getpid()
            if pid != self._pid:
                # A forked worker inherited this log: take a fresh identity
                # (pid + seq restart) and descriptor so its records stay
                # correctly attributed and totally ordered.
                self._close_locked()
                self._pid = pid
                self._seq = 0
            record: Dict[str, object] = {
                "t": self._now(),
                "event": event,
                "pid": self._pid,
                "seq": self._next_seq(),
            }
            if cid is not None:
                record["cid"] = cid
            for key, value in fields.items():
                if value is not None:
                    record[key] = value
            line = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ).encode("utf-8") + b"\n"
            try:
                fd = self._ensure_fd()
                self.fs.write(fd, line)
                if self.sync:
                    self.fs.fsync(fd)
            except OSError:
                # Drop the event; reset the fd so a transient error
                # (e.g. ENOSPC burst under chaos) can heal on reopen.
                self._close_locked()
        return record

    def _now(self) -> float:
        clock = getattr(self.fs, "clock", None)
        if clock is not None:
            try:
                return float(clock())
            except Exception:
                pass
        return time.time()

    def _next_seq(self) -> int:
        # Monotonic per (pid, EventLog); with the pid it gives a total
        # order tiebreaker for events sharing a wall-clock timestamp.
        self._seq += 1
        return self._seq

    def _close_locked(self) -> None:
        if self._fd is not None:
            try:
                self.fs.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_events(path: str, fs: Optional[object] = None) -> List[Dict[str, object]]:
    """Read every well-formed event from a JSONL obs log.

    Torn tails and garbage lines are skipped (same tolerance as the
    campaign ledger): a crash mid-append must not make the log
    unreadable.  Events are returned in ``(t, pid, seq)`` order so
    interleaved multi-process appends come back as one timeline.
    """
    resolved = _resolve_fs(fs)
    try:
        raw = resolved.read_bytes(os.fspath(path))
    except (FileNotFoundError, OSError):
        return []
    events: List[Dict[str, object]] = []
    for line in raw.split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict) and "event" in record:
            events.append(record)
    events.sort(key=lambda r: (r.get("t", 0.0), r.get("pid", 0), r.get("seq", 0)))
    return events


def events_for_cid(events: Iterable[Dict[str, object]], cid: str) -> List[Dict[str, object]]:
    """Filter one correlation chain out of a mixed event stream."""
    return [record for record in events if record.get("cid") == cid]


def list_cids(events: Iterable[Dict[str, object]]) -> List[str]:
    """Distinct cids in first-seen order (for ``repro obs tail`` with no --cid)."""
    seen: Dict[str, None] = {}
    for record in events:
        cid = record.get("cid")
        if isinstance(cid, str) and cid not in seen:
            seen[cid] = None
    return list(seen)
