"""Cross-layer spans: begin/end events, latency rollups, Perfetto export.

A span is a named wall-clock interval tagged with a correlation ID —
``serve.query`` → ``store.lookup`` → ``dispatch.wait`` → ``sim.run`` →
``store.publish`` is the canonical chain for a served store miss.  Spans
are recorded as paired events in the shared obs log:

* ``span.begin``: ``{name, cid, span, t}``
* ``span.end``:   ``{name, cid, span, t, dur_s, ...fields}``

matched by the ``span`` id (unique per begin).  Because begin and end
are separate appends, a crash mid-span leaves an unmatched ``begin`` —
visible in ``repro obs tail`` as exactly what it is: a span that never
finished.

On ``end`` the duration also feeds the process registry histogram
``repro_span_seconds{span=<name>}``, so ``/metrics`` carries the
latency distribution of every layer without reading the log.

The offline side reconstructs spans from the log: :func:`rollup`
computes per-name count/total/self-time (self = duration minus child
spans nested inside it on the same cid), :func:`render_report` prints
the ``repro obs report`` breakdown table, and :func:`to_chrome_trace`
exports one Perfetto row per correlation ID (pid 2, next to the
cycle-domain rows of :mod:`repro.trace.export`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs import runtime
from repro.obs.registry import LATENCY_BUCKETS_S

__all__ = [
    "span",
    "Span",
    "spans_from_events",
    "rollup",
    "render_report",
    "to_chrome_trace",
    "OBS_PID",
    "SPAN_HISTOGRAM",
]

#: Chrome-trace pid for obs span rows (cycle-domain rows use 0 and 1).
OBS_PID = 2

#: Registry histogram fed by every completed span.
SPAN_HISTOGRAM = "repro_span_seconds"


class _NullSpan:
    """The disabled-path span: a shared, do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def note(self, **fields: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An active span: emits begin now, end (+histogram) on exit."""

    __slots__ = ("state", "name", "cid", "span_id", "fields", "_t0", "_wall0")

    def __init__(self, state, name: str, cid: Optional[str], fields: Dict[str, object]):
        self.state = state
        self.name = name
        self.cid = cid
        self.span_id = os.urandom(4).hex()
        self.fields = fields

    def __enter__(self) -> "_LiveSpan":
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        self.state.emit(
            "span.begin", cid=self.cid, name=self.name, span=self.span_id, **self.fields
        )
        return self

    def note(self, **fields: object) -> None:
        """Attach extra fields to the eventual ``span.end`` record."""
        self.fields.update(fields)

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = time.perf_counter() - self._t0
        end_fields = dict(self.fields)
        if exc_type is not None:
            end_fields.setdefault("error", exc_type.__name__)
        self.state.emit(
            "span.end",
            cid=self.cid,
            name=self.name,
            span=self.span_id,
            dur_s=dur,
            **end_fields,
        )
        self.state.registry.histogram(
            SPAN_HISTOGRAM,
            "Wall-clock duration of cross-layer spans",
            buckets=LATENCY_BUCKETS_S,
            span=self.name,
        ).observe(dur)
        return False


def span(name: str, cid: Optional[str] = None, **fields: object):
    """Context manager timing one layer of a request.

    When obs is disabled this returns a shared null object — the only
    cost at a disabled site is this call and the ``is None`` check.
    """
    state = runtime.get_state()
    if state is None:
        return _NULL_SPAN
    return _LiveSpan(state, name, cid, dict(fields))


# ----------------------------------------------------------------------
# Offline reconstruction (repro obs report / export)
# ----------------------------------------------------------------------


@dataclass
class Span:
    """A completed (or torn) span reconstructed from the event log."""

    name: str
    cid: Optional[str]
    span_id: str
    pid: int
    start: float
    dur_s: Optional[float]  # None: begin without end (crash or in-flight)
    fields: Dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> Optional[float]:
        return None if self.dur_s is None else self.start + self.dur_s


_SPAN_META_KEYS = {"t", "event", "pid", "seq", "cid", "name", "span", "dur_s"}


def spans_from_events(events: Iterable[Dict[str, object]]) -> List[Span]:
    """Pair ``span.begin``/``span.end`` records into :class:`Span` objects.

    Unmatched begins become spans with ``dur_s=None``; unmatched ends
    (their begin fell in a torn tail) are synthesized from the end
    record alone.  Output is sorted by start time.
    """
    begins: Dict[str, Dict[str, object]] = {}
    spans: List[Span] = []
    for record in events:
        kind = record.get("event")
        span_id = record.get("span")
        if not isinstance(span_id, str):
            continue
        if kind == "span.begin":
            begins[span_id] = record
        elif kind == "span.end":
            begin = begins.pop(span_id, None)
            start = (
                float(begin["t"])
                if begin is not None
                else float(record.get("t", 0.0)) - float(record.get("dur_s", 0.0) or 0.0)
            )
            fields = {
                k: v for k, v in record.items() if k not in _SPAN_META_KEYS
            }
            spans.append(
                Span(
                    name=str(record.get("name", "?")),
                    cid=record.get("cid"),  # type: ignore[arg-type]
                    span_id=span_id,
                    pid=int(record.get("pid", 0)),
                    start=start,
                    dur_s=float(record.get("dur_s", 0.0) or 0.0),
                    fields=fields,
                )
            )
    for span_id, begin in begins.items():
        spans.append(
            Span(
                name=str(begin.get("name", "?")),
                cid=begin.get("cid"),  # type: ignore[arg-type]
                span_id=span_id,
                pid=int(begin.get("pid", 0)),
                start=float(begin.get("t", 0.0)),
                dur_s=None,
                fields={k: v for k, v in begin.items() if k not in _SPAN_META_KEYS},
            )
        )
    spans.sort(key=lambda s: (s.start, s.span_id))
    return spans


def _assign_self_time(spans: List[Span]) -> Dict[str, float]:
    """Per-span-id self time: duration minus directly-nested children.

    Nesting is by wall-clock interval containment within one cid — the
    standard trace-viewer interpretation.  Spans from different
    processes share the chain through the cid, so a worker's ``sim.run``
    correctly eats into the serve process's ``dispatch.wait`` self time.
    """
    self_time: Dict[str, float] = {}
    by_cid: Dict[Optional[str], List[Span]] = {}
    for s in spans:
        if s.dur_s is None:
            continue
        by_cid.setdefault(s.cid, []).append(s)
    for group in by_cid.values():
        group.sort(key=lambda s: (s.start, -(s.dur_s or 0.0)))
        stack: List[Span] = []
        child_time: Dict[str, float] = {}
        for s in group:
            while stack and (stack[-1].end or 0.0) <= s.start + 1e-12:
                stack.pop()
            if stack:
                parent = stack[-1]
                if (s.end or 0.0) <= (parent.end or 0.0) + 1e-9:
                    child_time[parent.span_id] = (
                        child_time.get(parent.span_id, 0.0) + (s.dur_s or 0.0)
                    )
                    stack.append(s)
                else:
                    stack = [s]
            else:
                stack = [s]
        for s in group:
            own = (s.dur_s or 0.0) - child_time.get(s.span_id, 0.0)
            self_time[s.span_id] = max(0.0, own)
    return self_time


def rollup(events: Iterable[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: count, total/self/max seconds, torn count."""
    spans = spans_from_events(events)
    self_time = _assign_self_time(spans)
    out: Dict[str, Dict[str, float]] = {}
    for s in spans:
        row = out.setdefault(
            s.name,
            {"count": 0, "torn": 0, "total_s": 0.0, "self_s": 0.0, "max_s": 0.0},
        )
        if s.dur_s is None:
            row["torn"] += 1
            continue
        row["count"] += 1
        row["total_s"] += s.dur_s
        row["self_s"] += self_time.get(s.span_id, s.dur_s)
        row["max_s"] = max(row["max_s"], s.dur_s)
    return out


def render_report(summary: Dict[str, Dict[str, float]]) -> str:
    """The ``repro obs report`` latency-breakdown table."""
    if not summary:
        return "no spans recorded"
    header = f"{'span':<20} {'count':>6} {'total':>10} {'self':>10} {'mean':>10} {'max':>10} {'torn':>5}"
    lines = [header, "-" * len(header)]
    grand_self = sum(row["self_s"] for row in summary.values())
    for name in sorted(summary, key=lambda n: -summary[n]["self_s"]):
        row = summary[name]
        count = int(row["count"])
        mean = row["total_s"] / count if count else 0.0
        lines.append(
            f"{name:<20} {count:>6d} {row['total_s']:>9.3f}s {row['self_s']:>9.3f}s "
            f"{mean:>9.4f}s {row['max_s']:>9.4f}s {int(row['torn']):>5d}"
        )
    lines.append("-" * len(header))
    lines.append(f"{'(self-time sum)':<20} {'':>6} {'':>10} {grand_self:>9.3f}s")
    return "\n".join(lines)


def to_chrome_trace(
    events: Iterable[Dict[str, object]], cid: Optional[str] = None
) -> Dict[str, object]:
    """Export spans as a Perfetto-loadable Chrome-trace document.

    Wall-clock seconds map to trace microseconds relative to the first
    span's start.  Rows: pid ``OBS_PID`` ("obs"), one tid per cid so
    each request reads as its own thread lane; instant (non-span)
    events with a cid show as instants on the same lane.
    """
    from repro.trace.export import chrome_trace_doc

    event_list = [dict(r) for r in events]
    if cid is not None:
        event_list = [r for r in event_list if r.get("cid") == cid]
    spans = spans_from_events(event_list)
    done = [s for s in spans if s.dur_s is not None]
    t0 = min(
        [s.start for s in done]
        + [float(r.get("t", 0.0)) for r in event_list if "t" in r],
        default=0.0,
    )

    cids: List[str] = []
    for s in spans:
        key = s.cid or "(none)"
        if key not in cids:
            cids.append(key)
    tid_of = {key: i for i, key in enumerate(cids)}

    records: List[Dict[str, object]] = [
        {"ph": "M", "name": "process_name", "pid": OBS_PID, "args": {"name": "obs"}}
    ]
    for key, tid in tid_of.items():
        records.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": OBS_PID,
                "tid": tid,
                "args": {"name": f"cid {key}"},
            }
        )
    for s in done:
        args: Dict[str, object] = {"cid": s.cid, "pid": s.pid, **s.fields}
        records.append(
            {
                "name": s.name,
                "cat": "obs",
                "ph": "X",
                "ts": (s.start - t0) * 1e6,
                "dur": (s.dur_s or 0.0) * 1e6,
                "pid": OBS_PID,
                "tid": tid_of.get(s.cid or "(none)", 0),
                "args": args,
            }
        )
    for r in event_list:
        if r.get("event") in ("span.begin", "span.end"):
            continue
        key = r.get("cid") or "(none)"
        if key not in tid_of:
            tid_of[key] = len(tid_of)
            records.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": OBS_PID,
                    "tid": tid_of[key],
                    "args": {"name": f"cid {key}"},
                }
            )
        records.append(
            {
                "name": str(r.get("event")),
                "cat": "obs",
                "ph": "i",
                "s": "t",
                "ts": (float(r.get("t", t0)) - t0) * 1e6,
                "pid": OBS_PID,
                "tid": tid_of[key],
                "args": {k: v for k, v in r.items() if k not in ("t", "event", "seq")},
            }
        )
    return chrome_trace_doc(
        records, source="repro.obs", unit="1us == 1e-6 s wall clock"
    )
