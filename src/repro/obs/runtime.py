"""Process-wide obs state and the zero-overhead-when-disabled gate.

Observability follows the ``trace=`` contract (DESIGN.md §7): when no
one called :func:`configure`, every instrumentation site in the hot
path costs exactly one ``is None`` check — no dict building, no string
formatting, no I/O.  Call sites are written as::

    from repro import obs
    ...
    if obs.active():
        obs.emit("store.lookup", cid=cid, digest=digest, result="hit")

``configure()`` wires up a shared :class:`~repro.obs.events.EventLog`
and a :class:`~repro.obs.registry.MetricsRegistry` (the process-wide
default unless overridden); ``shutdown()`` returns the process to the
disabled state and closes the log.

Child processes (the serve executor pool, ``repro store worker``) do
not inherit this state automatically — the parent passes the log path
through explicit arguments (or the ``--obs-log`` flag) and the child
calls :func:`configure` itself, so every process appends to the same
shared-FS log with its own pid.
"""

from __future__ import annotations

import contextvars
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "ObsState",
    "configure",
    "shutdown",
    "active",
    "get_state",
    "emit",
    "current_cid",
    "set_cid",
    "reset_cid",
]


@dataclass
class ObsState:
    """Everything an instrumentation site needs, behind one reference."""

    log: Optional[EventLog]
    registry: MetricsRegistry

    def emit(self, event: str, cid: Optional[str] = None, **fields: object) -> None:
        if self.log is not None:
            self.log.emit(event, cid=cid, **fields)


_STATE: Optional[ObsState] = None
_LOCK = threading.Lock()


def configure(
    log_path: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    fs: Optional[object] = None,
    sync: bool = False,
) -> ObsState:
    """Enable observability for this process.

    ``log_path`` is the shared JSONL event log (``None`` enables
    metrics-only mode: the registry fills but no events are written).
    Reconfiguring with the same path reuses the open log; a different
    path closes the old one first.
    """
    global _STATE
    with _LOCK:
        reg = registry if registry is not None else get_registry()
        if (
            _STATE is not None
            and _STATE.log is not None
            and log_path is not None
            and _STATE.log.path == log_path
            and _STATE.log.sync == bool(sync)
        ):
            log = _STATE.log
        else:
            if _STATE is not None and _STATE.log is not None:
                _STATE.log.close()
            log = EventLog(log_path, fs=fs, sync=sync) if log_path else None
        _STATE = ObsState(log=log, registry=reg)
        return _STATE


def shutdown() -> None:
    """Disable observability and close the event log."""
    global _STATE
    with _LOCK:
        if _STATE is not None and _STATE.log is not None:
            _STATE.log.close()
        _STATE = None


def active() -> bool:
    """True when this process has observability configured.

    This is the gate hot paths check before building any event — when
    it returns ``False`` the site's entire cost was this call.
    """
    return _STATE is not None


def get_state() -> Optional[ObsState]:
    return _STATE


def emit(event: str, cid: Optional[str] = None, **fields: object) -> None:
    """Append one event if obs is active; no-op (and no garbage) otherwise."""
    state = _STATE
    if state is not None:
        state.emit(event, cid=cid, **fields)


# ----------------------------------------------------------------------
# Correlation-ID propagation
# ----------------------------------------------------------------------
#
# The serve path hands the cid to its executor through a ContextVar
# rather than a parameter, so third-party executors (and the test
# doubles) keep the plain ``resolve(cell, digest)`` signature.  asyncio
# tasks copy the ambient context at creation, which is exactly the
# coalescing semantics we want: the task minted for the *first* miss
# carries that query's cid; later coalesced queries only observe it.

_CURRENT_CID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_obs_cid", default=None
)


def current_cid() -> Optional[str]:
    """The correlation ID attached to the current (task) context."""
    return _CURRENT_CID.get()


def set_cid(cid: Optional[str]) -> "contextvars.Token":
    return _CURRENT_CID.set(cid)


def reset_cid(token: "contextvars.Token") -> None:
    _CURRENT_CID.reset(token)


def counters_snapshot() -> Dict[str, object]:
    """Registry snapshot if active, else an empty one (CLI convenience)."""
    state = _STATE
    registry = state.registry if state is not None else get_registry()
    return registry.snapshot()
