"""repro.obs — fleet-wide telemetry (DESIGN.md §14).

Three pillars, one package:

* :mod:`repro.obs.registry` — the process-wide metrics registry
  (counters, gauges, fixed-bucket histograms; Prometheus text + JSON).
* :mod:`repro.obs.events` — the shared-FS JSONL event log with
  correlation IDs minted per serve query / campaign cell.
* :mod:`repro.obs.spans` — cross-layer wall-clock spans (query →
  store lookup → dispatch wait → simulation → publish) with Perfetto
  export and the ``repro obs report`` rollup.

The gate lives in :mod:`repro.obs.runtime`: nothing is recorded until
:func:`configure` runs, and a disabled instrumentation site costs one
``active()`` check — the same zero-overhead contract as ``trace=`` and
``checkpoint=``.
"""

from repro.obs.events import (
    EventLog,
    events_for_cid,
    list_cids,
    new_cid,
    read_events,
)
from repro.obs.registry import (
    CYCLES_PER_SEC_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.runtime import (
    ObsState,
    active,
    configure,
    current_cid,
    emit,
    get_state,
    reset_cid,
    set_cid,
    shutdown,
)
from repro.obs.spans import (
    Span,
    render_report,
    rollup,
    span,
    spans_from_events,
    to_chrome_trace,
)

__all__ = [
    "EventLog",
    "events_for_cid",
    "list_cids",
    "new_cid",
    "read_events",
    "CYCLES_PER_SEC_BUCKETS",
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "reset_registry",
    "ObsState",
    "active",
    "configure",
    "current_cid",
    "emit",
    "get_state",
    "reset_cid",
    "set_cid",
    "shutdown",
    "Span",
    "render_report",
    "rollup",
    "span",
    "spans_from_events",
    "to_chrome_trace",
]
