"""Process-wide metrics registry: counters, gauges, histograms.

The registry is the single metrics surface for the fleet (DESIGN.md
§14).  Every layer — ``repro serve``'s :class:`ServeMetrics`, the
dispatch worker loop, campaign retry accounting, kernel throughput —
registers plain named metrics here, and two render paths read them
back out:

* :meth:`MetricsRegistry.render_prometheus` — Prometheus text
  exposition format, served on ``GET /metrics``;
* :meth:`MetricsRegistry.snapshot` — a JSON-friendly dict, served on
  ``GET /metrics.json`` and embedded in smoke-test artifacts.

Design rules:

* **Fixed histogram buckets.**  Bucket boundaries are chosen at
  construction and never change, so concurrent scrapes always see a
  coherent cumulative distribution and cross-host aggregation is
  well-defined.
* **Snapshot stability.**  Each histogram guards its counts with a
  lock; a snapshot taken concurrently with ``observe()`` calls always
  satisfies ``sum(bucket_counts) == count`` and ``count`` matches the
  number of observations folded into ``sum``.
* **Int-compatible counters.**  :class:`Counter` and :class:`Gauge`
  support ``+=``, ``==`` and ``int()`` so existing call sites (and
  tests) that treated ``ServeMetrics`` fields as plain ints keep
  working unchanged after the absorption into the registry.

Nothing here touches simulated state: metrics are host-side
observability and are never folded into fingerprints.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "CYCLES_PER_SEC_BUCKETS",
    "get_registry",
    "reset_registry",
]

#: Default latency buckets (seconds).  Chosen to straddle the serve
#: path's realistic range: sub-millisecond store hits up to multi-second
#: cold simulations.  Fixed forever — see module docstring.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Buckets for kernel throughput (simulated cycles per host second).
CYCLES_PER_SEC_BUCKETS: Tuple[float, ...] = (
    1e3,
    3e3,
    1e4,
    3e4,
    1e5,
    3e5,
    1e6,
    3e6,
    1e7,
)


def _format_value(value: float) -> str:
    """Render a sample value in Prometheus text format."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - defensive
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in sorted(merged.items())
    )
    return "{" + inner + "}"


class _Metric:
    """Shared identity for registry metrics."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labels: Dict[str, str]):
        self.name = name
        self.help = help_text
        self.labels = dict(labels)
        self._lock = threading.Lock()

    def label_suffix(self) -> str:
        return _render_labels(self.labels)


class Counter(_Metric):
    """Monotonically increasing counter.

    Behaves like an int for ``+=`` / ``==`` / ``int()`` so legacy
    struct-style counters (``metrics.hits += 1``) can be swapped for
    registry counters without touching every call site.
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help_text, labels or {})
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    def set_total(self, value: int) -> None:
        """Absorb an externally-tracked monotonic total (scrape-time sync)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> int:
        return self._value

    def __iadd__(self, amount: int) -> "Counter":
        self.inc(amount)
        return self

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counter):
            return other is self
        if isinstance(other, (int, float)):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __lt__(self, other: float) -> bool:
        return self._value < other

    def __le__(self, other: float) -> bool:
        return self._value <= other

    def __gt__(self, other: float) -> bool:
        return self._value > other

    def __ge__(self, other: float) -> bool:
        return self._value >= other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{self.label_suffix()}={self._value})"


class Gauge(_Metric):
    """A value that can go up and down (pool depth, in-flight count)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "", labels: Optional[Dict[str, str]] = None):
        super().__init__(name, help_text, labels or {})
        self._value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{self.label_suffix()}={self._value})"


class Histogram(_Metric):
    """Cumulative histogram with fixed bucket boundaries.

    ``observe(v)`` folds ``v`` into the first bucket whose upper bound
    is ``>= v`` (Prometheus ``le`` semantics); values above the largest
    boundary land only in the implicit ``+Inf`` bucket.  Zero and
    negative durations fold into the smallest bucket — a zero-duration
    observation is still one observation.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        labels: Optional[Dict[str, str]] = None,
    ):
        super().__init__(name, help_text, labels or {})
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket boundaries must be distinct")
        self.bounds: Tuple[float, ...] = bounds
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts: List[int] = [0] * (len(bounds) + 1)
        self._sum: float = 0.0
        self._count: int = 0
        self._max: float = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> Dict[str, object]:
        """A coherent view: bucket counts, sum and count move together."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
            peak = self._max
        cumulative: List[int] = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cumulative[i]}
                for i, bound in enumerate(self.bounds)
            ]
            + [{"le": "+Inf", "count": cumulative[-1]}],
            "count": total,
            "sum": acc,
            "max": peak,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}{self.label_suffix()} n={self._count})"


class MetricsRegistry:
    """Thread-safe get-or-create home for every metric in a process.

    Metrics are keyed by ``(name, sorted labels)``; asking twice for the
    same key returns the same object, asking for an existing name with a
    different metric kind raises.  Rendering walks a stable sorted
    order so scrapes diff cleanly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Metric] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, str]) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))

    def _get_or_create(self, cls, name: str, help_text: str, labels: Dict[str, str], **kwargs):
        key = self._key(name, labels)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help_text, labels=dict(labels), **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labels, buckets=buckets
        )

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    # ------------------------------------------------------------------
    # Render paths
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly snapshot of every metric."""
        out: List[Dict[str, object]] = []
        for metric in self.metrics():
            entry: Dict[str, object] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry.update(metric.snapshot())
            else:
                entry["value"] = metric.value  # type: ignore[attr-defined]
            out.append(entry)
        return {"metrics": out}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        seen_headers: set = set()
        for metric in self.metrics():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                for bucket in snap["buckets"]:  # type: ignore[index]
                    le = bucket["le"]
                    le_text = "+Inf" if le == "+Inf" else _format_value(float(le))
                    labels = _render_labels(metric.labels, {"le": le_text})
                    lines.append(
                        f"{metric.name}_bucket{labels} {bucket['count']}"
                    )
                suffix = metric.label_suffix()
                lines.append(
                    f"{metric.name}_sum{suffix} {_format_value(snap['sum'])}"
                )
                lines.append(f"{metric.name}_count{suffix} {snap['count']}")
            else:
                lines.append(
                    f"{metric.name}{metric.label_suffix()} "
                    f"{_format_value(metric.value)}"  # type: ignore[attr-defined]
                )
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------

_DEFAULT = MetricsRegistry()
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (what ``repro serve`` scrapes)."""
    return _DEFAULT


def reset_registry() -> MetricsRegistry:
    """Replace the process-wide registry (tests only)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = MetricsRegistry()
        return _DEFAULT
