"""Benchmark loop kernels (Table 1 + the two StreamIt benchmarks).

The paper's workloads are the hottest loops of seven applications, DSWP-
parallelized by a modified OpenIMPACT, plus two hand-parallelized StreamIt
kernels.  We cannot ship SPEC/Mediabench binaries, so each loop is rebuilt
as an IR kernel calibrated to the published characteristics that the
evaluation actually depends on:

* loop body size and functional-unit mix (tight integer loops for wc /
  adpcmdec / epicdec; FP for equake / art / fir / fft2),
* communication frequency — crossing values chosen so the Figure 8
  comm-to-app instruction ratios land in the paper's 1-per-5-to-20 band,
  with wc the extreme (three consumes per iteration, Section 4.4),
* memory behaviour — footprints larger than L2/L3 and pointer-chasing for
  the memory-intensive 181.mcf and 183.equake (their BUS/MEM sensitivity in
  Figure 10), byte-streams with high spatial locality for wc/adpcmdec,
* 256.bzip2's two-deep loop nest whose outer-loop values cannot be
  pipelined (its Figure 6 transit-delay anomaly).

Address-space bases keep every kernel's data disjoint from the queue
backing region (0x8000_0000+).
"""

from __future__ import annotations

from typing import Dict

from repro.dswp.ir import Loop, Op, OpKind, PointerChase, Sequential, Strided

KB = 1024
MB = 1024 * KB

# Per-benchmark private address regions (64 MB apart).
_BASE = {
    "wc": 0x0100_0000,
    "adpcmdec": 0x0500_0000,
    "equake": 0x0900_0000,
    "mcf": 0x0D00_0000,
    "epicdec": 0x1100_0000,
    "art": 0x1500_0000,
    "bzip2": 0x1900_0000,
    "fir": 0x1D00_0000,
    "fft2": 0x2100_0000,
}


def wc_loop(trip_count: int) -> Loop:
    """``wc`` cnt loop: byte stream in, three counters out.

    The tightest loop in the suite: the producer reads one character and
    classifies it; the consumer updates the word/line/char counters (all
    loop-carried recurrences).  Three values cross the cut — the paper notes
    wc executes three consume operations per iteration.
    """
    base = _BASE["wc"]
    return Loop(
        name="wc",
        trip_count=trip_count,
        body=[
            Op("load_char", OpKind.LOAD, addr=Sequential(base, stride=1, footprint=1 * MB)),
            # isspace()/isalpha() classification via the ctype table (the
            # real cnt loop indexes __ctype_b): a dependent, L1-resident load.
            Op(
                "ctype",
                OpKind.LOAD,
                deps=("load_char",),
                addr=Strided(base + 2 * MB, stride=2, n_elements=128, seed=5),
            ),
            Op("is_space", OpKind.IALU, deps=("ctype",)),
            Op("is_nl", OpKind.IALU, deps=("ctype",)),
            Op("char_cnt", OpKind.IALU, deps=("load_char",), carried_deps=("char_cnt",), repeat=2),
            Op("not_space", OpKind.IALU, deps=("is_space",)),
            Op("word_inc", OpKind.IALU, deps=("not_space",), carried_deps=("in_word",)),
            Op("in_word", OpKind.IALU, deps=("is_space",), carried_deps=("in_word",)),
            Op("word_state", OpKind.IALU, deps=("word_inc", "in_word")),
            Op("word_cnt", OpKind.IALU, deps=("word_state",), carried_deps=("word_cnt",)),
            Op("line_cnt", OpKind.IALU, deps=("is_nl",), carried_deps=("line_cnt",), repeat=2),
        ],
    )


def adpcmdec_loop(trip_count: int) -> Loop:
    """``adpcm_decoder``: nibble stream in, PCM samples out (98% exec time).

    Integer DSP loop with a long recurrence (predictor value + step index)
    that anchors the consumer stage; only the extracted delta crosses.
    """
    base = _BASE["adpcmdec"]
    return Loop(
        name="adpcmdec",
        trip_count=trip_count,
        body=[
            Op("load_delta", OpKind.LOAD, addr=Sequential(base, stride=1, footprint=256 * KB)),
            Op("extract_lo", OpKind.IALU, deps=("load_delta",)),
            Op("delta", OpKind.IALU, deps=("extract_lo",)),
            Op("index", OpKind.IALU, deps=("delta",), carried_deps=("index",)),
            Op(
                "step_load",
                OpKind.LOAD,
                deps=("index",),
                addr=Strided(base + 4 * MB, stride=4, n_elements=89, seed=3),
            ),
            Op("vpdiff", OpKind.IALU, deps=("delta", "step_load")),
            Op("valpred", OpKind.IALU, deps=("vpdiff",), carried_deps=("valpred",)),
            Op("clamp_lo", OpKind.IALU, deps=("valpred",)),
            Op("clamp_hi", OpKind.IALU, deps=("clamp_lo",)),
            Op(
                "store_sample",
                OpKind.STORE,
                deps=("clamp_hi",),
                addr=Sequential(base + 8 * MB, stride=2, footprint=512 * KB),
            ),
        ],
    )


def equake_loop(trip_count: int) -> Loop:
    """183.equake ``smvp``: sparse matrix-vector product (68% exec time).

    Memory-intensive: the column-index, matrix-value and vector arrays
    overflow the L3, and the gather is data-dependent.  The FP reduction is
    loop-carried, pinning it to the consumer stage.
    """
    base = _BASE["equake"]
    return Loop(
        name="equake",
        trip_count=trip_count,
        body=[
            Op("load_col", OpKind.LOAD, addr=Sequential(base, stride=4, footprint=8 * MB)),
            Op("col_addr", OpKind.IALU, deps=("load_col",)),
            Op(
                "load_aval",
                OpKind.LOAD,
                addr=Sequential(base + 16 * MB, stride=8, footprint=16 * MB),
            ),
            Op(
                "load_vec",
                OpKind.LOAD,
                deps=("col_addr",),
                addr=Strided(base + 40 * MB, stride=8, n_elements=256 * KB, seed=13),
            ),
            Op("mult", OpKind.FALU, deps=("load_aval", "load_vec")),
            Op("sum", OpKind.FALU, deps=("mult",), carried_deps=("sum",)),
            Op("row_fix", OpKind.IALU, deps=("mult",)),
            Op(
                "store_w",
                OpKind.STORE,
                deps=("sum",),
                addr=Sequential(base + 48 * MB, stride=8, footprint=8 * MB),
            ),
        ],
    )


def mcf_loop(trip_count: int) -> Loop:
    """181.mcf ``refresh_potential``: tree walk over cold nodes (30%).

    The producer's pointer chase is a dependent-load recurrence over a 2 MB
    node pool — the memory-bound behaviour that makes mcf bus-sensitive.
    """
    base = _BASE["mcf"]
    return Loop(
        name="mcf",
        trip_count=trip_count,
        body=[
            Op(
                "node_ptr",
                OpKind.LOAD,
                carried_deps=("node_ptr",),
                addr=PointerChase(base, node_bytes=64, n_nodes=6 * 1024, seed=17),
            ),
            Op(
                "load_pot",
                OpKind.LOAD,
                deps=("node_ptr",),
                addr=PointerChase(base + 4 * MB, node_bytes=64, n_nodes=6 * 1024, seed=19),
            ),
            Op(
                "load_cost",
                OpKind.LOAD,
                deps=("node_ptr",),
                addr=PointerChase(base + 8 * MB, node_bytes=64, n_nodes=6 * 1024, seed=23),
            ),
            Op("orient", OpKind.IALU, deps=("node_ptr",)),
            Op("new_pot", OpKind.IALU, deps=("load_pot", "load_cost")),
            Op("check", OpKind.IALU, deps=("new_pot", "orient")),
            Op(
                "store_pot",
                OpKind.STORE,
                deps=("check",),
                addr=PointerChase(base + 12 * MB, node_bytes=64, n_nodes=6 * 1024, seed=29),
            ),
        ],
    )


def epicdec_loop(trip_count: int) -> Loop:
    """epicdec ``read_and_huffman_decode`` (21%): bit stream + table lookup."""
    base = _BASE["epicdec"]
    return Loop(
        name="epicdec",
        trip_count=trip_count,
        body=[
            Op("load_bits", OpKind.LOAD, addr=Sequential(base, stride=2, footprint=1 * MB)),
            Op("shift", OpKind.IALU, deps=("load_bits",)),
            Op(
                "huff_load",
                OpKind.LOAD,
                deps=("shift",),
                addr=Strided(base + 4 * MB, stride=8, n_elements=8 * 1024, seed=31),
            ),
            Op("symbol", OpKind.IALU, deps=("huff_load",)),
            Op("runlen", OpKind.IALU, deps=("huff_load",)),
            Op("expand", OpKind.IALU, deps=("symbol",), carried_deps=("expand",)),
            Op("coef", OpKind.IALU, deps=("expand", "runlen")),
            Op(
                "store_coef",
                OpKind.STORE,
                deps=("coef",),
                addr=Sequential(base + 8 * MB, stride=4, footprint=2 * MB),
            ),
        ],
    )


def art_loop(trip_count: int) -> Loop:
    """179.art ``match`` (20%): FP weight scan with a running winner."""
    base = _BASE["art"]
    return Loop(
        name="art",
        trip_count=trip_count,
        body=[
            Op("load_w", OpKind.LOAD, addr=Sequential(base, stride=8, footprint=4 * MB)),
            Op("load_x", OpKind.LOAD, addr=Sequential(base + 8 * MB, stride=8, footprint=64 * KB)),
            Op("mult", OpKind.FALU, deps=("load_w", "load_x")),
            Op("acc", OpKind.FALU, deps=("mult",), carried_deps=("acc",)),
            Op("winner", OpKind.IALU, deps=("acc",), carried_deps=("winner",)),
            Op("bias", OpKind.FALU, deps=("acc",)),
            Op(
                "store_y",
                OpKind.STORE,
                deps=("bias",),
                addr=Sequential(base + 12 * MB, stride=8, footprint=64 * KB),
            ),
        ],
    )


def fir_loop(trip_count: int) -> Loop:
    """StreamIt ``fir``: sample stream through a 4-tap MAC chain."""
    base = _BASE["fir"]
    return Loop(
        name="fir",
        trip_count=trip_count,
        body=[
            Op("load_sample", OpKind.LOAD, addr=Sequential(base, stride=8, footprint=1 * MB)),
            Op("scale", OpKind.FALU, deps=("load_sample",)),
            Op("tap1", OpKind.FALU, deps=("scale",), carried_deps=("tap1",)),
            Op("tap2", OpKind.FALU, deps=("tap1",), carried_deps=("tap2",)),
            Op(
                "store_out",
                OpKind.STORE,
                deps=("tap2",),
                addr=Sequential(base + 4 * MB, stride=8, footprint=1 * MB),
            ),
        ],
    )


def fft2_loop(trip_count: int) -> Loop:
    """StreamIt ``fft2``: radix-2 butterflies over large complex arrays."""
    base = _BASE["fft2"]
    return Loop(
        name="fft2",
        trip_count=trip_count,
        body=[
            Op("load_re", OpKind.LOAD, addr=Sequential(base, stride=8, footprint=8 * MB)),
            Op("load_im", OpKind.LOAD, addr=Sequential(base + 16 * MB, stride=8, footprint=8 * MB)),
            Op(
                "load_tw",
                OpKind.LOAD,
                addr=Strided(base + 32 * MB, stride=8, n_elements=8 * 1024, seed=37),
            ),
            Op("mul_re", OpKind.FALU, deps=("load_re", "load_tw")),
            Op("mul_im", OpKind.FALU, deps=("load_im", "load_tw")),
            Op("bfly_re", OpKind.FALU, deps=("mul_re", "mul_im"), carried_deps=("bfly_re",)),
            Op("bfly_im", OpKind.FALU, deps=("mul_re", "mul_im"), carried_deps=("bfly_im",)),
            Op(
                "store_re",
                OpKind.STORE,
                deps=("bfly_re",),
                addr=Sequential(base + 40 * MB, stride=8, footprint=8 * MB),
            ),
            Op(
                "store_im",
                OpKind.STORE,
                deps=("bfly_im",),
                addr=Sequential(base + 48 * MB, stride=8, footprint=8 * MB),
            ),
        ],
    )


#: IR loop builders for every non-nested benchmark.
LOOP_BUILDERS = {
    "wc": wc_loop,
    "adpcmdec": adpcmdec_loop,
    "equake": equake_loop,
    "mcf": mcf_loop,
    "epicdec": epicdec_loop,
    "art": art_loop,
    "fir": fir_loop,
    "fft2": fft2_loop,
}

#: Hand partitions for the StreamIt kernels (the paper hand-parallelized
#: these to mirror the StreamIt programs): the sample source is stage 0,
#: the filter/butterfly pipeline is stage 1.
HAND_PARTITIONS: Dict[str, Dict[str, int]] = {
    # wc is pinned to the partition the paper characterizes (Section 4.4):
    # the classifier stage feeds THREE consumes per iteration (character,
    # space flag, newline flag); all counters stay in the consumer stage.
    "wc": {
        "load_char": 0,
        "ctype": 0,
        "is_space": 0,
        "is_nl": 0,
        "char_cnt": 1,
        "not_space": 1,
        "word_inc": 1,
        "in_word": 1,
        "word_state": 1,
        "word_cnt": 1,
        "line_cnt": 1,
    },
    "fir": {
        "load_sample": 0,
        "scale": 0,
        "tap1": 1,
        "tap2": 1,
        "store_out": 1,
    },
    "fft2": {
        "load_re": 0,
        "load_im": 0,
        "load_tw": 0,
        "mul_re": 0,
        "mul_im": 0,
        "bfly_re": 1,
        "bfly_im": 1,
        "store_re": 1,
        "store_im": 1,
    },
}
