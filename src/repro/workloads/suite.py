"""The benchmark suite registry (Table 1 + StreamIt).

Single entry point for building every benchmark's pipelined (two-thread)
and single-threaded programs, with the partitioning mode the paper used for
each: DSWP-compiled for the SPEC/Mediabench/utility loops, hand-partitioned
for the StreamIt kernels and the bzip2 loop nest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dswp.codegen import lower_partition, lower_single_threaded
from repro.dswp.ir import Loop
from repro.dswp.partition import Partition, partition_loop
from repro.sim.program import Program
from repro.workloads import nested
from repro.workloads.kernels import HAND_PARTITIONS, LOOP_BUILDERS


@dataclass(frozen=True)
class BenchmarkInfo:
    """Suite metadata, mirroring Table 1 of the paper."""

    name: str
    function: str
    source: str
    pct_exec_time: str
    partition_mode: str  # "dswp" | "hand" | "nested"
    default_trip: int


#: Table 1 rows plus the two StreamIt benchmarks, in the paper's figure order.
BENCHMARKS: Dict[str, BenchmarkInfo] = {
    info.name: info
    for info in (
        BenchmarkInfo("art", "match", "SPEC CPU2000 (179.art)", "20%", "dswp", 1200),
        BenchmarkInfo("equake", "smvp", "SPEC CPU2000 (183.equake)", "68%", "dswp", 1000),
        BenchmarkInfo(
            "mcf", "refresh_potential", "SPEC CPU2000 (181.mcf)", "30%", "dswp", 800
        ),
        BenchmarkInfo(
            "bzip2",
            "getAndMoveToFrontDecode",
            "SPEC CPU2000 (256.bzip2)",
            "17%",
            "nested",
            1200,
        ),
        BenchmarkInfo(
            "adpcmdec", "adpcm_decoder", "Mediabench", "98%", "dswp", 1500
        ),
        BenchmarkInfo(
            "epicdec", "read_and_huffman_decode", "Mediabench", "21%", "dswp", 1200
        ),
        BenchmarkInfo("wc", "cnt", "Unix utility", "100%", "hand", 2500),
        BenchmarkInfo("fir", "fir", "StreamIt", "-", "hand", 2000),
        BenchmarkInfo("fft2", "fft2", "StreamIt", "-", "hand", 1000),
    )
}

#: The paper's figure x-axis order.
BENCHMARK_ORDER: Tuple[str, ...] = tuple(BENCHMARKS)


def benchmark_info(name: str) -> BenchmarkInfo:
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(BENCHMARKS)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def build_loop(name: str, trip_count: Optional[int] = None) -> Loop:
    """The single-level IR loop of a non-nested benchmark."""
    info = benchmark_info(name)
    if info.partition_mode == "nested":
        raise ValueError(f"{name} is a loop nest; it has no single-level IR loop")
    trips = trip_count if trip_count is not None else info.default_trip
    return LOOP_BUILDERS[name](trips)


def build_partition(name: str, trip_count: Optional[int] = None) -> Partition:
    """The two-stage partition of a non-nested benchmark."""
    info = benchmark_info(name)
    loop = build_loop(name, trip_count)
    if info.partition_mode == "hand":
        stage_of = HAND_PARTITIONS[name]
        crossing = tuple(
            op.op_id
            for op in loop.body
            if stage_of[op.op_id] == 0
            and any(
                op.op_id in (user.deps + user.carried_deps)
                and stage_of[user.op_id] == 1
                for user in loop.body
            )
        )
        partition = Partition(loop=loop, stage_of=dict(stage_of), crossing_values=crossing)
        partition.validate()
        return partition
    return partition_loop(loop)


def build_pipelined(name: str, trip_count: Optional[int] = None) -> Program:
    """The two-thread streaming program the paper evaluates."""
    info = benchmark_info(name)
    trips = trip_count if trip_count is not None else info.default_trip
    if info.partition_mode == "nested":
        return nested.bzip2_pipelined(trips)
    return lower_partition(build_partition(name, trips))


def build_single_threaded(name: str, trip_count: Optional[int] = None) -> Program:
    """The original loop on one core (Figure 9 baseline)."""
    info = benchmark_info(name)
    trips = trip_count if trip_count is not None else info.default_trip
    if info.partition_mode == "nested":
        return nested.bzip2_single(trips)
    return lower_single_threaded(build_loop(name, trips))
