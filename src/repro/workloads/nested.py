"""256.bzip2 ``getAndMoveToFrontDecode``: the two-deep loop nest.

This is the one benchmark whose loop structure cannot be expressed as a
single-level IR loop: both the *inner* loop (MTF symbol decoding) and the
*outer* loop (group headers / selector state) carry inter-thread
communication.  The paper singles it out in Figure 6: outer-loop consumes
cannot be pipelined because the producer only reaches the outer-loop produce
after finishing all of that group's inner iterations, so the outer queue has
essentially zero decoupling and the benchmark alone slows ~33% when the
interconnect transit delay grows from 1 to 10 cycles.

The kernel is therefore hand-written as paired instruction-stream
generators (the paper's own methodology hand-parallelized the StreamIt
codes; bzip2's nest gets the same treatment here), with:

* queue 0 — the *outer* queue: one group-state item per outer iteration.
  The producer only knows it after finishing the group's inner loop (it
  folds the group's symbols into the selector/checksum state), but the
  consumer needs it *before* decoding the group's symbols — so the outer
  queue never holds more than one useful item and cannot be pipelined;
* queue 1 — the *inner* queue: one MTF symbol per inner iteration,
  fully pipelined.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim import isa
from repro.sim.isa import DynInst
from repro.sim.program import Program, ThreadProgram
from repro.workloads.kernels import _BASE, KB, MB

#: Inner-loop iterations per outer group (bzip2 decodes runs of symbols).
#: Matching the baseline queue depth (32) means the inner queue's occupancy
#: window spans exactly one group, so the outer value's producer-to-consumer
#: round trip is exposed every group — the "poor decoupling at the outer
#: loop level" of Section 4.4.  The 64-entry queue (Figure 6's third bar)
#: restores a group of slack and hides it again.
GROUP_SIZE = 32

# Register conventions for the hand-written kernel.
_R_SYM_RAW = 10
_R_SYM = 11
_R_GROUP = 12
_R_MTF = 13
_R_OUT = 14
_R_SEL = 15


def _outer_iterations(trip_count: int) -> int:
    """Outer groups needed to cover ``trip_count`` inner iterations."""
    return max(1, trip_count // GROUP_SIZE)


def producer_stream(trip_count: int) -> Iterator[DynInst]:
    """Stage 0: selector/group bookkeeping + symbol extraction."""
    base = _BASE["bzip2"]
    n_groups = _outer_iterations(trip_count)
    addr = base
    for _ in range(n_groups):
        # Group header work (selector fetch + limit computation).
        yield isa.load(_R_SEL, addr=base + 4 * MB + (addr % (64 * KB)))
        yield isa.ialu(_R_GROUP, _R_SEL)
        yield isa.ialu(_R_GROUP, _R_GROUP)
        for _ in range(GROUP_SIZE):
            # Inner: decode one MTF symbol from the bit stream.
            yield isa.load(_R_SYM_RAW, addr=base + (addr % (1 * MB)))
            addr += 1
            yield isa.ialu(_R_SYM, _R_SYM_RAW, _R_GROUP)
            yield isa.produce(1, _R_SYM)
            yield isa.branch(_R_SYM)
        # Outer value (group checksum / next-selector state) is only known
        # after the whole group — this is the unpipelineable dependence.
        yield isa.ialu(_R_GROUP, _R_GROUP, _R_SYM)
        yield isa.produce(0, _R_GROUP)
        yield isa.branch(_R_GROUP)


def consumer_stream(trip_count: int) -> Iterator[DynInst]:
    """Stage 1: move-to-front list update + output emission."""
    base = _BASE["bzip2"]
    n_groups = _outer_iterations(trip_count)
    out = base + 8 * MB
    for _ in range(n_groups):
        # The group's selector state gates the whole group: it is produced
        # only after the producer's inner loop, so this consume exposes the
        # full producer-to-consumer round trip every group (Section 4.4's
        # "poor decoupling at the outer loop level").
        yield isa.consume(_R_GROUP, 0)
        yield isa.ialu(_R_MTF, _R_MTF, _R_GROUP)
        for _ in range(GROUP_SIZE):
            yield isa.consume(_R_SYM, 1)
            # MTF list rotation: a short dependent ALU chain + table store.
            yield isa.ialu(_R_MTF, _R_SYM, _R_MTF, _R_GROUP)
            yield isa.ialu(_R_MTF, _R_MTF)
            yield isa.ialu(_R_OUT, _R_MTF)
            yield isa.ialu(_R_OUT, _R_OUT)
            yield isa.store(out, _R_OUT)
            out = base + 8 * MB + ((out + 1 - (base + 8 * MB)) % (2 * MB))
            yield isa.branch(_R_OUT)
        yield isa.branch(_R_GROUP)


def fused_stream(trip_count: int) -> Iterator[DynInst]:
    """The original single-threaded loop nest (Figure 9 baseline)."""
    base = _BASE["bzip2"]
    n_groups = _outer_iterations(trip_count)
    addr = base
    out = base + 8 * MB
    for _ in range(n_groups):
        yield isa.load(_R_SEL, addr=base + 4 * MB + (addr % (64 * KB)))
        yield isa.ialu(_R_GROUP, _R_SEL)
        yield isa.ialu(_R_GROUP, _R_GROUP)
        for _ in range(GROUP_SIZE):
            yield isa.load(_R_SYM_RAW, addr=base + (addr % (1 * MB)))
            addr += 1
            yield isa.ialu(_R_SYM, _R_SYM_RAW, _R_GROUP)
            yield isa.ialu(_R_MTF, _R_SYM, _R_MTF)
            yield isa.ialu(_R_MTF, _R_MTF)
            yield isa.ialu(_R_OUT, _R_MTF)
            yield isa.ialu(_R_OUT, _R_OUT)
            yield isa.store(out, _R_OUT)
            out = base + 8 * MB + ((out + 1 - (base + 8 * MB)) % (2 * MB))
            yield isa.branch(_R_OUT)
        yield isa.ialu(_R_GROUP, _R_GROUP, _R_SYM)
        yield isa.branch(_R_GROUP)


def bzip2_pipelined(trip_count: int) -> Program:
    """The hand-partitioned two-thread bzip2 program."""
    return Program(
        name="bzip2-dswp",
        threads=[
            ThreadProgram("bzip2-stage0", lambda: producer_stream(trip_count)),
            ThreadProgram("bzip2-stage1", lambda: consumer_stream(trip_count)),
        ],
        queue_endpoints={0: (0, 1), 1: (0, 1)},
    )


def bzip2_single(trip_count: int) -> Program:
    """The original single-threaded bzip2 loop nest."""
    return Program(
        name="bzip2-single",
        threads=[ThreadProgram("bzip2-st", lambda: fused_stream(trip_count))],
        queue_endpoints={},
    )
