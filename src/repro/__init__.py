"""repro — reproduction of *Support for High-Frequency Streaming in CMPs*
(Rangan, Vachharajani, Stoler, Ottoni, August, Cai — MICRO 2006).

The package provides:

* :mod:`repro.sim` — a simplified cycle-level dual-core CMP timing model
  (in-order cores, co-simulation scheduler, stall-component accounting);
* :mod:`repro.mem` — the coherent memory hierarchy (L1/L2/L3, snoop MESI,
  split-transaction pipelined bus, OzQ, DRAM);
* :mod:`repro.core` — the paper's contribution: the streaming-communication
  design space (EXISTING software queues, MEMOPTI write-forwarding,
  SYNCOPTI occupancy counters + stream cache, HEAVYWT dedicated hardware);
* :mod:`repro.dswp` — a Decoupled Software Pipelining substrate (loop IR,
  dependence graphs, SCC partitioning, code generation);
* :mod:`repro.pipeline` — DSWP generalized to K stages on K cores: an
  exact chain-decomposing partitioner, relay codegen over adjacent-pair
  queues, and the pipeline-scaling study across the design space;
* :mod:`repro.workloads` — the Table 1 benchmark suite rebuilt as
  calibrated IR kernels;
* :mod:`repro.harness` — one runnable experiment per table/figure, with
  per-cell failure isolation for sweeps;
* :mod:`repro.faults` — seeded, deterministic fault injection (forward
  delay/drop, bus jitter, queue-slot stalls, ACK delays) for exercising
  the mechanisms' tolerance paths and the scheduler's post-mortems;
* :mod:`repro.trace` — cycle-level event tracing with zero overhead when
  disabled: Chrome-trace/CSV exporters, queue-occupancy and
  bus-utilization timelines, and the COMM-OP delay profiler;
* :mod:`repro.store` — the fleet layer: a content-addressed result store
  (cells dedupe across campaigns — simulation-as-cache), a
  shared-filesystem work queue with crash-safe leases for multi-host
  dispatch, and the ``repro serve`` async batch-query service.

Quickstart::

    from repro import Machine, baseline_config, build_pipelined

    program = build_pipelined("wc", trip_count=500)
    machine = Machine(baseline_config(), mechanism="syncopti_sc")
    stats = machine.run(program)
    print(stats.cycles, stats.consumer.components)
"""

from repro.core.design_points import (
    DESIGN_POINTS,
    OVERRIDE_KNOBS,
    DesignPoint,
    apply_overrides,
    get_design_point,
    with_bus_latency,
    with_bus_width,
    with_n_cores,
    with_queue_depth,
    with_transit_delay,
)
from repro.core.mechanism import available_mechanisms, create_mechanism
from repro.faults import (
    FailureClass,
    FaultKind,
    FaultPlan,
    FaultRule,
    classify_outcome,
)
from repro.harness.campaign import (
    CampaignCell,
    CampaignLedger,
    CampaignPolicy,
    CampaignReport,
    campaign_status,
    execute_cell,
    run_campaign,
    run_cells,
)
from repro.harness.experiments import ALL_EXPERIMENTS, ExperimentResult, run_all, sweep
from repro.harness.runner import (
    FailedRun,
    PreemptedRun,
    RunOutcome,
    RunResult,
    TimedOutRun,
    run_benchmark,
    run_benchmark_resilient,
    run_single_threaded,
)
from repro.pipeline import (
    build_pipeline,
    build_pipeline_partition,
    lower_pipeline,
    partition_loop_k,
    pipeline_scaling,
)
from repro.sim.checkpoint import (
    Checkpointer,
    MachineSnapshot,
    PreemptionRequested,
    SnapshotCorruptError,
    SnapshotError,
    inspect_snapshot,
    quarantine_snapshot,
    read_snapshot,
    recover_snapshot,
    resume_run,
    write_snapshot,
)
from repro.bench import run_bench
from repro.store import (
    ResultStore,
    StoreCorruptError,
    StoreError,
    WorkQueue,
    cell_digest,
    dispatch_cells,
    run_worker,
)
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.cosim import (
    DeadlockError,
    SimulationError,
    SimulationLimitError,
    WallClockExceededError,
)
from repro.sim.forensics import PostMortem
from repro.sim.kernel import (
    KERNEL_NAMES,
    EventKernel,
    ReferenceKernel,
    SimKernel,
    available_kernels,
    create_kernel,
)
from repro.sim.machine import Machine, run_program
from repro.sim.program import Program, ThreadProgram
from repro.sim.stats import RunStats, ThreadStats, geomean
from repro.trace import (
    COMM_OP_POINTS,
    CommOpProfiler,
    CommOpReport,
    TraceBuffer,
    TraceConfig,
    TraceEvent,
    bus_utilization,
    check_bus_utilization,
    check_occupancy,
    measure_comm_ops,
    occupancy_plateaus,
    queue_occupancy,
    to_chrome_trace,
    write_chrome_trace,
    write_csv,
)
from repro.workloads.suite import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    build_partition,
    build_pipelined,
    build_single_threaded,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_EXPERIMENTS",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "COMM_OP_POINTS",
    "DESIGN_POINTS",
    "EventKernel",
    "KERNEL_NAMES",
    "OVERRIDE_KNOBS",
    "CampaignCell",
    "CampaignLedger",
    "CampaignPolicy",
    "CampaignReport",
    "Checkpointer",
    "CommOpProfiler",
    "CommOpReport",
    "DeadlockError",
    "DesignPoint",
    "ExperimentResult",
    "FailedRun",
    "FailureClass",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "Machine",
    "MachineConfig",
    "MachineSnapshot",
    "PostMortem",
    "PreemptedRun",
    "PreemptionRequested",
    "Program",
    "ReferenceKernel",
    "ResultStore",
    "RunOutcome",
    "RunResult",
    "RunStats",
    "SimKernel",
    "SimulationError",
    "SimulationLimitError",
    "SnapshotCorruptError",
    "SnapshotError",
    "StoreCorruptError",
    "StoreError",
    "ThreadProgram",
    "ThreadStats",
    "TimedOutRun",
    "TraceBuffer",
    "TraceConfig",
    "TraceEvent",
    "WallClockExceededError",
    "WorkQueue",
    "apply_overrides",
    "available_kernels",
    "available_mechanisms",
    "baseline_config",
    "campaign_status",
    "classify_outcome",
    "build_partition",
    "build_pipeline",
    "build_pipeline_partition",
    "build_pipelined",
    "build_single_threaded",
    "bus_utilization",
    "cell_digest",
    "check_bus_utilization",
    "check_occupancy",
    "create_kernel",
    "create_mechanism",
    "dispatch_cells",
    "execute_cell",
    "geomean",
    "get_design_point",
    "inspect_snapshot",
    "lower_pipeline",
    "measure_comm_ops",
    "partition_loop_k",
    "pipeline_scaling",
    "occupancy_plateaus",
    "quarantine_snapshot",
    "queue_occupancy",
    "read_snapshot",
    "recover_snapshot",
    "resume_run",
    "run_all",
    "run_bench",
    "run_benchmark",
    "run_benchmark_resilient",
    "run_campaign",
    "run_cells",
    "run_program",
    "run_single_threaded",
    "run_worker",
    "sweep",
    "to_chrome_trace",
    "with_bus_latency",
    "with_bus_width",
    "with_n_cores",
    "with_queue_depth",
    "with_transit_delay",
    "write_chrome_trace",
    "write_snapshot",
    "write_csv",
]
