"""``python -m repro``: list and run the reproduction's experiments.

Examples::

    python -m repro list
    python -m repro run figure7 --scale 0.25
    python -m repro run table1 pipeline_scaling
    python -m repro run all --scale 0.1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.experiments import ALL_EXPERIMENTS


def _first_doc_line(fn) -> str:
    doc = fn.__doc__ or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Support for High-Frequency Streaming in CMPs' "
            "(MICRO 2006): regenerate the paper's tables and figures, plus "
            "the pipeline-scaling study."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the available experiments")
    run = sub.add_parser("run", help="run named experiments and print them")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="NAME",
        help=f"experiment names ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help=(
            "multiplier on per-benchmark iteration counts (tables ignore "
            "it; use e.g. 0.1 for a quick smoke)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in ALL_EXPERIMENTS)
        for name, fn in ALL_EXPERIMENTS.items():
            print(f"{name:<{width}}  {_first_doc_line(fn)}")
        return 0

    names = list(args.experiments)
    if names == ["all"]:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from: {', '.join(ALL_EXPERIMENTS)} (or 'all')"
        )
    if args.scale <= 0:
        parser.error("--scale must be positive")
    failed = 0
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        result = fn() if name.startswith("table") else fn(args.scale)
        print(result.text)
        print()
        failed += len(result.failures)
    if failed:
        print(f"{failed} cell(s) failed across the requested experiments.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
