"""``python -m repro``: list and run the reproduction's experiments.

Examples::

    python -m repro list
    python -m repro run figure7 --scale 0.25
    python -m repro run table1 pipeline_scaling
    python -m repro run all --scale 0.1 --jobs 4
    python -m repro run figure7 --kernel event     # same figures, faster host
    python -m repro bench --quick --check          # kernel perf trajectory

    python -m repro campaign run --grid figure7 --ledger fig7.jsonl --jobs 4
    python -m repro campaign status --ledger fig7.jsonl
    python -m repro campaign resume --grid figure7 --ledger fig7.jsonl --jobs 4

    # Checkpoint every 20k simulated cycles: killed/preempted cells resume
    # mid-run (bit-identically) instead of restarting from cycle 0.
    python -m repro campaign run --grid pipeline --ledger pipe.jsonl \\
        --jobs 4 --checkpoint-every 20000

    # Content-addressed result store: the second run is 100% store hits.
    python -m repro campaign run --grid smoke --ledger a.jsonl --store ./store
    python -m repro campaign run --grid smoke --ledger b.jsonl --store ./store

    # Fleet mode: enqueue misses, let external workers drain the queue.
    python -m repro campaign run --grid figure7 --ledger f.jsonl \\
        --store ./store --workers-external &
    python -m repro store worker --store ./store      # on any host sharing ./store

    python -m repro store stats --store ./store
    python -m repro serve --store ./store --port 8763 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.experiments import ALL_EXPERIMENTS
from repro.sim.kernel import KERNEL_NAMES

#: Named campaign grids ``campaign run`` can build.  ``resume`` rebuilds the
#: same grid (cells never started leave no spec in the ledger, so the grid
#: definition — not the ledger — is the source of truth for what to run).
CAMPAIGN_GRIDS = ("figure7", "figure12", "pipeline", "smoke")


def _first_doc_line(fn) -> str:
    doc = fn.__doc__ or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


def _campaign_grid(name: str, scale: float, kernel: str = "reference"):
    """Build the named grid's campaign cells."""
    from repro.core.design_points import FIGURE7_ORDER, FIGURE12_ORDER
    from repro.harness.campaign import CampaignCell
    from repro.harness.experiments import EXPERIMENT_TRIPS
    from repro.pipeline.scaling import PIPELINE_BENCHMARKS, SCALING_POINTS
    from repro.workloads.suite import BENCHMARK_ORDER

    def trips(bench: str) -> int:
        return max(32, int(EXPERIMENT_TRIPS[bench] * scale))

    if name == "figure7":
        return [
            CampaignCell(
                benchmark=b, design_point=p, trip_count=trips(b), kernel=kernel
            )
            for b in BENCHMARK_ORDER
            for p in FIGURE7_ORDER
        ]
    if name == "figure12":
        return [
            CampaignCell(
                benchmark=b, design_point=p, trip_count=trips(b), kernel=kernel
            )
            for b in BENCHMARK_ORDER
            for p in FIGURE12_ORDER
        ]
    if name == "pipeline":
        cells = [
            CampaignCell(
                benchmark=b, kind="single", trip_count=trips(b), kernel=kernel
            )
            for b in PIPELINE_BENCHMARKS
        ]
        cells += [
            CampaignCell(
                benchmark=b,
                design_point=p,
                kind="pipeline",
                stages=k,
                trip_count=trips(b),
                kernel=kernel,
            )
            for b in PIPELINE_BENCHMARKS
            for k in (2, 4)
            for p in SCALING_POINTS
        ]
        return cells
    if name == "smoke":
        return [
            CampaignCell(
                benchmark=b,
                design_point=p,
                trip_count=max(32, int(64 * scale)),
                kernel=kernel,
            )
            for b in ("wc", "fir")
            for p in FIGURE7_ORDER
        ]
    raise KeyError(f"unknown campaign grid {name!r}; known: {CAMPAIGN_GRIDS}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Support for High-Frequency Streaming in CMPs' "
            "(MICRO 2006): regenerate the paper's tables and figures, plus "
            "the pipeline-scaling study."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the available experiments")
    run = sub.add_parser("run", help="run named experiments and print them")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="NAME",
        help=f"experiment names ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    run.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help=(
            "multiplier on per-benchmark iteration counts (tables ignore "
            "it; use e.g. 0.1 for a quick smoke)"
        ),
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for each experiment's grid (1 = serial "
            "in-process, the default)"
        ),
    )
    run.add_argument(
        "--kernel",
        default="reference",
        choices=KERNEL_NAMES,
        help=(
            "simulation stepping kernel; bit-identical figures either way, "
            "'event' is the fast path (default: reference)"
        ),
    )

    camp = sub.add_parser(
        "campaign",
        help=(
            "resilient campaign runner: worker pool, watchdog timeouts, "
            "retries, and a crash-safe resume ledger"
        ),
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)
    crun = csub.add_parser(
        "run", help="run a named grid, recording every attempt in the ledger"
    )
    cresume = csub.add_parser(
        "resume",
        help=(
            "replay the ledger, skip completed cells, re-queue in-flight "
            "ones, and finish the grid"
        ),
    )
    for p in (crun, cresume):
        p.add_argument(
            "--grid",
            default="figure7",
            choices=CAMPAIGN_GRIDS,
            help="named cell grid to run (default: figure7)",
        )
        p.add_argument(
            "--ledger",
            required=True,
            help="JSONL ledger path (one record per cell attempt)",
        )
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument(
            "--jobs", type=int, default=1, help="worker processes (default 1)"
        )
        p.add_argument(
            "--budget",
            type=float,
            default=None,
            help="wall-clock seconds per cell attempt (default: no watchdog)",
        )
        p.add_argument(
            "--max-attempts",
            type=int,
            default=3,
            help="attempts per cell; only transient failures retry (default 3)",
        )
        p.add_argument(
            "--recheck",
            action="store_true",
            help=(
                "re-run cells already recorded done and verify their "
                "determinism fingerprints against the ledger's golden values"
            ),
        )
        p.add_argument(
            "--checkpoint-every",
            type=int,
            default=None,
            metavar="CYCLES",
            help=(
                "snapshot each cell every N simulated cycles so killed or "
                "preempted workers resume mid-run instead of from cycle 0 "
                "(default: off)"
            ),
        )
        p.add_argument(
            "--checkpoint-dir",
            default=None,
            help=(
                "directory for per-cell snapshot files "
                "(default: <ledger>.ckpt next to the ledger)"
            ),
        )
        p.add_argument(
            "--kernel",
            default="reference",
            choices=KERNEL_NAMES,
            help=(
                "simulation stepping kernel for every cell; part of the "
                "cell key, so a resume must use the same kernel as the run "
                "it resumes (default: reference)"
            ),
        )
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help=(
                "content-addressed result store: cells already stored are "
                "hits (no re-run), fresh results publish back (default: off)"
            ),
        )
        p.add_argument(
            "--workers-external",
            action="store_true",
            help=(
                "do not simulate locally: enqueue store misses on the shared "
                "work queue and wait for external 'repro store worker' "
                "processes to publish results (requires --store)"
            ),
        )
        p.add_argument(
            "--queue",
            default=None,
            metavar="DIR",
            help=(
                "work-queue directory for --workers-external "
                "(default: <store>/queue)"
            ),
        )
        p.add_argument(
            "--obs-log",
            default=None,
            metavar="FILE",
            help=(
                "enable repro.obs: correlated JSONL events + spans into "
                "FILE, one cid per cell (default: off, zero overhead)"
            ),
        )
    cstatus = csub.add_parser("status", help="summarize a campaign ledger")
    cstatus.add_argument("--ledger", required=True)

    store = sub.add_parser(
        "store",
        help="inspect and maintain a result store, or run a queue worker",
    )
    ssub = store.add_subparsers(dest="store_command", required=True)
    for name, help_text in (
        ("stats", "print store + queue counters as JSON"),
        ("verify", "full-scan every entry (CRC + fingerprint), quarantine bad ones"),
        ("gc", "sweep orphaned tmp files and aged quarantine"),
        ("worker", "lease cells from the shared queue and publish results"),
    ):
        sp = ssub.add_parser(name, help=help_text)
        sp.add_argument("--store", required=True, metavar="DIR")
        sp.add_argument(
            "--queue",
            default=None,
            metavar="DIR",
            help="work-queue directory (default: <store>/queue)",
        )
        if name == "gc":
            sp.add_argument(
                "--quarantine-max-age",
                type=float,
                default=None,
                metavar="SECONDS",
                help="also delete quarantined entries older than this",
            )
        if name == "worker":
            sp.add_argument(
                "--worker-id",
                default=None,
                help="lease owner label (default: host:pid)",
            )
            sp.add_argument(
                "--max-cells",
                type=int,
                default=None,
                help="stop after N cells (default: drain the queue)",
            )
            sp.add_argument(
                "--budget",
                type=float,
                default=None,
                help="wall-clock seconds per cell (default: no watchdog)",
            )
            sp.add_argument(
                "--lease-ttl",
                type=float,
                default=None,
                help="seconds before an unrenewed lease is reclaimable",
            )
            sp.add_argument(
                "--obs-log",
                default=None,
                metavar="FILE",
                help=(
                    "enable repro.obs: worker claim/publish events + sim "
                    "spans into FILE (default: off, zero overhead)"
                ),
            )

    serve = sub.add_parser(
        "serve",
        help=(
            "async batch-query service over the store: hits from disk, "
            "misses simulated exactly once"
        ),
    )
    serve.add_argument("--store", required=True, metavar="DIR")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8763)
    serve.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="local simulation processes for misses (default 2)",
    )
    serve.add_argument(
        "--queue",
        default=None,
        metavar="DIR",
        help=(
            "dispatch misses onto this work queue for external workers "
            "instead of simulating locally"
        ),
    )
    serve.add_argument(
        "--budget",
        type=float,
        default=None,
        help="wall-clock seconds per local miss simulation",
    )
    serve.add_argument(
        "--queue-timeout",
        type=float,
        default=None,
        help="seconds a query waits for the fleet before erroring (queue mode)",
    )
    serve.add_argument(
        "--query-timeout",
        type=float,
        default=None,
        help="wall-clock seconds per query before a 504 (default: unbounded)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help=(
            "shed queries with 503 + Retry-After once this many are "
            "in flight (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds SIGTERM waits for in-flight queries before closing",
    )
    serve.add_argument(
        "--obs-log",
        default=None,
        metavar="FILE",
        help=(
            "enable repro.obs: one correlation id per query, structured "
            "events + cross-layer spans into FILE, Prometheus /metrics "
            "(default: off, zero overhead)"
        ),
    )

    obs = sub.add_parser(
        "obs",
        help=(
            "observability toolkit: tail one request's correlated event "
            "chain, roll spans up into a latency report, export Perfetto"
        ),
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)
    otail = osub.add_parser(
        "tail",
        help="print one correlation chain (or list every cid in the log)",
    )
    otail.add_argument("--log", required=True, metavar="FILE")
    otail.add_argument(
        "--cid",
        default=None,
        help="correlation id to follow (default: list the cids present)",
    )
    oreport = osub.add_parser(
        "report", help="span rollup: count, total/self/mean/max time per span"
    )
    oreport.add_argument("--log", required=True, metavar="FILE")
    oexport = osub.add_parser(
        "export", help="write the spans as a Perfetto-loadable Chrome trace"
    )
    oexport.add_argument("--log", required=True, metavar="FILE")
    oexport.add_argument("--out", required=True, metavar="JSON")
    oexport.add_argument(
        "--cid", default=None, help="limit the export to one correlation id"
    )

    chaos = sub.add_parser(
        "chaos",
        help=(
            "crash-point exploration drill: walk every durable-write site "
            "of each fleet operation under kill/torn/power crash models"
        ),
    )
    chaos.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="scratch directory for drill worlds (default: a tempdir)",
    )
    chaos.add_argument(
        "--modes",
        default=None,
        help="comma-separated subset of kill,torn,power (default: all)",
    )
    chaos.add_argument(
        "--ops",
        default=None,
        help="comma-separated subset of operation names (default: all)",
    )
    chaos.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-operation progress lines",
    )

    bench = sub.add_parser(
        "bench",
        help=(
            "measure simulated cycles/sec per kernel (the perf trajectory) "
            "and write the BENCH json record"
        ),
    )
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--out", default=None)
    bench.add_argument("--no-campaign", action="store_true")
    bench.add_argument("--check", action="store_true")
    return parser


def _campaign_main(parser: argparse.ArgumentParser, args) -> int:
    from repro.harness.campaign import (
        CampaignPolicy,
        campaign_status,
        render_status,
        run_campaign,
    )

    if args.campaign_command == "status":
        status = campaign_status(args.ledger)
        print(render_status(status))
        return 0 if status["complete"] else 1

    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.workers_external and args.store is None:
        parser.error("--workers-external requires --store")
    if args.queue is not None and not args.workers_external:
        parser.error("--queue only applies with --workers-external")
    if args.obs_log is not None:
        from repro.obs import runtime as _obs_runtime

        _obs_runtime.configure(log_path=args.obs_log)
    cells = _campaign_grid(args.grid, args.scale, kernel=args.kernel)

    if args.workers_external:
        import os

        from repro.store.dispatch import WorkQueue, dispatch_cells
        from repro.store.store import ResultStore

        store = ResultStore(args.store)
        queue = WorkQueue(args.queue or os.path.join(args.store, "queue"))
        report = dispatch_cells(
            cells,
            store,
            queue,
            ledger_path=args.ledger,
            timeout=args.budget,
            progress=print,
        )
    else:
        policy = CampaignPolicy(
            jobs=args.jobs,
            wall_clock_budget=args.budget,
            max_attempts=args.max_attempts,
            recheck=args.recheck,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
        )
        report = run_campaign(
            cells,
            policy,
            ledger_path=args.ledger,
            resume=args.campaign_command == "resume",
            progress=print,
            store=args.store,
        )
    print(report.summary())
    ok = report.n_failed == 0 and not report.mismatches
    return 0 if ok else 1


def _store_main(args) -> int:
    import json
    import os

    from repro.store.dispatch import WorkQueue, run_worker
    from repro.store.store import ResultStore

    store = ResultStore(args.store)
    queue_root = args.queue or os.path.join(args.store, "queue")

    if args.store_command == "stats":
        doc = {"store": store.stats()}
        if os.path.isdir(queue_root):
            doc["queue"] = WorkQueue(queue_root).stats()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.store_command == "verify":
        report = store.verify()
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["corrupt"] == 0 else 1
    if args.store_command == "gc":
        report = store.gc(quarantine_max_age=args.quarantine_max_age)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    # worker
    if args.obs_log is not None:
        from repro.obs import runtime as _obs_runtime

        _obs_runtime.configure(log_path=args.obs_log)
    ttl = {"lease_ttl": args.lease_ttl} if args.lease_ttl else {}
    queue = WorkQueue(queue_root, **ttl)
    counters = run_worker(
        store,
        queue,
        worker_id=args.worker_id,
        max_cells=args.max_cells,
        wall_clock_budget=args.budget,
        progress=print,
    )
    print(json.dumps(counters, sort_keys=True))
    return 0 if counters["failed"] == 0 else 1


def _serve_main(args) -> int:
    import asyncio

    from repro.store.service import serve_forever

    def ready(handle) -> None:
        print(f"repro serve: listening on http://{handle.host}:{handle.port}")
        print(f"repro serve: store {args.store}")

    try:
        asyncio.run(
            serve_forever(
                args.store,
                host=args.host,
                port=args.port,
                jobs=args.jobs,
                queue_root=args.queue,
                wall_clock_budget=args.budget,
                queue_timeout=args.queue_timeout,
                query_timeout=args.query_timeout,
                max_inflight=args.max_inflight,
                drain_grace=args.drain_grace,
                ready=ready,
                obs_log=args.obs_log,
            )
        )
    except KeyboardInterrupt:
        print("repro serve: stopped")
    return 0


def _obs_main(args) -> int:
    from repro.obs.events import events_for_cid, list_cids, read_events
    from repro.obs.spans import render_report, rollup, to_chrome_trace

    events = read_events(args.log)

    if args.obs_command == "tail":
        if args.cid is None:
            cids = list_cids(events)
            if not cids:
                print(f"no correlation ids in {args.log}")
                return 1
            print(f"{len(cids)} correlation id(s) in {args.log}:")
            for cid in cids:
                n = len(events_for_cid(events, cid))
                print(f"  {cid}  ({n} events)")
            return 0
        chain = events_for_cid(events, args.cid)
        if not chain:
            print(f"no events for cid {args.cid} in {args.log}")
            return 1
        t0 = float(chain[0].get("t", 0.0))
        skip = {"t", "event", "pid", "seq", "cid"}
        for record in chain:
            offset = float(record.get("t", t0)) - t0
            detail = " ".join(
                f"{k}={record[k]}"
                for k in record
                if k not in skip and record[k] is not None
            )
            print(
                f"+{offset:9.4f}s  pid {record.get('pid', '?'):>7}  "
                f"{str(record.get('event', '?')):<22} {detail}"
            )
        return 0

    if args.obs_command == "report":
        print(render_report(rollup(events)))
        return 0

    # export
    from repro.trace.export import write_trace_doc

    doc = to_chrome_trace(events, cid=args.cid)
    write_trace_doc(doc, args.out)
    print(
        f"wrote {len(doc['traceEvents'])} trace events to {args.out} "
        "(open in https://ui.perfetto.dev)"
    )
    return 0


def _chaos_main(parser: argparse.ArgumentParser, args) -> int:
    from repro.chaos import CRASH_MODES, explore, standard_operations

    modes = tuple(CRASH_MODES)
    if args.modes is not None:
        modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
        unknown = [m for m in modes if m not in CRASH_MODES]
        if unknown:
            parser.error(
                f"unknown crash mode(s) {', '.join(unknown)}; "
                f"choose from: {', '.join(CRASH_MODES)}"
            )

    operations = standard_operations()
    if args.ops is not None:
        wanted = [o.strip() for o in args.ops.split(",") if o.strip()]
        known = {op.name for op in operations}
        unknown = [o for o in wanted if o not in known]
        if unknown:
            parser.error(
                f"unknown operation(s) {', '.join(unknown)}; "
                f"choose from: {', '.join(sorted(known))}"
            )
        operations = [op for op in operations if op.name in wanted]

    progress = None if args.quiet else print
    report = explore(
        operations=operations,
        root=args.root,
        modes=modes,
        progress=progress,
    )
    print(report.render())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in ALL_EXPERIMENTS)
        for name, fn in ALL_EXPERIMENTS.items():
            print(f"{name:<{width}}  {_first_doc_line(fn)}")
        return 0
    if args.command == "campaign":
        return _campaign_main(parser, args)
    if args.command == "store":
        return _store_main(args)
    if args.command == "serve":
        return _serve_main(args)
    if args.command == "obs":
        return _obs_main(args)
    if args.command == "chaos":
        return _chaos_main(parser, args)
    if args.command == "bench":
        from repro.bench import main as bench_main

        forwarded = []
        if args.quick:
            forwarded.append("--quick")
        if args.out is not None:
            forwarded += ["--out", args.out]
        if args.no_campaign:
            forwarded.append("--no-campaign")
        if args.check:
            forwarded.append("--check")
        return bench_main(forwarded)

    names = list(args.experiments)
    if names == ["all"]:
        names = list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from: {', '.join(ALL_EXPERIMENTS)} (or 'all')"
        )
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    failed = 0
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        result = (
            fn()
            if name.startswith("table")
            else fn(args.scale, jobs=args.jobs, kernel=args.kernel)
        )
        print(result.text)
        print()
        failed += len(result.failures)
    if failed:
        print(f"{failed} cell(s) failed across the requested experiments.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
