"""``repro.chaos.fs`` — a deterministic, seeded OS-boundary fault shim.

:class:`ChaosFS` implements the :class:`repro.store.io.RealFS` facade and
sits under every durable-write path in the store, the work queue, the
campaign ledger, and the checkpoint writer.  It produces, on a seeded and
fully reproducible schedule:

* **error bursts** — ``ENOSPC``/``EIO`` (or any errno) returned from
  ``open``/``write``/``fsync``/``replace``/``unlink``;
* **short reads** — ``read_bytes`` returns a strict prefix once (the
  transient glitch CRC validation plus one re-read must absorb);
* **torn writes** — a ``write`` persists only a prefix before the
  simulated crash;
* **lost fsyncs / dropped renames** — the call *reports success* but the
  durability it promised is withheld, observable only after a simulated
  power loss (:meth:`ChaosFS.apply_crash_loss`);
* **clock skew** — :meth:`clock` returns real time plus a configurable
  offset, so lease-TTL staleness logic can be driven without sleeping;
* **process kill** — :class:`SimulatedCrash` raised at an enumerated
  operation index (``crash_at``), the crash-point explorer's lever.

Two distinct loss models, because real machines die two ways:

* a *process kill* (SIGKILL, OOM) loses nothing the kernel already has:
  every completed facade call stays applied, the interrupted one is torn
  or absent;
* a *power loss* additionally reverts everything newer than its last
  ``fsync`` barrier: file contents roll back to the last-fsynced bytes,
  and renames/creates/unlinks whose parent directory was never fsynced
  are undone.

:class:`ChaosFS` tracks the second model continuously in ``_durable`` (a
shadow of what the platter would hold) so :meth:`apply_crash_loss` can
rewrite the real directory tree into the power-loss state — which is what
makes the missing-directory-fsync class of bug *testable* instead of
theoretical.

Everything is driven by :class:`ChaosPlan`, plain data with a seed; the
same plan against the same workload produces byte-identical fault
schedules, so every chaos failure reproduces from its printed plan.
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ChaosFS",
    "ChaosPlan",
    "FaultRule",
    "OpRecord",
    "SimulatedCrash",
]


class SimulatedCrash(BaseException):
    """The process died at an enumerated crash point.

    Deliberately a :class:`BaseException`: production code catching
    ``Exception`` (retry loops, degraded modes) must not be able to absorb
    a simulated kill — nothing survives a real SIGKILL either.  Only the
    chaos harness catches it.
    """

    def __init__(self, index: int, op: str, path: str, torn: bool = False) -> None:
        mode = "torn mid-write" if torn else "before the call applied"
        super().__init__(f"simulated crash at op {index}: {op} {path} ({mode})")
        self.index = index
        self.op = op
        self.path = path
        self.torn = torn


@dataclass
class FaultRule:
    """One deterministic error-injection rule.

    Matches facade calls by operation name and path substring; fires on
    the ``after``-th match and the ``count - 1`` following ones (a burst).
    """

    op: str
    error: int = errno.EIO
    path_substr: str = ""
    after: int = 0
    count: int = 1
    #: Matches seen so far (mutated by the shim).
    seen: int = field(default=0, repr=False)

    def fires(self, op: str, path: str) -> bool:
        if op != self.op or self.path_substr not in path:
            return False
        self.seen += 1
        return self.after < self.seen <= self.after + self.count


@dataclass
class ChaosPlan:
    """Seeded fault schedule for one :class:`ChaosFS` instance.

    Probabilities are per-call and drawn from ``random.Random(seed)``, so
    a plan is exactly reproducible.  ``crash_at`` enumerates crash points:
    the N-th durable-mutation call (0-based) raises
    :class:`SimulatedCrash` — ``crash_torn`` additionally persists a
    seeded prefix when that call is a ``write``.
    """

    seed: int = 0
    rules: List[FaultRule] = field(default_factory=list)
    #: Per-call probabilities of seeded faults (0.0 = never).
    p_io_error: float = 0.0
    p_short_read: float = 0.0
    p_torn_write: float = 0.0
    p_lost_fsync: float = 0.0
    p_dropped_rename: float = 0.0
    #: Errno used by probabilistic I/O errors.
    io_errno: int = errno.EIO
    #: Seconds added to :meth:`ChaosFS.clock` (lease-TTL skew).
    clock_skew: float = 0.0
    #: Crash-point index (counted over mutating calls), or ``None``.
    crash_at: Optional[int] = None
    #: Tear the write the crash lands on (persist a strict prefix).
    crash_torn: bool = False


@dataclass
class OpRecord:
    """One recorded facade call (the explorer's injection-site table)."""

    index: int
    op: str
    path: str


class ChaosFS:
    """A :class:`repro.store.io.RealFS`-shaped facade that injects faults.

    All real effects still happen against the real filesystem (the system
    under test keeps its ordinary view); the shim additionally maintains
    the *durable* shadow state used by :meth:`apply_crash_loss`.
    """

    #: Facade calls that mutate state and therefore count as crash points.
    MUTATING_OPS = ("open", "write", "fsync", "close", "replace", "unlink", "fsync_dir")

    def __init__(self, plan: Optional[ChaosPlan] = None) -> None:
        self.plan = plan or ChaosPlan()
        self.rng = random.Random(self.plan.seed)
        #: Every facade call, in order (the injection-site enumeration).
        self.ops: List[OpRecord] = []
        #: Durable-mutation call count (the crash-point counter).
        self.mutations = 0
        #: Counters by fault kind, for assertions and drill reports.
        self.injected: Dict[str, int] = {}
        # -- power-loss shadow state ------------------------------------
        #: path -> bytes|None: what the platter holds (None = absent).
        #: Only paths touched through the facade are tracked.
        self._durable: Dict[str, Optional[bytes]] = {}
        #: dirname -> [(undo description)] of name-level ops (renames,
        #: creates, unlinks) not yet covered by a directory fsync.
        self._dir_pending: Dict[str, List[Tuple[str, str, str]]] = {}
        #: fd -> path for write tracking.
        self._fd_path: Dict[int, str] = {}

    # -- bookkeeping ----------------------------------------------------

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    def _chance(self, p: float) -> bool:
        return p > 0.0 and self.rng.random() < p

    def _maybe_fault(self, op: str, path: str) -> None:
        """Raise a planned or probabilistic error for this call."""
        for rule in self.plan.rules:
            if rule.fires(op, path):
                self._count(f"rule:{op}")
                raise OSError(rule.error, os.strerror(rule.error), path)
        if op in self.MUTATING_OPS and self._chance(self.plan.p_io_error):
            self._count(f"p:{op}")
            raise OSError(
                self.plan.io_errno, os.strerror(self.plan.io_errno), path
            )

    def _site(self, op: str, path: str) -> int:
        """Record the call; crash here if it is the enumerated crash point.

        Returns the mutation index of this call (for torn handling).
        """
        self.ops.append(OpRecord(index=len(self.ops), op=op, path=path))
        if op not in self.MUTATING_OPS:
            return -1
        index = self.mutations
        self.mutations += 1
        if self.plan.crash_at is not None and index == self.plan.crash_at:
            if not (self.plan.crash_torn and op == "write"):
                raise SimulatedCrash(index, op, path)
        return index

    def _durable_snapshot(self, path: str) -> None:
        """Start tracking ``path``: remember what the platter holds now."""
        if path not in self._durable:
            try:
                with open(path, "rb") as fh:
                    self._durable[path] = fh.read()
            except FileNotFoundError:
                self._durable[path] = None

    # -- the facade surface ---------------------------------------------

    def open(self, path: str, flags: int, mode: int = 0o644) -> int:
        self._maybe_fault("open", path)
        self._site("open", path)
        if flags & (os.O_WRONLY | os.O_RDWR | os.O_CREAT):
            self._durable_snapshot(path)
        fd = os.open(path, flags, mode)
        self._fd_path[fd] = path
        if flags & os.O_CREAT and self._durable.get(path) is None:
            # A fresh file's *name* is a directory entry: pending until
            # the parent directory is fsynced.
            self._pend(os.path.dirname(os.path.abspath(path)), ("create", path, ""))
        return fd

    def write(self, fd: int, data: bytes) -> int:
        path = self._fd_path.get(fd, "<fd>")
        self._maybe_fault("write", path)
        index = self._site("write", path)
        torn_here = (
            self.plan.crash_at is not None
            and index == self.plan.crash_at
            and self.plan.crash_torn
        )
        if torn_here:
            keep = self.rng.randrange(len(data)) if data else 0
            os.write(fd, data[:keep])
            self._count("torn_write")
            raise SimulatedCrash(index, "write", path, torn=True)
        if self._chance(self.plan.p_torn_write):
            # Seeded torn write without a crash: a partial write the
            # caller sees as an error (as a real short os.write surfaces
            # once the disk is sick).
            keep = self.rng.randrange(len(data)) if data else 0
            os.write(fd, data[:keep])
            self._count("torn_write")
            raise OSError(errno.EIO, "simulated torn write", path)
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        path = self._fd_path.get(fd, "<fd>")
        self._maybe_fault("fsync", path)
        self._site("fsync", path)
        if self._chance(self.plan.p_lost_fsync):
            # Reports success; durability withheld (apply_crash_loss will
            # roll the content back to the previous durable bytes).
            self._count("lost_fsync")
            return
        os.fsync(fd)
        if path != "<fd>":
            try:
                with open(path, "rb") as fh:
                    self._durable[path] = fh.read()
            except OSError:
                pass

    def close(self, fd: int) -> None:
        self._site("close", self._fd_path.get(fd, "<fd>"))
        self._fd_path.pop(fd, None)
        os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        self._maybe_fault("replace", dst)
        self._site("replace", dst)
        self._durable_snapshot(src)
        self._durable_snapshot(dst)
        os.replace(src, dst)
        if self._chance(self.plan.p_dropped_rename):
            self._count("dropped_rename")
            # Permanently volatile: even a later dir fsync will not commit
            # it (models a firmware-grade lie, the worst case).
            self._pend(None, ("rename", src, dst))
            return
        self._pend(os.path.dirname(os.path.abspath(dst)), ("rename", src, dst))

    def unlink(self, path: str) -> None:
        self._maybe_fault("unlink", path)
        self._site("unlink", path)
        self._durable_snapshot(path)
        os.unlink(path)
        self._pend(os.path.dirname(os.path.abspath(path)), ("unlink", path, ""))

    def fsync_dir(self, dirname: str) -> None:
        self._maybe_fault("fsync_dir", dirname)
        self._site("fsync_dir", dirname)
        if self._chance(self.plan.p_lost_fsync):
            self._count("lost_fsync")
            return
        # Commit every pending name-level op under this directory.
        for op, a, b in self._dir_pending.pop(os.path.abspath(dirname), []):
            self._commit(op, a, b)

    def makedirs(self, path: str, exist_ok: bool = True) -> None:
        os.makedirs(path, exist_ok=exist_ok)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def read_bytes(self, path: str) -> bytes:
        self._maybe_fault("read", path)
        self.ops.append(OpRecord(index=len(self.ops), op="read", path=path))
        with open(path, "rb") as fh:
            data = fh.read()
        if data and self._chance(self.plan.p_short_read):
            self._count("short_read")
            return data[: self.rng.randrange(len(data))]
        return data

    def clock(self) -> float:
        return time.time() + self.plan.clock_skew

    # -- power-loss shadow ----------------------------------------------

    def _pend(
        self, dirname: Optional[str], record: Tuple[str, str, str]
    ) -> None:
        key = os.path.abspath(dirname) if dirname is not None else "<never>"
        self._dir_pending.setdefault(key, []).append(record)

    def _commit(self, op: str, a: str, b: str) -> None:
        """A name-level op became durable: fold it into the shadow."""
        if op == "rename":
            src, dst = a, b
            # The rename is durable; the content that travelled is the
            # platter's view of src (write_atomic fsyncs src first, so
            # that is the full payload).
            self._durable[dst] = self._durable.get(src)
            self._durable[src] = None
        elif op == "create":
            try:
                with open(a, "rb") as fh:
                    self._durable[a] = fh.read()
            except OSError:
                # The name was renamed or unlinked again since the create
                # (write_atomic's tmp file, typically).  Leave the shadow
                # alone: the fsync barrier owns the content's durability,
                # and the later pending rename/unlink owns the name's —
                # clobbering to None here would revert a fully-synced
                # rename target when that rename commits next.
                pass
        elif op == "unlink":
            self._durable[a] = None

    def apply_crash_loss(self) -> List[str]:
        """Rewrite the real tree into the power-loss state; list changes.

        Every tracked path reverts to its durable bytes (or disappears).
        Call after catching :class:`SimulatedCrash` — or at any moment —
        to simulate the power failing right now.  Paths never touched
        through the facade are left alone.
        """
        reverted: List[str] = []
        for path, data in sorted(self._durable.items()):
            try:
                current: Optional[bytes]
                with open(path, "rb") as fh:
                    current = fh.read()
            except FileNotFoundError:
                current = None
            if current == data:
                continue
            if data is None:
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
            else:
                with open(path, "wb") as fh:
                    fh.write(data)
            reverted.append(path)
        self._dir_pending.clear()
        return reverted

    def close_leaked(self) -> None:
        """Close descriptors a simulated crash abandoned mid-operation.

        A real SIGKILL closes everything; the explorer calls this after
        catching :class:`SimulatedCrash` so hundreds of trials cannot
        exhaust the drill process's fd table.
        """
        for fd in list(self._fd_path):
            try:
                os.close(fd)
            except OSError:
                pass
        self._fd_path.clear()

    # -- reporting -------------------------------------------------------

    def mutation_sites(self) -> List[OpRecord]:
        """The recorded mutating calls — the enumerable crash points."""
        out = []
        seen = 0
        for rec in self.ops:
            if rec.op in self.MUTATING_OPS:
                out.append(OpRecord(index=seen, op=rec.op, path=rec.path))
                seen += 1
        return out
