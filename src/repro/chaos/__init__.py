"""repro.chaos — seeded fault injection and crash-point exploration.

The chaos harness answers one question about the fleet layer: *does every
durable-write path actually survive the crashes it claims to?*  Two pieces:

* :mod:`repro.chaos.fs` — :class:`ChaosFS`, a deterministic OS-boundary
  shim implementing the :class:`repro.store.io.RealFS` facade.  Injects
  torn writes, dropped renames, lost fsyncs, ENOSPC/EIO bursts, short
  reads, lease-clock skew, and process-kill at enumerated crash points —
  all on a seeded, reproducible schedule (:class:`ChaosPlan`).
* :mod:`repro.chaos.explorer` — :func:`explore` walks every mutation site
  of every fleet operation (store publish, worker commit, lease
  claim/reclaim, ledger append, snapshot rotate) under three crash models
  (kill, torn write, power loss) and asserts the post-restart invariants:
  nothing corrupt served, nothing acknowledged lost, stale leases
  reclaimed exactly once, quarantine evidence preserved, recovery
  convergent with the never-crashed run.

Absent by default: production code pays one ``fs=None`` branch and nothing
else.  ``python -m repro chaos`` and ``scripts/chaos_drill.py`` run the
full drill; DESIGN.md §13 documents the injection-site table.
"""

from repro.chaos.explorer import (
    CRASH_MODES,
    ChaosOperation,
    ExplorationReport,
    FleetHarness,
    OperationReport,
    TrialTiming,
    Violation,
    explore,
    standard_operations,
)
from repro.chaos.fs import (
    ChaosFS,
    ChaosPlan,
    FaultRule,
    OpRecord,
    SimulatedCrash,
)

__all__ = [
    "CRASH_MODES",
    "ChaosFS",
    "ChaosOperation",
    "ChaosPlan",
    "ExplorationReport",
    "FaultRule",
    "FleetHarness",
    "OpRecord",
    "OperationReport",
    "SimulatedCrash",
    "Violation",
    "explore",
    "standard_operations",
]
