"""``repro.chaos.explorer`` — walk every crash point of every fleet operation.

The explorer is the systematic half of the chaos harness.  For each
*operation* (store publish, worker commit, lease claim, lease reclaim,
ledger append, snapshot rotate) it first runs the operation once under a
fault-free :class:`~repro.chaos.fs.ChaosFS` to *enumerate* its durable
mutation sites — every ``open``/``write``/``fsync``/``close``/``replace``/
``unlink``/``fsync_dir`` the operation issues, in order.  Then, for every
site and every crash model, it re-runs the operation from a fresh world
with the process killed exactly there:

* ``kill`` — the call never applies (SIGKILL just before the syscall);
* ``torn`` — the call was a ``write`` and only a seeded prefix landed;
* ``power`` — as ``kill``, then :meth:`ChaosFS.apply_crash_loss` rewrites
  the tree to what the *platter* held: contents roll back to the last
  fsync, renames/creates whose parent directory was never fsynced are
  undone.  This is the model that turns a missing directory fsync from a
  theoretical nit into a red drill.

After each simulated crash the operation's ``check`` runs against the real
filesystem — the restarted process's view — and asserts the fleet-layer
invariants:

1. **No corrupted entry is served.**  Store lookups and snapshot recovery
   return valid data or nothing; torn bytes are quarantined, never loaded.
2. **No acknowledged result is lost.**  Anything the crashed process
   confirmed to a peer (a published entry, a retired queue item, a
   returned ledger append) survives the crash in every model.
3. **Stale leases are reclaimed exactly once.**  However the reclaim dies,
   at most one live lease per digest ever exists and a later worker can
   always make progress.
4. **Quarantine preserves evidence.**  Every path recovery quarantined
   still exists for forensics.
5. **Recovery converges.**  Re-driving the operation after restart lands
   the world in the never-crashed state — same store fingerprint, same
   queue emptiness, same snapshot generations.

``explore()`` takes custom operations, so the harness can also *prove its
own teeth*: hand it a deliberately broken write path (no rename, no dir
fsync) and it must come back red (``tests/chaos/test_explorer.py`` does).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.chaos.fs import ChaosFS, ChaosPlan, OpRecord, SimulatedCrash
from repro.harness.campaign import CampaignCell, CampaignLedger, execute_cell
from repro.harness.runner import RunResult
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    MachineSnapshot,
    RunnerSnapshot,
    recover_snapshot,
    write_snapshot,
)
from repro.store.dispatch import WorkQueue
from repro.store.store import ResultStore, cell_digest

__all__ = [
    "CRASH_MODES",
    "ChaosOperation",
    "ExplorationReport",
    "FleetHarness",
    "OperationReport",
    "TrialTiming",
    "Violation",
    "explore",
    "standard_operations",
]

#: The crash models every site is explored under.
CRASH_MODES = ("kill", "torn", "power")


# ----------------------------------------------------------------------
# Harness: one trial's world
# ----------------------------------------------------------------------


class FleetHarness:
    """One trial's private world: a root directory plus facade-aware handles.

    ``fs`` is swapped by the explorer — ``None`` (the real filesystem) for
    ``setup`` and ``check``, a :class:`ChaosFS` for ``run`` — so operation
    code just asks the harness for its store/queue/ledger and never knows
    which phase it is in.  ``notes`` is the ``run``-to-``check`` channel:
    an operation records there what it *acknowledged* before the crash, and
    the check holds it to that.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.fs: Optional[ChaosFS] = None
        self.notes: Dict[str, object] = {}

    def store(self) -> ResultStore:
        return ResultStore(os.path.join(self.root, "store"), fs=self.fs)

    def queue(self, **kwargs) -> WorkQueue:
        return WorkQueue(os.path.join(self.root, "queue"), fs=self.fs, **kwargs)

    def ledger_path(self) -> str:
        return os.path.join(self.root, "campaign.jsonl")

    def snapshot_path(self) -> str:
        return os.path.join(self.root, "cell.ckpt")


@dataclass
class ChaosOperation:
    """One crash-explorable fleet operation.

    ``setup`` builds the pre-crash world (real fs), ``run`` performs the
    operation under whatever facade the harness carries, and ``check``
    (real fs, post-restart) returns invariant violations — an empty list
    means the crash was survived correctly.
    """

    name: str
    setup: Callable[[FleetHarness], None]
    run: Callable[[FleetHarness], None]
    check: Callable[[FleetHarness], List[str]]


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class Violation:
    """One invariant broken by one crash trial."""

    op: str
    site: int
    site_op: str
    site_path: str
    mode: str
    message: str

    def render(self) -> str:
        return (
            f"[{self.op}] crash@{self.site} ({self.site_op} "
            f"{os.path.basename(self.site_path) or self.site_path}, "
            f"mode={self.mode}): {self.message}"
        )


@dataclass
class TrialTiming:
    """Wall-clock cost of one crash trial (setup + run + check)."""

    op: str
    site: int
    site_op: str
    site_path: str
    mode: str
    seconds: float

    def render(self) -> str:
        where = (
            "golden pass"
            if self.site < 0
            else (
                f"crash@{self.site} ({self.site_op} "
                f"{os.path.basename(self.site_path) or self.site_path}, "
                f"mode={self.mode})"
            )
        )
        return f"{self.seconds:8.3f}s  [{self.op}] {where}"


@dataclass
class OperationReport:
    """Every trial outcome for one operation."""

    name: str
    sites: List[OpRecord] = field(default_factory=list)
    trials: int = 0
    crashes: int = 0
    violations: List[Violation] = field(default_factory=list)
    timings: List[TrialTiming] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def trial_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)


@dataclass
class ExplorationReport:
    """The full drill result: per-operation reports plus a verdict."""

    operations: List[OperationReport] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(op.ok for op in self.operations)

    @property
    def violations(self) -> List[Violation]:
        return [v for op in self.operations for v in op.violations]

    def slowest(self, n: int = 5) -> List[TrialTiming]:
        """The ``n`` most expensive crash-point trials, slowest first."""
        timings = [t for op in self.operations for t in op.timings]
        return sorted(timings, key=lambda t: -t.seconds)[:n]

    def render(self) -> str:
        lines = []
        for op in self.operations:
            status = "ok" if op.ok else f"{len(op.violations)} VIOLATION(S)"
            lines.append(
                f"{op.name:16s} {len(op.sites):3d} sites, "
                f"{op.trials:3d} trials, {op.crashes:3d} crashes: "
                f"{status} ({op.trial_seconds:.1f}s)"
            )
            for v in op.violations:
                lines.append(f"  !! {v.render()}")
        slowest = self.slowest()
        if slowest:
            lines.append("slowest crash-point trials:")
            for timing in slowest:
                lines.append(f"  {timing.render()}")
        verdict = "DRILL PASSED" if self.ok else "DRILL FAILED"
        lines.append(f"{verdict} ({self.elapsed:.1f}s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The walk
# ----------------------------------------------------------------------


def _run_trial(
    op: ChaosOperation,
    trial_root: str,
    plan: ChaosPlan,
) -> "tuple[FleetHarness, ChaosFS, bool]":
    """One world, one run under ``plan``; returns (harness, shim, crashed)."""
    os.makedirs(trial_root, exist_ok=True)
    harness = FleetHarness(trial_root)
    op.setup(harness)
    chaos = ChaosFS(plan)
    harness.fs = chaos
    crashed = False
    try:
        op.run(harness)
    except SimulatedCrash:
        crashed = True
    finally:
        chaos.close_leaked()
        harness.fs = None
    return harness, chaos, crashed


def explore(
    operations: Optional[Sequence[ChaosOperation]] = None,
    root: Optional[str] = None,
    modes: Sequence[str] = CRASH_MODES,
    progress: Optional[Callable[[str], None]] = None,
) -> ExplorationReport:
    """Walk every crash point of every operation; returns the full report.

    The golden pass (no faults) both enumerates each operation's mutation
    sites and verifies its invariants hold *without* a crash — an operation
    whose check fails even uncrashed is reported at site ``-1`` so a broken
    check can never masquerade as a passing drill.
    """
    operations = list(operations) if operations is not None else standard_operations()
    report = ExplorationReport()
    started = time.monotonic()
    tmp = None
    if root is None:
        tmp = tempfile.mkdtemp(prefix="repro-chaos-")
        root = tmp

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    try:
        for op in operations:
            op_report = OperationReport(name=op.name)
            report.operations.append(op_report)

            # Golden pass: enumerate sites, check the uncrashed invariants.
            golden_root = os.path.join(root, op.name, "golden")
            trial_started = time.monotonic()
            harness, probe, crashed = _run_trial(op, golden_root, ChaosPlan())
            op_report.sites = probe.mutation_sites()
            for message in op.check(harness):
                op_report.violations.append(
                    Violation(
                        op=op.name,
                        site=-1,
                        site_op="none",
                        site_path="",
                        mode="golden",
                        message=message,
                    )
                )
            op_report.timings.append(
                TrialTiming(
                    op=op.name,
                    site=-1,
                    site_op="none",
                    site_path="",
                    mode="golden",
                    seconds=time.monotonic() - trial_started,
                )
            )
            note(f"{op.name}: {len(op_report.sites)} mutation sites")

            for site in op_report.sites:
                for mode in modes:
                    if mode == "torn" and site.op != "write":
                        continue  # tearing only makes sense mid-write
                    trial_root = os.path.join(
                        root, op.name, f"site{site.index}-{mode}"
                    )
                    plan = ChaosPlan(
                        crash_at=site.index, crash_torn=(mode == "torn")
                    )
                    trial_started = time.monotonic()
                    harness, chaos, crashed = _run_trial(op, trial_root, plan)
                    if mode == "power":
                        chaos.apply_crash_loss()
                    op_report.trials += 1
                    op_report.crashes += int(crashed)
                    for message in op.check(harness):
                        op_report.violations.append(
                            Violation(
                                op=op.name,
                                site=site.index,
                                site_op=site.op,
                                site_path=site.path,
                                mode=mode,
                                message=message,
                            )
                        )
                    op_report.timings.append(
                        TrialTiming(
                            op=op.name,
                            site=site.index,
                            site_op=site.op,
                            site_path=site.path,
                            mode=mode,
                            seconds=time.monotonic() - trial_started,
                        )
                    )
                    shutil.rmtree(trial_root, ignore_errors=True)
            status = "ok" if op_report.ok else "FAILED"
            note(
                f"{op.name}: {op_report.trials} trials, "
                f"{op_report.crashes} crashes, {status}"
            )
    finally:
        report.elapsed = time.monotonic() - started
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
    return report


# ----------------------------------------------------------------------
# The standard operation set
# ----------------------------------------------------------------------

#: Cell every drill operation publishes: small enough to simulate once in
#: well under a second, real enough to exercise the full entry format.
_DRILL_CELL = dict(benchmark="wc", design_point="HEAVYWT", trip_count=48)

_GOLDEN: Dict[str, object] = {}


def _golden() -> "tuple[CampaignCell, RunResult, str]":
    """The drill cell, its (once-simulated) result, and its fingerprint."""
    if "cell" not in _GOLDEN:
        cell = CampaignCell(**_DRILL_CELL)
        outcome = execute_cell(cell)
        if not isinstance(outcome, RunResult):
            raise RuntimeError(f"drill cell failed to simulate: {outcome!r}")
        _GOLDEN["cell"] = cell
        _GOLDEN["result"] = outcome
        _GOLDEN["fp"] = outcome.fingerprint()
    return _GOLDEN["cell"], _GOLDEN["result"], _GOLDEN["fp"]


def _check_store_state(
    harness: FleetHarness, require_entry: bool
) -> List[str]:
    """Shared store invariants: nothing corrupt served, evidence kept,
    retried publication converges on the golden fingerprint."""
    cell, result, fp = _golden()
    digest = cell_digest(cell)
    store = harness.store()
    violations: List[str] = []

    entry = store.get(digest)  # quarantines (never serves) corruption
    if entry is not None and entry.fingerprint != fp:
        violations.append(
            f"served fingerprint {entry.fingerprint} != golden {fp}"
        )
    if require_entry and entry is None:
        violations.append("acknowledged result lost: entry absent after restart")

    audit = store.verify()
    for path in audit["quarantined"]:
        if not os.path.exists(path):
            violations.append(f"quarantine evidence vanished: {path}")
    if audit["entries"] != audit["valid"]:
        violations.append(
            f"store verify left {audit['entries'] - audit['valid']} "
            "invalid entr(ies) in place"
        )

    # Convergence: a restarted worker retries the publish; the world must
    # end bit-identical to the never-crashed run.
    store.gc()
    entry, _created = store.put(cell, result, provenance={"campaign": "chaos"})
    if entry.fingerprint != fp:
        violations.append(
            f"recovered publish fingerprint {entry.fingerprint} != golden {fp}"
        )
    final = store.get(digest)
    if final is None or final.fingerprint != fp:
        violations.append("store did not converge to the golden entry")
    return violations


def _active_leases(harness: FleetHarness) -> List[str]:
    leases_dir = os.path.join(harness.root, "queue", "leases")
    if not os.path.isdir(leases_dir):
        return []
    return sorted(n for n in os.listdir(leases_dir) if n.endswith(".lease"))


def _recovery_queue(harness: FleetHarness, skew: float = 120.0) -> WorkQueue:
    """The restarted worker's queue view, with the clock pushed past the
    TTL so the dead worker's lease is immediately stale (a real fleet gets
    the same effect by waiting out ``lease_ttl``)."""
    return harness.queue(clock=lambda: time.time() + skew)


# -- store-publish ------------------------------------------------------


def _publish_setup(harness: FleetHarness) -> None:
    _golden()


def _publish_run(harness: FleetHarness) -> None:
    cell, result, _fp = _golden()
    harness.store().put(cell, result, provenance={"campaign": "chaos"})


def _publish_check(harness: FleetHarness) -> List[str]:
    # Nothing was acknowledged (the crash predates put() returning), so
    # the entry may be absent — it must never be corrupt, and the retry
    # must converge.
    return _check_store_state(harness, require_entry=False)


# -- worker-commit ------------------------------------------------------


def _commit_setup(harness: FleetHarness) -> None:
    cell, _result, _fp = _golden()
    queue = harness.queue()
    queue.enqueue(cell)
    harness.notes["lease"] = queue.claim("w-crash")


def _commit_run(harness: FleetHarness) -> None:
    cell, result, _fp = _golden()
    harness.store().put(cell, result, provenance={"campaign": "chaos"})
    harness.queue().complete(harness.notes["lease"])
    harness.notes["acked"] = True


def _commit_check(harness: FleetHarness) -> List[str]:
    cell, result, fp = _golden()
    digest = cell_digest(cell)
    violations: List[str] = []
    pending_path = os.path.join(
        harness.root, "queue", "pending", digest + ".json"
    )
    store = harness.store()

    # THE acknowledged-result invariant: once the queue no longer remembers
    # the cell, the store must hold its result — a crash (or power loss
    # reverting an un-fsynced rename) may never retire the queue entry
    # while losing the published entry.
    if not os.path.exists(pending_path) and store.get(digest) is None:
        violations.append(
            "queue entry retired but published result lost — "
            "commit ordering broken"
        )
    if harness.notes.get("acked") and store.get(digest) is None:
        violations.append("acknowledged commit lost its store entry")

    # Convergence: the restarted worker reclaims and finishes the cell.
    queue = _recovery_queue(harness)
    if os.path.exists(pending_path):
        lease = queue.claim("w-recover")
        if lease is None:
            violations.append("pending cell unclaimable after crash")
        else:
            if not store.contains(digest):
                store.put(cell, result, provenance={"campaign": "chaos"})
            queue.complete(lease)
    violations.extend(_check_store_state(harness, require_entry=True))
    if os.path.exists(pending_path):
        violations.append("queue entry still pending after recovery")
    return violations


# -- lease-claim --------------------------------------------------------


def _claim_setup(harness: FleetHarness) -> None:
    cell, _result, _fp = _golden()
    harness.queue().enqueue(cell)


def _claim_run(harness: FleetHarness) -> None:
    harness.queue().claim("w-crash")


def _claim_check(harness: FleetHarness) -> List[str]:
    cell, _result, _fp = _golden()
    digest = cell_digest(cell)
    violations: List[str] = []
    if len(_active_leases(harness)) > 1:
        violations.append(f"multiple live leases: {_active_leases(harness)}")
    pending_path = os.path.join(
        harness.root, "queue", "pending", digest + ".json"
    )
    if not os.path.exists(pending_path):
        violations.append("claim crash lost the pending entry")
    lease = _recovery_queue(harness).claim("w-recover")
    if lease is None:
        violations.append("cell unclaimable after claim crash")
    elif lease.digest != digest:
        violations.append(f"recovered claim got wrong digest {lease.digest}")
    if len(_active_leases(harness)) != 1:
        violations.append(
            f"expected exactly one live lease after recovery, "
            f"got {_active_leases(harness)}"
        )
    return violations


# -- lease-reclaim ------------------------------------------------------


def _reclaim_setup(harness: FleetHarness) -> None:
    cell, _result, _fp = _golden()
    queue = harness.queue()
    queue.enqueue(cell)
    # A worker that died long ago: its lease's heartbeat is TTL-stale the
    # moment anyone looks (written with a rewound clock).
    dead = harness.queue(clock=lambda: time.time() - 3600.0)
    dead.claim("w-dead")


def _reclaim_run(harness: FleetHarness) -> None:
    harness.queue().claim("w-crash")  # breaks the stale lease, then claims


def _reclaim_check(harness: FleetHarness) -> List[str]:
    cell, _result, _fp = _golden()
    digest = cell_digest(cell)
    violations: List[str] = []
    # Exactly-once: however the reclaim died, never two live leases.
    if len(_active_leases(harness)) > 1:
        violations.append(
            f"reclaim produced multiple live leases: {_active_leases(harness)}"
        )
    pending_path = os.path.join(
        harness.root, "queue", "pending", digest + ".json"
    )
    if not os.path.exists(pending_path):
        violations.append("reclaim crash lost the pending entry")
    # A second reclaimer (the restarted fleet) must always make progress:
    # either the crashed claim is live-but-stale-later, or claimable now.
    lease = _recovery_queue(harness).claim("w-recover")
    if lease is None:
        violations.append("cell unclaimable after reclaim crash")
    if len(_active_leases(harness)) != 1:
        violations.append(
            f"expected exactly one live lease after recovery, "
            f"got {_active_leases(harness)}"
        )
    return violations


# -- ledger-append ------------------------------------------------------


def _ledger_records() -> List[Dict[str, object]]:
    return [
        {"event": "campaign-start", "n_cells": 2, "seq": 0},
        {"event": "cell-end", "cell": "wc/HEAVYWT", "seq": 1},
        {"event": "campaign-end", "seq": 2},
    ]


def _ledger_setup(harness: FleetHarness) -> None:
    harness.notes["acked"] = 0


def _ledger_run(harness: FleetHarness) -> None:
    ledger = CampaignLedger(harness.ledger_path(), fs=harness.fs).open()
    try:
        for record in _ledger_records():
            ledger.append(record)
            harness.notes["acked"] = int(harness.notes["acked"]) + 1
    finally:
        ledger.close()


def _ledger_check(harness: FleetHarness) -> List[str]:
    violations: List[str] = []
    acked = int(harness.notes.get("acked", 0))
    try:
        records = CampaignLedger.read(harness.ledger_path())
    except FileNotFoundError:
        records = []
    if len(records) < acked:
        violations.append(
            f"ledger lost acknowledged appends: {len(records)} < {acked}"
        )
    expected = _ledger_records()
    for i, record in enumerate(records[: len(expected)]):
        if record != expected[i]:
            violations.append(
                f"ledger record {i} corrupted or reordered: {record!r}"
            )
    if len(records) > len(expected):
        violations.append(f"ledger grew phantom records: {records!r}")
    return violations


# -- snapshot-rotate ----------------------------------------------------


def _drill_snapshot(total_steps: int) -> MachineSnapshot:
    """A tiny synthetic-but-real snapshot (payload is an opaque pickle)."""
    return MachineSnapshot(
        version=CHECKPOINT_VERSION,
        mechanism="hwq",
        program_name="chaos-drill",
        n_threads=1,
        cycle=float(total_steps),
        total_steps=total_steps,
        runners=[
            RunnerSnapshot(
                core_id=0,
                time=float(total_steps),
                done=False,
                steps=total_steps,
                last_progress_step=total_steps,
                last_progress_time=float(total_steps),
            )
        ],
        cursors=[total_steps],
        machine={"blob": b"x" * 64, "steps": total_steps},
    )


def _snapshot_setup(harness: FleetHarness) -> None:
    write_snapshot(harness.snapshot_path(), _drill_snapshot(10))


def _snapshot_run(harness: FleetHarness) -> None:
    write_snapshot(harness.snapshot_path(), _drill_snapshot(20), fs=harness.fs)


def _snapshot_check(harness: FleetHarness) -> List[str]:
    violations: List[str] = []
    recovered = recover_snapshot(harness.snapshot_path())
    if recovered is None:
        violations.append(
            "no snapshot generation recovered (generation 10 existed "
            "before the crash)"
        )
        return violations
    steps = recovered.snapshot.total_steps
    if steps not in (10, 20):
        violations.append(f"recovered impossible generation: steps={steps}")
    for path in recovered.quarantined:
        if not os.path.exists(path):
            violations.append(f"quarantine evidence vanished: {path}")
    return violations


def standard_operations() -> List[ChaosOperation]:
    """The fleet-layer operation set the CI drill walks."""
    return [
        ChaosOperation("store-publish", _publish_setup, _publish_run, _publish_check),
        ChaosOperation("worker-commit", _commit_setup, _commit_run, _commit_check),
        ChaosOperation("lease-claim", _claim_setup, _claim_run, _claim_check),
        ChaosOperation("lease-reclaim", _reclaim_setup, _reclaim_run, _reclaim_check),
        ChaosOperation("ledger-append", _ledger_setup, _ledger_run, _ledger_check),
        ChaosOperation(
            "snapshot-rotate", _snapshot_setup, _snapshot_run, _snapshot_check
        ),
    ]
