"""Split-transaction shared L3 bus model (Table 2).

The baseline bus is 16 bytes wide, 1 CPU cycle per bus cycle, 3-stage
pipelined, split-transaction, with round-robin arbitration.  Figures 10 and 11
of the paper vary the bus-cycle latency (4 CPU cycles) and the width (128
bytes) to study interconnect sensitivity.

Timing model (timestamp-driven):

* A transaction carrying ``payload`` bytes occupies ``ceil(payload/width)``
  bus *beats*; each beat takes ``cycle_latency`` CPU cycles.
* A **pipelined** bus can accept a new transaction as soon as the previous
  transaction's beats have been injected (its stages drain concurrently);
  end-to-end latency adds ``stages`` pipeline cycles.
* A **non-pipelined** bus is held for the entire end-to-end duration of each
  transaction; a new transaction starts only after the previous fully
  completes.  This reproduces Section 3.3's throughput gap.

Arbitration is first-come-first-served on timestamps, which is the
steady-state behaviour of a round-robin arbiter under the (time-ordered)
request streams the co-simulator generates; per-requestor grant counters are
kept so tests can check fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.sim.config import BusConfig
from repro.sim.kernel.timeline import LinearTimeline


@dataclass
class BusTransaction:
    """Result of one bus transaction.

    Attributes:
        request_time: When the requester asked for the bus.
        grant_time: When arbitration granted the bus.
        done_time: When the full transaction (address + payload) completed.
    """

    request_time: float
    grant_time: float
    done_time: float

    @property
    def wait(self) -> float:
        """Arbitration/queueing delay before the grant."""
        return self.grant_time - self.request_time

    @property
    def total(self) -> float:
        """Requester-observed bus latency."""
        return self.done_time - self.request_time


class SharedBus:
    """The shared snoop/L3 bus connecting private L2s, the L3, and memory."""

    #: Payload size used for address-only / control messages (occupies one beat).
    CONTROL_BYTES = 8

    def __init__(
        self,
        config: BusConfig,
        faults: Optional[FaultPlan] = None,
        trace=None,
    ) -> None:
        config.validate()
        self.config = config
        #: Optional fault plan adding arbitration-request jitter (robustness
        #: studies); the bus model itself stays fault-oblivious beyond this.
        self.faults = faults
        #: Optional trace sink; ``None`` keeps ``transfer`` to one branch.
        self.trace = trace
        # Reservation calendar of busy intervals.  A split-transaction bus
        # interleaves unrelated transactions between the address and data
        # phases of an outstanding miss, so a transfer scheduled far in the
        # future (waiting on DRAM) must not block earlier traffic: grants
        # are gap-filled, not appended.  The calendar's *storage* is
        # kernel-swappable (see repro.sim.kernel.timeline): every
        # implementation returns identical grant times, so the swap is
        # invisible to simulated timing.
        self.timeline = LinearTimeline()
        self.transactions = 0
        self.busy_cycles = 0.0
        self.grants_by_requester: Dict[int, int] = {}

    @property
    def beat_cycles(self) -> float:
        """CPU cycles per bus beat."""
        return float(self.config.cycle_latency)

    def occupancy_cycles(self, payload_bytes: int) -> float:
        """CPU cycles of injection occupancy for a payload."""
        beats = self.config.transfer_bus_cycles(payload_bytes)
        return beats * self.beat_cycles

    def end_to_end_cycles(self, payload_bytes: int) -> float:
        """CPU cycles from grant to completion for a payload."""
        beats = self.config.transfer_bus_cycles(payload_bytes)
        return (self.config.stages + beats - 1) * self.beat_cycles

    def transfer(
        self,
        at: float,
        payload_bytes: int,
        requester: int = 0,
        background: bool = False,
    ) -> BusTransaction:
        """Arbitrate for the bus at time ``at`` and move ``payload_bytes``.

        Returns the grant/done times.  The caller charges the observed wait
        and transfer time to its BUS component.

        ``background`` marks a low-priority push (a producer-initiated
        write-forward riding the writeback path).  It queues behind demand
        traffic for its own grant, but consumes only idle bandwidth: no busy
        interval is reserved, so demand transactions never wait behind it.
        The push's cost to its *source* (OzQ entry held, ports churned while
        it waits for the grant) is unaffected — that port-side contention,
        not bus hogging, is what Section 4.4 blames for MEMOPTI's anomaly.
        """
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        requested = at
        if self.faults is not None:
            # Injected jitter delays the arbitration request; the requester
            # observes it as extra BUS wait (request_time stays unjittered).
            at += self.faults.bus_jitter(requester, at)
        end_to_end = self.end_to_end_cycles(payload_bytes)
        if self.config.pipelined:
            # The bus re-opens once the beats are injected.
            hold = self.occupancy_cycles(payload_bytes)
        else:
            hold = end_to_end
        grant = self._reserve(at, hold, reserve=not background)
        done = grant + end_to_end
        self.transactions += 1
        self.busy_cycles += hold
        self.grants_by_requester[requester] = self.grants_by_requester.get(requester, 0) + 1
        if self.trace is not None:
            self.trace.emit(
                "bus.grant",
                grant,
                core=requester,
                dur=hold,
                payload=payload_bytes,
                wait=grant - requested,
            )
        return BusTransaction(request_time=requested, grant_time=grant, done_time=done)

    def _reserve(self, at: float, hold: float, reserve: bool = True) -> float:
        """First-fit gap allocation of ``hold`` cycles starting at ``at``.

        With ``reserve=False`` the gap is found but not claimed (background
        transfers use idle bandwidth without delaying demand traffic).
        """
        return self.timeline.reserve(at, hold, reserve)

    def control_message(self, at: float, requester: int = 0) -> BusTransaction:
        """Send an address-only message (snoop, upgrade, ACK, counter update)."""
        return self.transfer(at, self.CONTROL_BYTES, requester)

    def utilization(self, horizon: float) -> float:
        """Fraction of CPU cycles the bus was occupied, up to ``horizon``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)
