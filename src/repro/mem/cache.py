"""Functional set-associative cache arrays with MESI line state.

These arrays provide the *functional* half of the memory model: presence,
coherence state, LRU replacement, and per-line fill timestamps (a line
installed by a write-forward push at time T is not readable before T).  The
*timing* half (latencies, port and bus contention) lives in
:mod:`repro.mem.hierarchy`.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.sim.config import CacheConfig


class LineState(enum.Enum):
    """MESI coherence states."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """One resident cache line."""

    line_addr: int
    state: LineState
    #: Earliest time the line's data is usable (fills in flight).
    ready_at: float = 0.0
    #: True when the line holds inter-thread queue data (streaming).
    streaming: bool = False

    @property
    def dirty(self) -> bool:
        return self.state is LineState.MODIFIED


class CacheArray:
    """A set-associative, LRU cache directory.

    Addresses are byte addresses; lines are indexed by ``addr // line_bytes``.
    The array never stores data values — the simulator is timing-only — but
    tracks state, fill time and the streaming flag per line.
    """

    def __init__(self, config: CacheConfig, name: str = "") -> None:
        config.validate()
        self.config = config
        self.name = name
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        # Per-set LRU: OrderedDict line_addr -> CacheLine, LRU first.
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def line_addr(self, addr: int) -> int:
        """Line index of a byte address."""
        return addr // self.config.line_bytes

    def _set_for(self, line_addr: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[line_addr % self.n_sets]

    def probe(self, line_addr: int) -> Optional[CacheLine]:
        """Look up a line without updating LRU or counters (snoop path)."""
        return self._set_for(line_addr).get(line_addr)

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Look up a line, updating LRU and hit/miss counters."""
        cset = self._set_for(line_addr)
        line = cset.get(line_addr)
        if line is None or line.state is LineState.INVALID:
            self.misses += 1
            return None
        cset.move_to_end(line_addr)
        self.hits += 1
        return line

    def install(
        self,
        line_addr: int,
        state: LineState,
        ready_at: float = 0.0,
        streaming: bool = False,
    ) -> Optional[CacheLine]:
        """Install (or refresh) a line; returns the victim if one was evicted.

        A returned victim in ``MODIFIED`` state must be written back by the
        caller (the timing model charges the bus for it).
        """
        if state is LineState.INVALID:
            raise ValueError("cannot install an INVALID line")
        cset = self._set_for(line_addr)
        existing = cset.get(line_addr)
        if existing is not None:
            existing.state = state
            existing.ready_at = max(existing.ready_at, ready_at)
            existing.streaming = existing.streaming or streaming
            cset.move_to_end(line_addr)
            return None
        victim = None
        if len(cset) >= self.assoc:
            _, victim = cset.popitem(last=False)
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1
        cset[line_addr] = CacheLine(
            line_addr=line_addr, state=state, ready_at=ready_at, streaming=streaming
        )
        return victim

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Remove a line (snoop invalidation); returns it if it was present."""
        cset = self._set_for(line_addr)
        return cset.pop(line_addr, None)

    def downgrade(self, line_addr: int) -> None:
        """Move a line to SHARED (snoop read hit on M/E)."""
        line = self.probe(line_addr)
        if line is not None:
            line.state = LineState.SHARED

    def set_state(self, line_addr: int, state: LineState) -> None:
        line = self.probe(line_addr)
        if line is None:
            raise KeyError(f"line {line_addr:#x} not resident in {self.name}")
        line.state = state

    def resident_lines(self) -> Iterator[CacheLine]:
        for cset in self._sets:
            yield from cset.values()

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(cset) for cset in self._sets)

    @property
    def capacity_lines(self) -> int:
        return self.n_sets * self.assoc

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
