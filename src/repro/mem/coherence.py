"""MESI snoop protocol transition tables.

The hierarchy (:mod:`repro.mem.hierarchy`) implements the snoop-based
write-invalidate protocol of the baseline machine (Table 2).  This module
captures the protocol itself as data — the local-event and snoop-event
transition tables — so the protocol can be unit- and property-tested
independently of the timing model, and so the hierarchy's behaviour has a
single authoritative specification to be checked against.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple

from repro.mem.cache import LineState


class LocalEvent(enum.Enum):
    """Processor-side events at one cache."""

    READ = "read"
    WRITE = "write"
    EVICT = "evict"


class BusEvent(enum.Enum):
    """Bus transactions observed by snooping caches."""

    BUS_RD = "BusRd"  # another cache reads
    BUS_RDX = "BusRdX"  # another cache reads-for-ownership
    BUS_UPGR = "BusUpgr"  # another cache upgrades S -> M


#: (state, local event) -> (next state, bus transaction generated or None)
LOCAL_TRANSITIONS: Dict[Tuple[LineState, LocalEvent], Tuple[LineState, BusEvent]] = {
    (LineState.INVALID, LocalEvent.READ): (LineState.EXCLUSIVE, BusEvent.BUS_RD),
    (LineState.INVALID, LocalEvent.WRITE): (LineState.MODIFIED, BusEvent.BUS_RDX),
    (LineState.SHARED, LocalEvent.READ): (LineState.SHARED, None),
    (LineState.SHARED, LocalEvent.WRITE): (LineState.MODIFIED, BusEvent.BUS_UPGR),
    (LineState.EXCLUSIVE, LocalEvent.READ): (LineState.EXCLUSIVE, None),
    (LineState.EXCLUSIVE, LocalEvent.WRITE): (LineState.MODIFIED, None),
    (LineState.MODIFIED, LocalEvent.READ): (LineState.MODIFIED, None),
    (LineState.MODIFIED, LocalEvent.WRITE): (LineState.MODIFIED, None),
    (LineState.SHARED, LocalEvent.EVICT): (LineState.INVALID, None),
    (LineState.EXCLUSIVE, LocalEvent.EVICT): (LineState.INVALID, None),
    (LineState.MODIFIED, LocalEvent.EVICT): (LineState.INVALID, None),  # + writeback
}

#: (state, snooped bus event) -> (next state, supplies data?)
SNOOP_TRANSITIONS: Dict[Tuple[LineState, BusEvent], Tuple[LineState, bool]] = {
    (LineState.MODIFIED, BusEvent.BUS_RD): (LineState.SHARED, True),
    (LineState.MODIFIED, BusEvent.BUS_RDX): (LineState.INVALID, True),
    (LineState.EXCLUSIVE, BusEvent.BUS_RD): (LineState.SHARED, True),
    (LineState.EXCLUSIVE, BusEvent.BUS_RDX): (LineState.INVALID, True),
    (LineState.SHARED, BusEvent.BUS_RD): (LineState.SHARED, False),
    (LineState.SHARED, BusEvent.BUS_RDX): (LineState.INVALID, False),
    (LineState.SHARED, BusEvent.BUS_UPGR): (LineState.INVALID, False),
    (LineState.INVALID, BusEvent.BUS_RD): (LineState.INVALID, False),
    (LineState.INVALID, BusEvent.BUS_RDX): (LineState.INVALID, False),
    (LineState.INVALID, BusEvent.BUS_UPGR): (LineState.INVALID, False),
    # Defensive totality: a snooped upgrade cannot occur while we hold E/M
    # under a correct shared wire (the upgrader held S, implying no E/M
    # elsewhere), but real controllers treat it as an invalidation.
    (LineState.EXCLUSIVE, BusEvent.BUS_UPGR): (LineState.INVALID, False),
    (LineState.MODIFIED, BusEvent.BUS_UPGR): (LineState.INVALID, True),
}


def local_transition(state: LineState, event: LocalEvent):
    """Apply a processor-side event; returns (next_state, bus_event|None)."""
    key = (state, event)
    if key not in LOCAL_TRANSITIONS:
        raise KeyError(f"no local transition for {state.value}/{event.value}")
    return LOCAL_TRANSITIONS[key]


def snoop_transition(state: LineState, event: BusEvent):
    """Apply a snooped bus event; returns (next_state, supplies_data)."""
    key = (state, event)
    if key not in SNOOP_TRANSITIONS:
        raise KeyError(f"no snoop transition for {state.value}/{event.value}")
    return SNOOP_TRANSITIONS[key]


def writeback_required(state: LineState, event: LocalEvent) -> bool:
    """Does this local event trigger a writeback to the next level?"""
    return state is LineState.MODIFIED and event is LocalEvent.EVICT
