"""OzQ — the L2 controller's ordered queue of outstanding transactions.

The Itanium 2's L2 controller keeps outstanding transactions in the OzQ,
whose entries double as miss-status holding registers.  Two behaviours of
this structure drive the paper's analysis:

* **Backpressure**: when the OzQ is full, new memory operations cannot leave
  the main pipe; the stall surfaces in the PreL2 component.  SYNCOPTI produce
  instructions sit *dormant* in one OzQ slot until their queue-occupancy
  check passes, commonly filling the OzQ on queue-full conditions.
* **Recirculation**: entries that cannot complete (spinning flag loads,
  fenced stores, write-forward pushes waiting for ports) re-arbitrate for L2
  ports every few cycles, churning port bandwidth.  This is why MEMOPTI can
  lose to EXISTING (Section 4.4): recirculating write-forwards occupy ports
  that external writeback requests would otherwise use.

The model exposes entry occupancy (a :class:`UnitPool` of ``depth`` entries)
and an L2 port pool shared by demand accesses and recirculating entries.
"""

from __future__ import annotations

from repro.sim.resources import UnitPool


class OzQ:
    """Bounded outstanding-transaction queue with recirculation accounting."""

    def __init__(self, depth: int, l2_ports: int, recirculation_interval: int) -> None:
        if depth <= 0:
            raise ValueError("OzQ depth must be positive")
        if recirculation_interval <= 0:
            raise ValueError("recirculation interval must be positive")
        self.depth = depth
        self.recirculation_interval = recirculation_interval
        self._entries = UnitPool(depth, name="ozq-entries")
        self.ports = UnitPool(l2_ports, name="l2-ports")
        self.backpressure_events = 0
        self.backpressure_cycles = 0.0
        self.recirculations = 0

    def allocate(self, at: float, hold: float) -> float:
        """Allocate an OzQ entry at ``at``, holding it for ``hold`` cycles.

        Returns the allocation time; if the queue was full the allocation is
        delayed and the delay counted as backpressure.
        """
        grant = self._entries.acquire(at, busy=hold)
        if grant > at:
            self.backpressure_events += 1
            self.backpressure_cycles += grant - at
        return grant

    def begin_entry(self, at: float) -> float:
        """Two-phase entry allocation (service time known only afterwards)."""
        grant = self._entries.begin(at)
        if grant > at:
            self.backpressure_events += 1
            self.backpressure_cycles += grant - at
        return grant

    def end_entry(self, grant: float, free_at: float) -> None:
        """Release an entry claimed with :meth:`begin_entry`."""
        self._entries.end(grant, free_at)

    def acquire_port(self, at: float, busy: float = 1.0) -> float:
        """Arbitrate for an L2 port (demand access path)."""
        return self.ports.acquire(at, busy=busy)

    def recirculate(self, start: float, until: float, busy: float = 1.0) -> int:
        """Model an entry recirculating from ``start`` until ``until``.

        Each recirculation attempt occupies an L2 port for ``busy`` cycles.
        Returns the number of attempts made (0 when the window is empty).
        """
        if until <= start:
            return 0
        attempts = int((until - start) // self.recirculation_interval)
        t = start
        for _ in range(attempts):
            self.ports.acquire(t, busy=busy)
            t += self.recirculation_interval
        self.recirculations += attempts
        return attempts

    def entry_wait(self, at: float) -> float:
        """How long a new entry arriving at ``at`` would wait (no booking)."""
        return max(0.0, self._entries.earliest_grant(at) - at)
