"""Main-memory (DRAM) timing model.

The paper's baseline charges 141 cycles for main memory (Table 2).  We model
a small number of banks so that memory-intensive workloads (181.mcf,
183.equake) see queueing under load — the effect that makes them sensitive
to bus/memory pressure in the Figure 10 sensitivity study.
"""

from __future__ import annotations

from repro.sim.resources import UnitPool


class MainMemory:
    """Fixed-latency DRAM with per-bank occupancy."""

    def __init__(self, latency: int, n_banks: int = 8, bank_busy: int = 24) -> None:
        if latency <= 0:
            raise ValueError("memory latency must be positive")
        if n_banks <= 0:
            raise ValueError("need at least one bank")
        self.latency = latency
        self.n_banks = n_banks
        self.bank_busy = bank_busy
        self._banks = [UnitPool(1, name=f"bank{i}") for i in range(n_banks)]
        self.accesses = 0

    def access(self, line_addr: int, at: float) -> float:
        """Start a line fetch at ``at``; returns the data-ready time."""
        self.accesses += 1
        bank = self._banks[line_addr % self.n_banks]
        grant = bank.acquire(at, busy=float(self.bank_busy))
        return grant + self.latency

    def queueing_delay(self, line_addr: int, at: float) -> float:
        """How long a request arriving now would wait for its bank."""
        bank = self._banks[line_addr % self.n_banks]
        return max(0.0, bank.earliest_grant(at) - at)
