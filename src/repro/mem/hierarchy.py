"""The CMP memory hierarchy: private L1/L2, shared snoop bus, shared L3, DRAM.

This module is the timing+functional orchestrator.  Every demand access walks
the same path the paper's baseline machine implements:

``core → L1D (write-through) → private L2 (write-back, OzQ) → shared
split-transaction bus (snoop write-invalidate) → {remote L2 cache-to-cache |
shared L3 | main memory}``

Each access returns an :class:`AccessResult` carrying the completion time and
a :class:`~repro.sim.stats.LatencyBreakdown` that the core model uses to
attribute exposed stall cycles to the L2/BUS/L3/MEM components of the paper's
figures.

The hierarchy also implements the producer-initiated **write-forwarding**
primitive used by MEMOPTI and SYNCOPTI (Section 3.5.1): pushing a finished
queue line from the producer's L2 into the consumer's L2 (never into L1), and
the small control messages (occupancy ACKs, upgrades) those designs put on
the bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.queue_model import queue_of_addr
from repro.mem.bus import SharedBus
from repro.mem.cache import CacheArray, LineState
from repro.mem.memory import MainMemory
from repro.mem.ozq import OzQ
from repro.sim.config import MachineConfig
from repro.sim.stats import LatencyBreakdown


@dataclass
class AccessResult:
    """Outcome of one memory access.

    Attributes:
        complete: Time the requested data is available to the core (loads) or
            the store is globally visible (stores).
        breakdown: Component attribution of the access latency.
        level: Where the access was satisfied: "L1", "L2", "remote-L2",
            "L3", or "MEM".
        prel2_wait: OzQ backpressure delay suffered before entering the L2,
            charged to the PreL2 component by the core.
        ordered: Time the access is *ordered* at the L2 controller.  Memory
            fences wait for ordering, not global visibility: a store is
            ordered once the L2 accepts it, even while its ownership request
            is still in flight (same-line flag/data pairs are ordered by the
            single RFO that acquires the line).
    """

    complete: float
    breakdown: LatencyBreakdown
    level: str
    prel2_wait: float = 0.0
    ordered: float = 0.0

    def __post_init__(self) -> None:
        if self.ordered <= 0.0:
            self.ordered = self.complete


class MemorySystem:
    """Snoop-coherent two-level private + shared-L3 memory system."""

    def __init__(self, config: MachineConfig, trace=None) -> None:
        config.validate()
        self.config = config
        self.n_cores = config.n_cores
        self.l1d: List[CacheArray] = [
            CacheArray(config.l1d, name=f"L1D{c}") for c in range(self.n_cores)
        ]
        self.l2: List[CacheArray] = [
            CacheArray(config.l2, name=f"L2-{c}") for c in range(self.n_cores)
        ]
        self.l3 = CacheArray(config.l3, name="L3")
        #: The shared fault plan (None = happy path); hooks below and in the
        #: bus consult it so the mechanisms themselves stay fault-oblivious.
        self.faults = config.faults
        #: Optional trace sink shared with the owning machine; ``None`` keeps
        #: every hierarchy hook to a single branch (zero-overhead contract).
        self.trace = trace
        self.bus = SharedBus(config.bus, faults=config.faults, trace=trace)
        self.ozq: List[OzQ] = [
            OzQ(config.ozq_depth, config.l2_ports, config.recirculation_interval)
            for _ in range(self.n_cores)
        ]
        self.dram = MainMemory(config.main_memory_latency)
        #: Callback fired when a streaming line is evicted from an L2
        #: (SYNCOPTI uses this to flush occupancy counts onto the bus).
        self.on_streaming_eviction: Optional[Callable[[int, int, float], None]] = None
        # Counters used by tests and the experiment reports.
        self.loads = 0
        self.stores = 0
        self.forwards = 0
        self.dropped_forwards = 0
        self.cache_to_cache_transfers = 0
        self.upgrades = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def l2_line(self, addr: int) -> int:
        return addr // self.config.l2.line_bytes

    def _l1_lines_of_l2_line(self, l2_line: int) -> range:
        ratio = self.config.l2.line_bytes // self.config.l1d.line_bytes
        base = l2_line * ratio
        return range(base, base + ratio)

    def _invalidate_l1(self, core: int, l2_line: int) -> None:
        for l1_line in self._l1_lines_of_l2_line(l2_line):
            self.l1d[core].invalidate(l1_line)

    # ------------------------------------------------------------------
    # Demand loads
    # ------------------------------------------------------------------

    def load(self, core: int, addr: int, at: float, streaming: bool = False) -> AccessResult:
        """Service a demand load issued by ``core`` at time ``at``."""
        self.loads += 1
        l1 = self.l1d[core]
        l1_line = l1.line_addr(addr)
        hit = l1.lookup(l1_line)
        if hit is not None and hit.ready_at <= at:
            lat = self.config.l1d.latency
            return AccessResult(
                complete=at + lat,
                breakdown=LatencyBreakdown(total=lat),
                level="L1",
            )
        return self._l2_load(core, addr, at, streaming=streaming, fill_l1=not streaming)

    def _l2_load(
        self, core: int, addr: int, at: float, streaming: bool, fill_l1: bool
    ) -> AccessResult:
        """L2-and-below load path (also used by produce/consume accesses)."""
        ozq = self.ozq[core]
        line = self.l2_line(addr)
        l1_lat = self.config.l1d.latency  # L1 miss detection
        port_req = at + l1_lat
        port = ozq.acquire_port(port_req, busy=1.0)
        port_wait = port - port_req
        l2_done = port + self.config.l2.latency
        cached = self.l2[core].lookup(line)
        if cached is not None:
            # Hit — possibly on a line whose fill (write-forward) is in flight.
            ready = max(l2_done, cached.ready_at + self.config.l2.latency)
            pending_fill = max(0.0, ready - l2_done)
            if fill_l1:
                self.l1d[core].install(self.l1d[core].line_addr(addr), LineState.SHARED)
            total = ready - at
            if self.trace is not None:
                self.trace.emit(
                    "mem.access", at, core=core, dur=total, addr=addr, level="L2", op="load"
                )
            return AccessResult(
                complete=ready,
                breakdown=LatencyBreakdown(
                    total=int(total),
                    l2=int(self.config.l2.latency + port_wait),
                    bus=int(pending_fill),
                ),
                level="L2",
            )
        # L2 miss: allocate an OzQ entry for the duration of the service.
        entry_req = port  # entry claimed once the miss is detected
        entry = ozq.begin_entry(entry_req)
        prel2_wait = entry - entry_req
        t = entry + self.config.l2.latency  # tag check / miss detect
        complete, bd, level = self._miss_service(core, line, t, rfo=False, streaming=streaming)
        ozq.end_entry(entry, complete)
        if fill_l1:
            self.l1d[core].install(self.l1d[core].line_addr(addr), LineState.SHARED)
        bd.l2 += int(self.config.l2.latency + port_wait)
        bd.prel2 += int(prel2_wait)
        bd.total = int(complete - at)
        if self.trace is not None:
            self.trace.emit(
                "mem.access", at, core=core, dur=complete - at, addr=addr, level=level, op="load"
            )
        return AccessResult(complete=complete, breakdown=bd, level=level, prel2_wait=prel2_wait)

    # ------------------------------------------------------------------
    # Demand stores
    # ------------------------------------------------------------------

    def store(self, core: int, addr: int, at: float, streaming: bool = False) -> AccessResult:
        """Service a store; completion is global visibility (M state + write).

        L1 is write-through/write-no-allocate, so every store takes an L2
        port.  The core treats stores as non-blocking unless a fence or a
        flag-visibility dependence exposes the completion time.
        """
        self.stores += 1
        ozq = self.ozq[core]
        line = self.l2_line(addr)
        port_req = at + self.config.l1d.latency
        port = ozq.acquire_port(port_req, busy=1.0)
        port_wait = port - port_req
        cached = self.l2[core].lookup(line)
        if cached is not None and cached.state in (LineState.MODIFIED, LineState.EXCLUSIVE):
            cached.state = LineState.MODIFIED
            cached.streaming = cached.streaming or streaming
            complete = max(port + self.config.l2.latency, cached.ready_at)
            self._l1_write_update(core, addr)
            if self.trace is not None:
                self.trace.emit(
                    "mem.access", at, core=core, dur=complete - at, addr=addr, level="L2", op="store"
                )
            return AccessResult(
                complete=complete,
                breakdown=LatencyBreakdown(
                    total=int(complete - at), l2=int(self.config.l2.latency + port_wait)
                ),
                level="L2",
            )
        if cached is not None and cached.state is LineState.SHARED:
            # Upgrade: invalidate remote sharers with a control message.
            self.upgrades += 1
            tx = self.bus.control_message(port + self.config.l2.latency, requester=core)
            self._invalidate_remote(core, line)
            cached.state = LineState.MODIFIED
            cached.streaming = cached.streaming or streaming
            complete = tx.done_time
            self._l1_write_update(core, addr)
            if self.trace is not None:
                self.trace.emit(
                    "mem.access", at, core=core, dur=complete - at,
                    addr=addr, level="upgrade", op="store",
                )
            return AccessResult(
                complete=complete,
                breakdown=LatencyBreakdown(
                    total=int(complete - at),
                    l2=int(self.config.l2.latency + port_wait),
                    bus=int(tx.total),
                ),
                level="L2",
                ordered=port + self.config.l2.latency,
            )
        # Store miss: read-for-ownership.
        entry_req = port
        entry = ozq.begin_entry(entry_req)
        prel2_wait = entry - entry_req
        t = entry + self.config.l2.latency
        complete, bd, level = self._miss_service(core, line, t, rfo=True, streaming=streaming)
        ozq.end_entry(entry, complete)
        self._l1_write_update(core, addr)
        bd.l2 += int(self.config.l2.latency + port_wait)
        bd.prel2 += int(prel2_wait)
        bd.total = int(complete - at)
        if self.trace is not None:
            self.trace.emit(
                "mem.access", at, core=core, dur=complete - at, addr=addr, level=level, op="store"
            )
        return AccessResult(
            complete=complete,
            breakdown=bd,
            level=level,
            prel2_wait=prel2_wait,
            ordered=entry + self.config.l2.latency,
        )

    def _l1_write_update(self, core: int, addr: int) -> None:
        """Write-through update: refresh L1 only if the line is resident."""
        l1 = self.l1d[core]
        l1_line = l1.line_addr(addr)
        if l1.probe(l1_line) is not None:
            l1.install(l1_line, LineState.SHARED)

    # ------------------------------------------------------------------
    # Miss service via the shared bus
    # ------------------------------------------------------------------

    def _miss_service(
        self, core: int, line: int, at: float, rfo: bool, streaming: bool
    ):
        """Snoop the bus and fetch ``line`` from a remote L2, L3, or memory.

        Returns ``(complete, breakdown, level)``.  The requesting L2's own
        latency contributions are added by the caller.
        """
        line_bytes = self.config.l2.line_bytes
        # Address/snoop phase.
        req = self.bus.control_message(at, requester=core)
        t = req.done_time
        bus_cycles = req.total
        remote = self._find_remote_owner(core, line)
        if remote is not None:
            remote_core, remote_line = remote
            self.cache_to_cache_transfers += 1
            # Remote L2 services the snoop: port + array access, then the
            # line crosses the shared bus (cache-to-cache transfer).
            rport = self.ozq[remote_core].acquire_port(t, busy=1.0)
            ready = max(rport + self.config.l2.latency, remote_line.ready_at)
            data = self.bus.transfer(ready, line_bytes, requester=remote_core)
            complete = data.done_time
            bus_cycles += data.total
            if rfo:
                self.l2[remote_core].invalidate(line)
                self._invalidate_l1(remote_core, line)
            else:
                self.l2[remote_core].downgrade(line)
            # Dirty data also refreshes the shared L3 (writeback-on-transfer).
            self.l3.install(line, LineState.SHARED)
            level = "remote-L2"
            remote_l2_cycles = ready - t
            self._install_l2(
                core, line, rfo, complete, streaming, shared=not rfo
            )
            return complete, LatencyBreakdown(
                total=0, bus=int(bus_cycles), l2=int(remote_l2_cycles)
            ), level
        # Invalidate stale SHARED copies on an RFO even with no owner.
        if rfo:
            self._invalidate_remote(core, line)
        l3_line = self.l3.lookup(line)
        if l3_line is not None and l3_line.ready_at <= t:
            ready = t + self.config.l3.latency
            data = self.bus.transfer(ready, line_bytes, requester=core)
            complete = data.done_time
            bus_cycles += data.total
            self._install_l2(core, line, rfo, complete, streaming, shared=False)
            return complete, LatencyBreakdown(
                total=0, bus=int(bus_cycles), l3=self.config.l3.latency
            ), "L3"
        # Main memory.
        ready = self.dram.access(line, t + self.config.l3.latency)
        data = self.bus.transfer(ready, line_bytes, requester=core)
        complete = data.done_time
        bus_cycles += data.total
        self.l3.install(line, LineState.SHARED)
        self._install_l2(core, line, rfo, complete, streaming, shared=False)
        return complete, LatencyBreakdown(
            total=0,
            bus=int(bus_cycles),
            l3=self.config.l3.latency,
            mem=int(ready - (t + self.config.l3.latency)),
        ), "MEM"

    def _find_remote_owner(self, core: int, line: int):
        """Find a remote L2 holding ``line`` in M or E state."""
        for other in range(self.n_cores):
            if other == core:
                continue
            cached = self.l2[other].probe(line)
            if cached is not None and cached.state in (
                LineState.MODIFIED,
                LineState.EXCLUSIVE,
            ):
                return other, cached
        return None

    def _invalidate_remote(self, core: int, line: int) -> None:
        for other in range(self.n_cores):
            if other == core:
                continue
            if self.l2[other].invalidate(line) is not None:
                self._invalidate_l1(other, line)

    def _install_l2(
        self, core: int, line: int, rfo: bool, ready: float, streaming: bool, shared: bool
    ) -> None:
        if rfo:
            state = LineState.MODIFIED
        else:
            state = LineState.SHARED if shared else LineState.EXCLUSIVE
        victim = self.l2[core].install(line, state, ready_at=ready, streaming=streaming)
        self._handle_victim(core, victim, ready)

    def _handle_victim(self, core: int, victim, at: float) -> None:
        if victim is None:
            return
        self._invalidate_l1(core, victim.line_addr)
        if victim.dirty:
            # Writeback occupies the bus but is off the requester's critical path.
            self.bus.transfer(at, self.config.l2.line_bytes, requester=core)
            self.l3.install(victim.line_addr, LineState.SHARED)
        if victim.streaming and self.on_streaming_eviction is not None:
            self.on_streaming_eviction(core, victim.line_addr, at)

    # ------------------------------------------------------------------
    # Streaming support primitives
    # ------------------------------------------------------------------

    def forward_line(
        self,
        src: int,
        dst: int,
        addr: int,
        at: float,
        release_src: bool = False,
        contend_ports: bool = True,
    ) -> Optional[float]:
        """Producer-initiated write-forward of a full queue line (§3.5.1).

        Pushes the L2 line containing ``addr`` from ``src``'s L2 into
        ``dst``'s L2 (never into L1), returning the arrival time.  The push
        occupies an OzQ entry and L2 ports at the source; while it waits for
        the bus it recirculates, churning source ports — the behaviour that
        makes MEMOPTI lose to EXISTING under port pressure (Section 4.4).

        Fault injection: an active plan may delay the delivery (arrival
        shifts later) or drop it entirely — the push still costs the source
        its OzQ/port/bus time, but nothing is installed at the destination,
        the source keeps ownership, and ``None`` is returned.  Callers treat
        ``None`` as "this line never arrived" and fall back to their demand
        paths (SYNCOPTI's partial-line timeout, MEMOPTI's coherence miss).

        Args:
            release_src: Invalidate the source copy (SYNCOPTI's ownership
                hand-off) instead of downgrading it to SHARED (MEMOPTI).
            contend_ports: Model source-side recirculation while waiting.
        """
        self.forwards += 1
        line = self.l2_line(addr)
        ozq = self.ozq[src]
        entry = ozq.begin_entry(at)
        port = ozq.acquire_port(entry, busy=1.0)
        ready = port + self.config.l2.latency
        # The push rides the writeback path: low bus priority, so it fills
        # idle bandwidth instead of stalling demand traffic — the cost that
        # matters is source-side (OzQ entry + port churn below).
        tx = self.bus.transfer(
            ready, self.config.l2.line_bytes, requester=src, background=True
        )
        if contend_ports and tx.grant_time > ready:
            ozq.recirculate(ready, tx.grant_time)
        arrival = tx.done_time
        ozq.end_entry(entry, arrival)
        if self.faults is not None:
            dropped, delay = self.faults.forward_fault(
                queue_of_addr(addr), src=src, dst=dst, at=at
            )
            if dropped:
                self.dropped_forwards += 1
                if self.trace is not None:
                    self.trace.emit(
                        "fwd.drop", at, core=src,
                        queue=queue_of_addr(addr), dst=dst, line=line,
                    )
                return None
            arrival += delay
        src_line = self.l2[src].probe(line)
        if src_line is not None:
            if release_src:
                self.l2[src].invalidate(line)
                self._invalidate_l1(src, line)
            else:
                src_line.state = LineState.SHARED
        state = LineState.EXCLUSIVE if release_src else LineState.SHARED
        victim = self.l2[dst].install(line, state, ready_at=arrival, streaming=True)
        self._handle_victim(dst, victim, arrival)
        if self.trace is not None:
            self.trace.emit(
                "fwd.line", arrival, core=src,
                queue=queue_of_addr(addr), dst=dst, line=line,
            )
        return arrival

    def holds_line(self, core: int, addr: int) -> bool:
        """Whether ``core``'s L2 has a valid copy of ``addr``'s line.

        Used by the software-queue spin path: a consumer whose L2 already
        holds the line (a write-forward delivered it) observes the flag from
        the local copy instead of demand-refetching across the bus.
        """
        cached = self.l2[core].probe(self.l2_line(addr))
        return cached is not None and cached.state is not LineState.INVALID

    def observe_update(self, core: int, addr: int, at: float) -> float:
        """A spinning core observes a remote write to ``addr``'s line.

        The spin load is an outstanding, recirculating transaction; when the
        other core's flag write lands at ``at``, the refetch completes with a
        line transfer installing the line SHARED at the spinner.  Returns the
        line-arrival time (the flag *value* is observable earlier, via the
        snoop round the caller charges separately).

        If the spinner's L2 already holds a valid copy of the line — a
        write-forward delivered it (§3.5.1) — no demand transfer crosses the
        bus: the update is observed once the (possibly in-flight) local fill
        lands.  This is MEMOPTI's stated consumer-side benefit; without it
        every forward would pay its push *and* a redundant refetch.
        """
        line = self.l2_line(addr)
        cached = self.l2[core].probe(line)
        if cached is not None and cached.state is not LineState.INVALID:
            cached.streaming = True
            return max(at, cached.ready_at)
        tx = self.bus.transfer(at, self.config.l2.line_bytes, requester=core)
        owner = self._find_remote_owner(core, line)
        if owner is not None:
            self.l2[owner[0]].downgrade(line)
        victim = self.l2[core].install(
            line, LineState.SHARED, ready_at=tx.done_time, streaming=True
        )
        self._handle_victim(core, victim, tx.done_time)
        return tx.done_time

    def stream_load(self, core: int, addr: int, at: float) -> AccessResult:
        """L2-direct load used by SYNCOPTI consume instructions.

        Stream accesses bypass the L1 entirely (queue data is never cached
        there) — the consume's stream address logic hands the access straight
        to the L2, where synchronization counters live.
        """
        self.loads += 1
        return self._l2_load(core, addr, at, streaming=True, fill_l1=False)

    def control_ack(self, core: int, at: float) -> float:
        """Small bus message (occupancy-counter update / bulk ACK).

        Fault injection: ACK_DELAY rules push the message's issue time back,
        modeling a slow counter-update path (SYNCOPTI's occupancy ACKs).
        """
        if self.faults is not None:
            at += self.faults.ack_delay(core, at)
        tx = self.bus.control_message(at, requester=core)
        return tx.done_time
