"""Lowering DSWP partitions (and unpartitioned loops) to simulator programs.

The code generator turns a :class:`~repro.dswp.partition.Partition` into a
two-thread :class:`~repro.sim.program.Program`:

* stage-0 ops run on thread 0, stage-1 ops on thread 1, in body order;
* every crossing value gets one architectural queue; the producer thread
  emits a PRODUCE right after the defining op's body position, the consumer
  thread emits the matching CONSUME at the top of its iteration (the DSWP
  convention);
* loop control (induction update + backward branch) is replicated into both
  threads, exactly as DSWP emits it;
* pure streaming loads (no register inputs) are **modulo-scheduled**: each is
  hoisted ``hoist_depth`` iterations ahead using rotating registers, the
  software pipelining an EPIC compiler (the paper's OpenIMPACT/Itanium
  toolchain) applies to overlap cache misses across iterations.  Dependent
  loads (pointer chases, gathers) cannot be hoisted and stay in place.

How PRODUCE/CONSUME macro-ops are *realized* — one instruction or a
ten-instruction software-queue sequence — is the communication mechanism's
business, not the code generator's: the same lowered program runs unchanged
on every design point, which is what makes the paper's comparisons
apples-to-apples.

``lower_single_threaded`` emits the original, unpartitioned loop (with the
same load hoisting) for the Figure 9 speedup baseline.
"""

from __future__ import annotations

from typing import Dict, Iterator, Set

from repro.dswp.ir import Loop, Op, OpKind
from repro.dswp.partition import Partition
from repro.sim import isa
from repro.sim.isa import DynInst
from repro.sim.program import Program, ThreadProgram

#: Register allocated to the loop induction variable in every thread.
INDUCTION_REG = 999

#: Iterations a pure streaming load is hoisted ahead of its first use.
DEFAULT_HOIST_DEPTH = 3

#: Register-id stride per op: leaves room for rotating registers.
_REG_STRIDE = 16


def hoistable_ops(loop: Loop) -> Set[str]:
    """Ops that modulo scheduling can hoist: input-free streaming loads."""
    return {
        op.op_id
        for op in loop.body
        if op.kind is OpKind.LOAD and not op.deps and not op.carried_deps
    }


class _StageEmitter:
    """Emits one thread's dynamic instruction stream for a partitioned loop.

    The emission skeleton (modulo-scheduled hoisting, consumes at the top of
    the iteration, body walk in program order, replicated loop control) is
    shared with the K-stage emitter in :mod:`repro.pipeline.codegen`, which
    overrides only the ``_consumes`` / ``_produces_after`` hooks.  Keeping
    one skeleton is what makes a two-stage pipeline lowered through either
    path instruction-for-instruction identical.
    """

    def __init__(
        self,
        loop: Loop,
        stage_of: Dict[str, int],
        stage: int,
        queue_of: Dict[str, int],
        hoist_depth: int,
    ) -> None:
        self.loop = loop
        self.stage_of = stage_of
        self.stage = stage
        self.queue_of = queue_of
        self.hoist_depth = hoist_depth
        self.base_reg = {op.op_id: i * _REG_STRIDE for i, op in enumerate(loop.body)}
        # Rotation applies only to hoisted loads owned by this thread.
        self.rotated = {
            op_id
            for op_id in hoistable_ops(loop)
            if stage_of[op_id] == stage and hoist_depth > 0
        }
        self.crossing_in = [
            v for v in queue_of if stage_of[v] == 0 and stage == 1
        ]

    def reg(self, op_id: str, iteration: int) -> int:
        base = self.base_reg[op_id]
        if op_id in self.rotated:
            return base + iteration % (self.hoist_depth + 1)
        return base

    def _mine(self, op: Op) -> bool:
        return self.stage_of[op.op_id] == self.stage

    def _lower_op(self, op: Op, iteration: int, addr_stream) -> Iterator[DynInst]:
        dest = self.reg(op.op_id, iteration)
        srcs = tuple(
            self.reg(d, iteration) for d in op.deps + op.carried_deps
        )
        for _ in range(op.repeat):
            if op.kind is OpKind.IALU:
                yield DynInst(isa.InstrKind.IALU, dest=dest, srcs=srcs, tag=op.op_id)
            elif op.kind is OpKind.FALU:
                yield DynInst(isa.InstrKind.FALU, dest=dest, srcs=srcs, tag=op.op_id)
            elif op.kind is OpKind.BRANCH:
                yield DynInst(isa.InstrKind.BRANCH, srcs=srcs, tag=op.op_id)
            elif op.kind is OpKind.LOAD:
                yield DynInst(
                    isa.InstrKind.LOAD,
                    dest=dest,
                    srcs=srcs,
                    addr=next(addr_stream),
                    tag=op.op_id,
                )
            elif op.kind is OpKind.STORE:
                yield DynInst(
                    isa.InstrKind.STORE, srcs=srcs, addr=next(addr_stream), tag=op.op_id
                )
            else:  # pragma: no cover - enum is closed
                raise ValueError(f"unloweable op kind {op.kind}")

    def _consumes(self, iteration: int) -> Iterator[DynInst]:
        """CONSUMEs emitted at the top of one iteration (DSWP convention)."""
        for value in self.crossing_in:
            op = self.loop.op(value)
            for _ in range(op.repeat):
                yield isa.consume(self.reg(value, iteration), self.queue_of[value])

    def _produces_after(self, op: Op, iteration: int) -> Iterator[DynInst]:
        """PRODUCEs emitted right after ``op``'s body position."""
        if (
            self.stage == 0
            and op.op_id in self.queue_of
            and self.stage_of[op.op_id] == 0
        ):
            for _ in range(op.repeat):
                yield isa.produce(self.queue_of[op.op_id], self.reg(op.op_id, iteration))

    def instructions(self) -> Iterator[DynInst]:
        loop = self.loop
        trip = loop.trip_count
        addr_streams = {
            op.op_id: op.addr.stream()
            for op in loop.body
            if op.addr is not None and self._mine(op)
        }
        k = self.hoist_depth
        for i in range(trip):
            # Modulo-scheduling: emit hoisted loads ahead of their iteration.
            if k > 0:
                if i == 0:
                    hoist_targets = range(0, min(k + 1, trip))
                elif i + k < trip:
                    hoist_targets = range(i + k, i + k + 1)
                else:
                    hoist_targets = range(0, 0)
                for target in hoist_targets:
                    for op in loop.body:
                        if op.op_id in self.rotated:
                            yield from self._lower_op(
                                op, target, addr_streams[op.op_id]
                            )
            # DSWP convention: all consumes at the top of the iteration.
            yield from self._consumes(i)
            # Body in program order (hoisted loads already emitted).
            for op in loop.body:
                if self._mine(op) and op.op_id not in self.rotated:
                    yield from self._lower_op(op, i, addr_streams.get(op.op_id))
                yield from self._produces_after(op, i)
            # Replicated loop control.
            yield DynInst(
                isa.InstrKind.IALU, dest=INDUCTION_REG, srcs=(INDUCTION_REG,), tag="ind"
            )
            yield DynInst(isa.InstrKind.BRANCH, srcs=(INDUCTION_REG,), tag="loopbr")


def lower_partition(
    partition: Partition,
    queue_base: int = 0,
    hoist_depth: int = DEFAULT_HOIST_DEPTH,
) -> Program:
    """Emit the two-thread pipelined program for ``partition``."""
    loop = partition.loop
    queue_of = {
        value: queue_base + i for i, value in enumerate(partition.crossing_values)
    }

    def builder(stage: int):
        def build() -> Iterator[DynInst]:
            emitter = _StageEmitter(
                loop, partition.stage_of, stage, queue_of, hoist_depth
            )
            return emitter.instructions()

        return build

    return Program(
        name=f"{loop.name}-dswp",
        threads=[
            ThreadProgram(f"{loop.name}-stage0", builder(0)),
            ThreadProgram(f"{loop.name}-stage1", builder(1)),
        ],
        queue_endpoints={qid: (0, 1) for qid in queue_of.values()},
    )


def lower_single_threaded(
    loop: Loop, hoist_depth: int = DEFAULT_HOIST_DEPTH
) -> Program:
    """Emit the original, unpartitioned loop (Figure 9 baseline)."""
    stage_of = {op.op_id: 0 for op in loop.body}

    def build() -> Iterator[DynInst]:
        emitter = _StageEmitter(loop, stage_of, 0, {}, hoist_depth)
        return emitter.instructions()

    return Program(
        name=f"{loop.name}-single",
        threads=[ThreadProgram(f"{loop.name}-st", build)],
        queue_endpoints={},
    )
