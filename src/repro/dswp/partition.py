"""The DSWP partitioning algorithm (Ottoni et al., MICRO 2005).

Decoupled Software Pipelining splits a loop into pipeline-stage threads such
that all cross-thread dependences flow in one direction.  The algorithm:

1. Build the loop's dependence graph (intra-iteration and loop-carried
   register dependences; the loop back-edge closes recurrences).
2. Compute strongly connected components — each recurrence must live
   entirely within one stage, otherwise a cross-thread dependence cycle
   would serialize the pipeline.
3. Condense to the DAG of SCCs and choose a predecessor-closed cut that
   balances estimated stage weights while penalizing cross-cut values (each
   crossing value costs a produce/consume pair per iteration — COMM-OP
   delay, the quantity the paper's mechanisms fight over).

:func:`partition_loop` produces the two-stage partitions the paper evaluates
(its machine is a dual-core CMP); the cut search is exact over all
topological prefixes.  :class:`Partition` itself is stage-count-agnostic —
``stage_of`` may assign any number of stages as long as every dependence
flows forward — and :func:`repro.pipeline.partition.partition_loop_k`
builds K-stage instances of it for the N-core scalability study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.dswp.graph import DiGraph, condense, topological_order
from repro.dswp.ir import Loop, Op


class PartitionError(ValueError):
    """The loop cannot be split into a non-trivial pipeline."""


#: Condensations at or below this many SCCs get an exact cut search.
_EXHAUSTIVE_SCC_LIMIT = 14


@dataclass(frozen=True)
class Partition:
    """A pipeline-stage DSWP partition of one loop (any stage count).

    Attributes:
        loop: The partitioned loop.
        stage_of: op_id -> stage index; stage 0 feeds stage 1 feeds stage 2
            and so on (the paper's dual-core partitions use stages {0, 1}).
        crossing_values: op_ids whose values cross at least one stage
            boundary, in body order.  The code generator assigns each one
            an architectural queue per boundary it crosses.
    """

    loop: Loop
    stage_of: Dict[str, int]
    crossing_values: Tuple[str, ...]

    @property
    def n_stages(self) -> int:
        """Number of pipeline stages (threads) this partition emits."""
        return 1 + max(self.stage_of.values(), default=0)

    def ops_in_stage(self, stage: int) -> List[Op]:
        return [op for op in self.loop.body if self.stage_of[op.op_id] == stage]

    def stage_weight(self, stage: int) -> float:
        return sum(op.est_weight for op in self.ops_in_stage(stage))

    def comm_ops_per_iteration(self) -> int:
        """Produce/consume pairs executed per loop iteration."""
        return sum(self.loop.op(v).repeat for v in self.crossing_values)

    def validate(self) -> None:
        """Check the DSWP invariant: no backward (stage j -> i, j > i) dependence.

        Any dependence from a later stage back into an earlier one would
        close a cross-thread cycle and serialize the pipeline; the check is
        stage-count-agnostic, so the same invariant covers the paper's
        two-stage partitions and the K-stage partitions of
        :mod:`repro.pipeline`.
        """
        for op in self.loop.body:
            for dep in op.deps + op.carried_deps:
                if self.stage_of[dep] > self.stage_of[op.op_id]:
                    raise PartitionError(
                        f"backward dependence {dep!r} (stage "
                        f"{self.stage_of[dep]}) -> {op.op_id!r} (stage "
                        f"{self.stage_of[op.op_id]})"
                    )


def build_dependence_graph(loop: Loop) -> DiGraph:
    """The loop's register dependence graph, back-edges included."""
    graph = DiGraph()
    for op in loop.body:
        graph.add_node(op.op_id)
    for op in loop.body:
        for dep in op.deps:
            graph.add_edge(dep, op.op_id)
        for dep in op.carried_deps:
            # A loop-carried dependence is an edge from the def to the use
            # *and* closes a cycle when the use (transitively) feeds the def.
            graph.add_edge(dep, op.op_id)
    return graph


def partition_loop(loop: Loop, comm_cost_weight: float = 1.0) -> Partition:
    """Split ``loop`` into a two-stage pipeline.

    Args:
        comm_cost_weight: Estimated cycles charged per crossing value when
            scoring cuts (models per-iteration COMM-OP delay).

    Raises:
        PartitionError: When every op falls into a single SCC (fully
            recurrent loop) or no non-trivial predecessor-closed cut exists.
    """
    graph = build_dependence_graph(loop)
    dag, op_to_scc, sccs = condense(graph)
    if len(sccs) < 2:
        raise PartitionError(
            f"loop {loop.name!r} is a single recurrence; DSWP cannot pipeline it"
        )
    order = topological_order(dag)
    scc_weight = {
        scc_id: sum(loop.op(op_id).est_weight for op_id in members)
        for scc_id, members in enumerate(sccs)
    }
    total = sum(scc_weight.values())

    best_cut, best_score = None, (float("inf"), float("inf"))

    def consider(candidate: Set[int]) -> None:
        nonlocal best_cut, best_score
        weight = sum(scc_weight[s] for s in candidate)
        crossing = _crossing_values(loop, op_to_scc, candidate)
        imbalance = max(weight, total - weight)
        comm = sum(loop.op(v).repeat for v in crossing)
        # Primary: estimated bottleneck stage time + per-iteration COMM-OP
        # cost.  Tie-break: prefer the better-balanced cut (a balanced
        # pipeline tolerates latency variance better).
        score = (imbalance + comm_cost_weight * comm, imbalance)
        if score < best_score:
            best_score = score
            best_cut = frozenset(candidate)

    if len(order) <= _EXHAUSTIVE_SCC_LIMIT:
        # Small condensations (every loop in the suite): enumerate every
        # predecessor-closed proper subset exactly.
        preds = {s: dag.predecessors(s) for s in order}
        for mask in range(1, (1 << len(order)) - 1):
            candidate = {order[i] for i in range(len(order)) if mask >> i & 1}
            if all(preds[s] <= candidate for s in candidate):
                consider(candidate)
    else:
        # Large condensations: every non-empty proper prefix of a
        # topological order is predecessor-closed.
        prefix: Set[int] = set()
        for scc_id in order[:-1]:
            prefix.add(scc_id)
            consider(prefix)
    if best_cut is None:
        raise PartitionError(f"no valid cut for loop {loop.name!r}")

    stage_of = {
        op.op_id: 0 if op_to_scc[op.op_id] in best_cut else 1 for op in loop.body
    }
    crossing = _crossing_values(loop, op_to_scc, set(best_cut))
    partition = Partition(
        loop=loop,
        stage_of=stage_of,
        crossing_values=tuple(
            op.op_id for op in loop.body if op.op_id in crossing
        ),
    )
    partition.validate()
    return partition


def _crossing_values(
    loop: Loop, op_to_scc: Dict[str, int], stage0_sccs: Set[int]
) -> Set[str]:
    """Values defined in stage 0 and used in stage 1 (deduplicated)."""
    crossing: Set[str] = set()
    for op in loop.body:
        if op_to_scc[op.op_id] in stage0_sccs:
            continue
        for dep in op.deps + op.carried_deps:
            if op_to_scc[dep] in stage0_sccs:
                crossing.add(dep)
    return crossing
