"""Loop intermediate representation for the DSWP partitioner.

A :class:`Loop` is a single-level counted loop whose body is a list of
:class:`Op` nodes with explicit intra-iteration and loop-carried dependences
— the view a compiler's program dependence graph gives the DSWP pass.  Ops
carry enough operational detail (kind, latency class, memory address
pattern) for the code generator to lower a partition into the simulator's
dynamic instruction streams.

Memory behaviour is expressed with :class:`AddressPattern` generators rather
than concrete data: the timing simulator only needs byte addresses, and the
patterns (sequential streams, strided array walks, seeded pointer chases)
reproduce the locality/footprint characteristics of the paper's benchmark
loops.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class OpKind(enum.Enum):
    """Operation classes, mirroring the simulator's functional units."""

    IALU = "ialu"
    FALU = "falu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass
class AddressPattern:
    """Base class: a deterministic per-iteration address stream."""

    def stream(self) -> Iterator[int]:
        """Yield one address per dynamic execution of the owning op."""
        raise NotImplementedError


@dataclass
class Sequential(AddressPattern):
    """Streaming walk: ``base + i*stride`` wrapping at ``footprint`` bytes."""

    base: int
    stride: int = 8
    footprint: int = 1 << 20

    def __post_init__(self) -> None:
        if self.stride <= 0 or self.footprint <= 0:
            raise ValueError("stride and footprint must be positive")

    def stream(self) -> Iterator[int]:
        offset = 0
        while True:
            yield self.base + offset
            offset = (offset + self.stride) % self.footprint


@dataclass
class Strided(AddressPattern):
    """Array walk with a gather index: ``base + index[i]*stride``.

    The indices are a seeded pseudo-random permutation walk, standing in for
    the indirection of sparse codes (equake's column indices, art's winner
    search).
    """

    base: int
    stride: int = 8
    n_elements: int = 4096
    seed: int = 7

    def stream(self) -> Iterator[int]:
        rng = random.Random(self.seed)
        while True:
            yield self.base + rng.randrange(self.n_elements) * self.stride


@dataclass
class PointerChase(AddressPattern):
    """Linked-structure traversal over a shuffled node cycle (mcf, wc lists).

    Visits ``n_nodes`` node headers in a fixed pseudo-random cyclic order —
    the access pattern of ``while (ptr = ptr->next)`` over a cold heap.
    """

    base: int
    node_bytes: int = 64
    n_nodes: int = 8192
    seed: int = 11

    def stream(self) -> Iterator[int]:
        order = list(range(self.n_nodes))
        random.Random(self.seed).shuffle(order)
        position = 0
        while True:
            yield self.base + order[position] * self.node_bytes
            position = (position + 1) % self.n_nodes


@dataclass
class Op:
    """One static operation in the loop body.

    Attributes:
        op_id: Unique name within the loop.
        kind: Operation class.
        deps: Intra-iteration dependences: ids of ops (earlier in the body)
            whose values this op reads.
        carried_deps: Loop-carried dependences: ids of ops whose *previous
            iteration* values this op reads (recurrences).
        addr: Address pattern for LOAD/STORE ops.
        repeat: Static unrolling — how many dynamic instances per iteration.
        weight: Estimated cycles per instance (defaults by kind).
    """

    op_id: str
    kind: OpKind
    deps: Tuple[str, ...] = ()
    carried_deps: Tuple[str, ...] = ()
    addr: Optional[AddressPattern] = None
    repeat: int = 1
    weight: Optional[float] = None

    #: Default per-kind weight estimates used for partition balancing.
    DEFAULT_WEIGHTS = {
        OpKind.IALU: 1.0,
        OpKind.FALU: 4.0,
        OpKind.LOAD: 3.0,
        OpKind.STORE: 1.5,
        OpKind.BRANCH: 1.0,
    }

    def __post_init__(self) -> None:
        if self.repeat <= 0:
            raise ValueError("repeat must be positive")
        if self.kind in (OpKind.LOAD, OpKind.STORE) and self.addr is None:
            raise ValueError(f"memory op {self.op_id!r} needs an address pattern")
        if self.kind not in (OpKind.LOAD, OpKind.STORE) and self.addr is not None:
            raise ValueError(f"non-memory op {self.op_id!r} cannot have an address pattern")

    @property
    def est_weight(self) -> float:
        base = self.weight if self.weight is not None else self.DEFAULT_WEIGHTS[self.kind]
        return base * self.repeat


@dataclass
class Loop:
    """A counted streaming loop: the unit DSWP partitions."""

    name: str
    body: List[Op]
    trip_count: int = 1000

    def __post_init__(self) -> None:
        if self.trip_count <= 0:
            raise ValueError("trip count must be positive")
        seen = set()
        for op in self.body:
            if op.op_id in seen:
                raise ValueError(f"duplicate op id {op.op_id!r}")
            seen.add(op.op_id)
        for op in self.body:
            for dep in op.deps + op.carried_deps:
                if dep not in seen:
                    raise ValueError(f"op {op.op_id!r} depends on unknown op {dep!r}")
        # Intra-iteration deps must reference earlier body positions.
        position = {op.op_id: i for i, op in enumerate(self.body)}
        for op in self.body:
            for dep in op.deps:
                if position[dep] >= position[op.op_id]:
                    raise ValueError(
                        f"intra-iteration dep {dep!r} -> {op.op_id!r} is not "
                        "in program order (use carried_deps for recurrences)"
                    )

    def op(self, op_id: str) -> Op:
        for op in self.body:
            if op.op_id == op_id:
                return op
        raise KeyError(op_id)

    def total_weight(self) -> float:
        return sum(op.est_weight for op in self.body)

    def dynamic_instructions(self) -> int:
        """Dynamic body instructions over the loop's full run."""
        return self.trip_count * sum(op.repeat for op in self.body)
