"""Dependence-graph algorithms for the DSWP partitioner.

Implemented from scratch (no external graph library): adjacency structures,
an iterative Tarjan strongly-connected-components pass, condensation of the
dependence graph into a DAG of SCCs, and topological sorting.  These are the
algorithmic core of Decoupled Software Pipelining (Ottoni et al., MICRO
2005): cycles in the dependence graph (recurrences) must stay within one
thread; the acyclic condensation is what gets pipelined across threads.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

Node = Hashable


class DiGraph:
    """A minimal directed graph over hashable node ids."""

    def __init__(self) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        self._pred: Dict[Node, Set[Node]] = {}

    def add_node(self, node: Node) -> None:
        self._succ.setdefault(node, set())
        self._pred.setdefault(node, set())

    def add_edge(self, src: Node, dst: Node) -> None:
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    @property
    def nodes(self) -> List[Node]:
        return list(self._succ)

    def successors(self, node: Node) -> Set[Node]:
        return self._succ[node]

    def predecessors(self, node: Node) -> Set[Node]:
        return self._pred[node]

    def edges(self) -> Iterable[Tuple[Node, Node]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def n_edges(self) -> int:
        return sum(len(d) for d in self._succ.values())

    def has_edge(self, src: Node, dst: Node) -> bool:
        return src in self._succ and dst in self._succ[src]


def tarjan_scc(graph: DiGraph) -> List[List[Node]]:
    """Strongly connected components, iteratively (no recursion limits).

    Returns components in *reverse topological order* (Tarjan's natural
    output): every edge between components goes from a later list entry to
    an earlier one.
    """
    index_of: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in graph.nodes:
        if root in index_of:
            continue
        # Each work item is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condense(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, int], List[List[Node]]]:
    """Condense ``graph`` into its DAG of SCCs.

    Returns ``(dag, node_to_scc, sccs)`` where SCC ids index ``sccs`` and the
    DAG's nodes are those ids.
    """
    sccs = tarjan_scc(graph)
    node_to_scc: Dict[Node, int] = {}
    for scc_id, members in enumerate(sccs):
        for node in members:
            node_to_scc[node] = scc_id
    dag = DiGraph()
    for scc_id in range(len(sccs)):
        dag.add_node(scc_id)
    for src, dst in graph.edges():
        a, b = node_to_scc[src], node_to_scc[dst]
        if a != b:
            dag.add_edge(a, b)
    return dag, node_to_scc, sccs


def topological_order(graph: DiGraph) -> List[Node]:
    """Kahn's algorithm; raises on cycles."""
    in_deg = {node: len(graph.predecessors(node)) for node in graph.nodes}
    ready = sorted([n for n, d in in_deg.items() if d == 0], key=repr)
    order: List[Node] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in sorted(graph.successors(node), key=repr):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph.nodes):
        raise ValueError("graph has a cycle; topological order undefined")
    return order


def is_acyclic(graph: DiGraph) -> bool:
    try:
        topological_order(graph)
        return True
    except ValueError:
        return False
