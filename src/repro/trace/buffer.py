"""Bounded ring-buffer trace sink with a zero-overhead disabled path.

**Overhead contract.**  Tracing is keyed by ``MachineConfig.trace`` exactly
the way fault injection is keyed by ``MachineConfig.faults``: when the knob
is ``None`` (or ``TraceConfig.enabled`` is false) the
:class:`~repro.sim.machine.Machine` never constructs a :class:`TraceBuffer`
and every component's trace handle is ``None``.  Each instrumentation site
is then exactly one ``if trace is not None`` branch — no event object is
allocated, no method is called, nothing is appended.  The micro-benchmark
in ``tests/trace/test_overhead.py`` pins this contract: the guarded branch
adds well under the 3% wall-clock budget on a representative workload, and
a disabled run allocates zero trace state.

For call sites that prefer an unconditional ``sink.emit(...)`` (e.g. user
code driving the buffer directly), :data:`NULL_TRACE` is a shared no-op
sink with the same interface.

Events are stored in a :class:`collections.deque` with ``maxlen`` equal to
the configured capacity, so a run longer than the buffer keeps the *newest*
events — the right default for forensics (the interesting events are the
ones just before a wedge).  ``dropped`` counts what fell off the front.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.trace.events import CATEGORIES, TraceEvent, category_of


@dataclass
class TraceConfig:
    """Tracing knob attached to :class:`~repro.sim.config.MachineConfig`.

    Args:
        enabled: Master switch; ``False`` behaves exactly like ``trace=None``.
        capacity: Ring-buffer bound (events).  Oldest events are dropped
            once exceeded; derived timelines require the run to fit.
        categories: Restrict recording to these event categories (kind
            prefixes, e.g. ``("queue", "bus")``).  ``None`` records all.
    """

    enabled: bool = True
    capacity: int = 1 << 16
    categories: Optional[Tuple[str, ...]] = None

    def validate(self) -> "TraceConfig":
        if self.capacity <= 0:
            raise ValueError("trace capacity must be positive")
        if self.categories is not None:
            unknown = set(self.categories) - set(CATEGORIES)
            if unknown:
                raise ValueError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"known: {list(CATEGORIES)}"
                )
        return self


class TraceBuffer:
    """Bounded, append-only sink of :class:`TraceEvent` records."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = (config or TraceConfig()).validate()
        self._events: Deque[TraceEvent] = deque(maxlen=self.config.capacity)
        self._categories = (
            None if self.config.categories is None else frozenset(self.config.categories)
        )
        #: Events recorded past the category filter (including any that
        #: later fell off the ring).
        self.emitted = 0
        #: Events filtered out by the category restriction.
        self.filtered = 0

    # ------------------------------------------------------------------

    def emit(
        self,
        kind: str,
        ts: float,
        core: Optional[int] = None,
        queue: Optional[int] = None,
        dur: float = 0.0,
        **args,
    ) -> None:
        """Record one event (the only hot-path entry point)."""
        if self._categories is not None and category_of(kind) not in self._categories:
            self.filtered += 1
            return
        seq = self.emitted
        self.emitted += 1
        self._events.append(
            TraceEvent(seq=seq, kind=kind, ts=ts, core=core, queue=queue, dur=dur, args=args)
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained events, in emission order."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (run longer than capacity)."""
        return self.emitted - len(self._events)

    def select(
        self,
        kind: Optional[str] = None,
        category: Optional[str] = None,
        core: Optional[int] = None,
        queue: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Retained events matching every given criterion, in order."""
        out = []
        for ev in self._events:
            if kind is not None and ev.kind != kind:
                continue
            if category is not None and ev.category != category:
                continue
            if core is not None and ev.core != core:
                continue
            if queue is not None and ev.queue != queue:
                continue
            out.append(ev)
        return out

    def tail(self, n: int) -> List[TraceEvent]:
        """The last ``n`` retained events."""
        if n <= 0:
            return []
        return list(self._events)[-n:]

    def tail_by_core(self, n_per_core: int = 8) -> Dict[Optional[int], List[TraceEvent]]:
        """Last ``n_per_core`` events for each core (None = global events).

        This is what deadlock post-mortems attach: the event sequence each
        core ran immediately before the wedge.
        """
        buckets: Dict[Optional[int], Deque[TraceEvent]] = {}
        for ev in self._events:
            buckets.setdefault(ev.core, deque(maxlen=n_per_core)).append(ev)
        return {core: list(dq) for core, dq in buckets.items()}

    def describe(self) -> str:
        return (
            f"TraceBuffer({len(self._events)} events retained, "
            f"{self.emitted} emitted, {self.dropped} dropped, "
            f"{self.filtered} filtered)"
        )


class _NullTrace:
    """No-op sink sharing :class:`TraceBuffer`'s interface (always empty)."""

    __slots__ = ()
    emitted = 0
    filtered = 0
    dropped = 0

    def emit(self, kind, ts, core=None, queue=None, dur=0.0, **args) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def select(self, **_criteria) -> List[TraceEvent]:
        return []

    def tail(self, n: int) -> List[TraceEvent]:
        return []

    def tail_by_core(self, n_per_core: int = 8) -> Dict[Optional[int], List[TraceEvent]]:
        return {}

    def describe(self) -> str:
        return "NullTrace()"


#: Shared no-op sink for unconditional-call sites.
NULL_TRACE = _NullTrace()
