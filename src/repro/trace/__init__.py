"""repro.trace — cycle-level event tracing, timelines, and a COMM-OP profiler.

The observability layer of the reproduction: a bounded ring-buffer
:class:`TraceBuffer` fed by instrumentation hooks throughout the scheduler,
cores, queue channels, memory hierarchy, bus, and fault plan — keyed by
``MachineConfig.trace`` with zero overhead when disabled — plus exporters
(Chrome-trace/Perfetto JSON, CSV), derived timelines (per-channel queue
occupancy, bus-utilization windows) with invariant checkers, and the
:class:`CommOpProfiler` that measures the paper's COMM-OP delay per design
point.

Quickstart::

    from repro import run_benchmark, write_chrome_trace

    result = run_benchmark("wc", "SYNCOPTI", trip_count=200, trace=True)
    write_chrome_trace(result.trace, "wc_syncopti.trace.json")
    # load the file in chrome://tracing or https://ui.perfetto.dev
"""

from repro.trace.buffer import NULL_TRACE, TraceBuffer, TraceConfig
from repro.trace.events import CATEGORIES, TraceEvent, category_of
from repro.trace.export import to_chrome_trace, write_chrome_trace, write_csv
from repro.trace.profiler import (
    COMM_OP_POINTS,
    CommOpProfiler,
    CommOpReport,
    CommOpStats,
    measure_comm_ops,
)
from repro.trace.timeline import (
    OccupancyViolation,
    TraceIncompleteError,
    UtilizationWindow,
    bus_utilization,
    check_bus_utilization,
    check_occupancy,
    occupancy_plateaus,
    queue_occupancy,
)

__all__ = [
    "CATEGORIES",
    "COMM_OP_POINTS",
    "CommOpProfiler",
    "CommOpReport",
    "CommOpStats",
    "NULL_TRACE",
    "OccupancyViolation",
    "TraceBuffer",
    "TraceConfig",
    "TraceEvent",
    "TraceIncompleteError",
    "UtilizationWindow",
    "bus_utilization",
    "category_of",
    "check_bus_utilization",
    "check_occupancy",
    "measure_comm_ops",
    "occupancy_plateaus",
    "queue_occupancy",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_csv",
]
