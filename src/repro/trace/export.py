"""Trace exporters: Chrome-trace (Perfetto-loadable) JSON and CSV.

The Chrome trace event format is the JSON array-of-objects format consumed
by ``chrome://tracing`` and https://ui.perfetto.dev: each event carries a
phase (``ph``), a timestamp in microseconds (``ts``), and a ``pid``/``tid``
pair that the viewer renders as process/thread rows.  We map:

* ``pid 0`` ("cmp") — per-core rows: ``tid`` = core id; span events
  (``dur > 0``) become complete (``X``) slices, instants become ``i``.
* ``pid 1`` ("queues") — per-queue rows: ``tid`` = queue id, so queue
  publish/free/forward activity lines up under each channel.

Simulated CPU cycles are exported 1:1 as microseconds (the viewer has no
notion of cycles; a 1 µs slice reads as 1 cycle).
"""

from __future__ import annotations

import csv
import json
from typing import IO, Dict, Iterable, List, Union

from repro.trace.events import TraceEvent

#: Column order of the CSV export.
CSV_FIELDS = ("seq", "kind", "ts", "dur", "core", "queue", "args")

_CMP_PID = 0
_QUEUE_PID = 1
#: tid used for events bound to neither a core nor a queue.
_GLOBAL_TID = 99


def _chrome_event(ev: TraceEvent) -> Dict[str, object]:
    if ev.queue is not None and ev.core is None:
        pid, tid = _QUEUE_PID, ev.queue
    elif ev.core is not None:
        pid, tid = _CMP_PID, ev.core
    else:
        pid, tid = _CMP_PID, _GLOBAL_TID
    args: Dict[str, object] = {k: v for k, v in ev.args.items()}
    if ev.queue is not None:
        args.setdefault("queue", ev.queue)
    out: Dict[str, object] = {
        "name": ev.kind,
        "cat": ev.category,
        "ts": ev.ts,
        "pid": pid,
        "tid": tid,
        "args": args,
    }
    if ev.dur > 0:
        out["ph"] = "X"
        out["dur"] = ev.dur
    else:
        out["ph"] = "i"
        out["s"] = "t"  # instant scoped to its thread row
    return out


def _metadata(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Process/thread naming records so the viewer labels rows usefully."""
    cores = sorted({ev.core for ev in events if ev.core is not None})
    queues = sorted({ev.queue for ev in events if ev.queue is not None and ev.core is None})
    meta: List[Dict[str, object]] = [
        {"ph": "M", "name": "process_name", "pid": _CMP_PID, "args": {"name": "cmp"}},
        {"ph": "M", "name": "process_name", "pid": _QUEUE_PID, "args": {"name": "queues"}},
    ]
    for core in cores:
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _CMP_PID,
                "tid": core,
                "args": {"name": f"core {core}"},
            }
        )
    for queue in queues:
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _QUEUE_PID,
                "tid": queue,
                "args": {"name": f"queue {queue}"},
            }
        )
    return meta


def chrome_trace_doc(
    records: List[Dict[str, object]],
    source: str = "repro.trace",
    unit: str = "1us == 1 CPU cycle",
) -> Dict[str, object]:
    """Wrap raw Chrome-trace records in the standard document envelope.

    Shared by the cycle-domain trace exporter below and the wall-clock
    span exporter in :mod:`repro.obs.spans` — both produce Perfetto
    -loadable JSON through this one envelope.
    """
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {"source": source, "unit": unit},
    }


def write_trace_doc(doc: Dict[str, object], path_or_file: Union[str, IO[str]]) -> None:
    """Write a Chrome-trace document to a path or file object."""
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)
        return
    with open(path_or_file, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def to_chrome_trace(trace) -> Dict[str, object]:
    """Render a trace (buffer or event list) as a Chrome-trace JSON object."""
    events = list(trace)
    records = _metadata(events)
    records.extend(_chrome_event(ev) for ev in events)
    return chrome_trace_doc(records)


def write_chrome_trace(trace, path_or_file: Union[str, IO[str]]) -> None:
    """Write the Chrome-trace JSON for ``trace`` to a path or file object.

    The output loads directly in ``chrome://tracing`` or Perfetto.
    """
    write_trace_doc(to_chrome_trace(trace), path_or_file)


def write_csv(trace, path_or_file: Union[str, IO[str]]) -> None:
    """Write one row per event, ``CSV_FIELDS`` columns, args as JSON."""
    if hasattr(path_or_file, "write"):
        _write_csv_rows(trace, path_or_file)
        return
    with open(path_or_file, "w", encoding="utf-8", newline="") as fh:
        _write_csv_rows(trace, fh)


def _write_csv_rows(trace, fh: IO[str]) -> None:
    writer = csv.writer(fh)
    writer.writerow(CSV_FIELDS)
    for ev in trace:
        writer.writerow(
            [
                ev.seq,
                ev.kind,
                f"{ev.ts:g}",
                f"{ev.dur:g}",
                "" if ev.core is None else ev.core,
                "" if ev.queue is None else ev.queue,
                json.dumps(ev.args, sort_keys=True) if ev.args else "",
            ]
        )
