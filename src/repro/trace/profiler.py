"""COMM-OP delay profiler: the paper's Section 3 measurement as an artifact.

The paper's central claim is that streaming threads are sensitive to
**COMM-OP delay** — the per-operation, intra-core cost of executing a
produce or consume sequence — and not to transit delay.  The simulator's
core model emits one ``comm.produce`` / ``comm.consume`` trace event per
macro-op, spanning the op on the issue clock and carrying the queue-stall
share and the per-component (PreL2/L2/BUS/...) charge deltas accrued while
the op executed.  This profiler folds those events into per-design-point
COMM-OP statistics and renders the paper's comparison across
EXISTING / MEMOPTI / SYNCOPTI / HEAVYWT.

Measured quantity: ``op delay = max(0, dur - queue_stall - operand_feed)``
per op — the issue-clock cycles the operation itself costs, with
queue-full/empty blocking (load balance / transit, not operation overhead)
and operand-feed exposure (the application dataflow delivering the value
being produced, identical across design points) both subtracted.  The
split columns report where those cycles went using the
paper's component taxonomy; charges a mechanism defers to the first
dependent instruction (consume-to-use latency) are attributed there, as in
the paper's figures.

Measurement protocol — the *decoupled* (buffered) regime
--------------------------------------------------------

The paper's Section 4.3 COMM-OP analysis counts the instructions and
exposed cache latency of one operation with the queue's buffering
decoupling the two threads: slots a consumer reads were produced a while
ago, slots a producer writes were freed a while ago.  Most of the suite's
kernels, run natively, instead sit in a *lock-step race*: the consumer is
rate-matched to the producer and its spin loads chase the producer through
the very line it is writing, so the measured cost of an op is dominated by
cross-thread line interference (flag ping-pong) rather than by the op
itself — and a mechanism's intrinsic advantage (MEMOPTI's forwarded lines
arriving *before* the consumer wants them) never gets to apply.

The profiler therefore measures each kernel in a consumer-paced variant:
after every CONSUME the consumer thread executes a dependent integer-ALU
chain (``consumer_pacing`` cycles), slowing the drain rate below the fill
rate so the channel runs at its buffered steady state.  Producer-side
queue-full blocking grows, but blocking is subtracted from op delay by
construction; what remains is the paper's per-op cost.  Pass
``consumer_pacing=0`` to measure the native (rate-matched) schedule
instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

#: The Section 3/4 comparison order, worst to best COMM-OP delay.
COMM_OP_POINTS = ("EXISTING", "MEMOPTI", "SYNCOPTI", "HEAVYWT")

#: Component keys carried in comm event args (lowercase taxonomy).
_SPLIT_KEYS = ("compute", "prel2", "l2", "bus", "l3", "mem", "postl2")


@dataclass
class CommOpStats:
    """Aggregated COMM-OP measurements for one (benchmark, design point)."""

    benchmark: str
    design_point: str
    n_produces: int = 0
    n_consumes: int = 0
    #: Sum of per-op delays (queue blocking excluded).
    total_delay: float = 0.0
    #: Sum of queue-full/empty blocking observed across ops.
    total_block: float = 0.0
    #: Sum of operand-feed exposure (app dataflow delivering the produced
    #: value inside the op span) across ops.
    total_feed: float = 0.0
    #: Summed per-component charge deltas accrued inside op spans.
    components: Dict[str, float] = field(
        default_factory=lambda: {k: 0.0 for k in _SPLIT_KEYS}
    )

    @property
    def n_ops(self) -> int:
        return self.n_produces + self.n_consumes

    @property
    def mean_delay(self) -> float:
        """Mean COMM-OP delay in cycles per operation."""
        return self.total_delay / self.n_ops if self.n_ops else 0.0

    @property
    def mean_block(self) -> float:
        return self.total_block / self.n_ops if self.n_ops else 0.0

    @property
    def mean_feed(self) -> float:
        return self.total_feed / self.n_ops if self.n_ops else 0.0

    def mean_component(self, key: str) -> float:
        return self.components[key] / self.n_ops if self.n_ops else 0.0

    def add_op(self, kind: str, dur: float, stall: float, args: Dict[str, object]) -> None:
        if kind == "comm.produce":
            self.n_produces += 1
        else:
            self.n_consumes += 1
        # Queue blocking is load balance; operand-feed exposure is app
        # dataflow.  Neither is operation cost — subtract both.
        feed = float(args.get("feed", 0.0))
        self.total_delay += max(0.0, dur - stall - feed)
        self.total_block += stall
        self.total_feed += feed
        for key in _SPLIT_KEYS:
            value = args.get(key)
            if value is not None:
                self.components[key] += float(value)


#: Scratch register for pacing chains — far outside the kernel and comm-op
#: register ranges (see repro.sim.isa), so no false dependences arise.
_PACE_REG = 1 << 20


def decoupled_program(program, pacing: int):
    """Consumer-paced copy of a pipeline program (see module docstring).

    Every thread that consumes from some queue and produces into none gets a
    dependent ``pacing``-instruction integer-ALU chain after each CONSUME,
    anchored on the consumed value.  Threads that also produce (pipeline
    middle stages) are left untouched.  ``pacing <= 0`` returns the program
    unchanged.
    """
    from repro.sim import isa
    from repro.sim.program import Program, ThreadProgram

    if pacing <= 0:
        return program
    producers = {p for p, _ in program.queue_endpoints.values()}
    consumers = {c for _, c in program.queue_endpoints.values()}

    def paced(builder):
        def build():
            for inst in builder():
                yield inst
                if inst.kind is isa.InstrKind.CONSUME:
                    prev = inst.dest if inst.dest is not None else _PACE_REG
                    for _ in range(pacing):
                        yield isa.ialu(_PACE_REG, prev, tag="pace")
                        prev = _PACE_REG
        return build

    threads = [
        ThreadProgram(t.name, paced(t.builder))
        if idx in consumers and idx not in producers
        else t
        for idx, t in enumerate(program.threads)
    ]
    return Program(program.name + "+paced", threads, dict(program.queue_endpoints))


def measure_comm_ops(trace, benchmark: str, design_point: str) -> CommOpStats:
    """Fold one traced run's ``comm.*`` events into :class:`CommOpStats`."""
    stats = CommOpStats(benchmark=benchmark, design_point=design_point)
    for ev in trace:
        if ev.kind not in ("comm.produce", "comm.consume"):
            continue
        stall = float(ev.args.get("stall", 0.0))
        stats.add_op(ev.kind, ev.dur, stall, ev.args)
    return stats


@dataclass
class CommOpReport:
    """Profiling results over a (benchmark x design point) grid."""

    benchmarks: Sequence[str]
    design_points: Sequence[str]
    cells: Dict[str, Dict[str, CommOpStats]]

    def delay(self, design_point: str, benchmark: Optional[str] = None) -> float:
        """Mean COMM-OP delay for a point (one benchmark or suite average)."""
        if benchmark is not None:
            return self.cells[benchmark][design_point].mean_delay
        values = [self.cells[b][design_point].mean_delay for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def ordering(self, benchmark: Optional[str] = None) -> List[str]:
        """Design points sorted from largest to smallest COMM-OP delay."""
        return sorted(
            self.design_points,
            key=lambda p: self.delay(p, benchmark),
            reverse=True,
        )

    def render(self) -> str:
        from repro.harness.reporting import format_table  # lazy: avoid cycle

        headers = (
            "Benchmark",
            "Design point",
            "ops",
            "COMM-OP delay",
            "PreL2",
            "L2",
            "BUS",
            "block/op",
        )
        rows = []
        for bench in self.benchmarks:
            for point in self.design_points:
                cell = self.cells[bench][point]
                rows.append(
                    (
                        bench,
                        point,
                        cell.n_ops,
                        f"{cell.mean_delay:.2f}",
                        f"{cell.mean_component('prel2'):.2f}",
                        f"{cell.mean_component('l2'):.2f}",
                        f"{cell.mean_component('bus'):.2f}",
                        f"{cell.mean_block:.2f}",
                    )
                )
        rows.append(("", "", "", "", "", "", "", ""))
        for point in self.design_points:
            rows.append(
                ("MEAN", point, "", f"{self.delay(point):.2f}", "", "", "", "")
            )
        return (
            "== COMM-OP delay by design point (cycles per operation) ==\n"
            + format_table(headers, rows)
        )

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


class CommOpProfiler:
    """Run benchmarks across design points and compare COMM-OP delay.

    Example::

        report = CommOpProfiler(benchmarks=("wc",)).profile()
        print(report.render())
        assert report.ordering() == list(COMM_OP_POINTS)
    """

    def __init__(
        self,
        benchmarks: Iterable[str] = ("wc", "adpcmdec", "fir"),
        design_points: Iterable[str] = COMM_OP_POINTS,
        trip_count: int = 200,
        consumer_pacing: int = 256,
    ) -> None:
        self.benchmarks = tuple(benchmarks)
        self.design_points = tuple(design_points)
        if trip_count <= 0:
            raise ValueError("trip_count must be positive")
        if consumer_pacing < 0:
            raise ValueError("consumer_pacing must be non-negative")
        self.trip_count = trip_count
        #: Dependent-ALU cycles appended per CONSUME to reach the buffered
        #: steady state (module docstring); 0 = native schedule.
        self.consumer_pacing = consumer_pacing

    def profile(self) -> CommOpReport:
        """Run the grid with ``comm``-category tracing and aggregate."""
        # Imported lazily: the harness imports the sim layer, which imports
        # this package's buffer module — a top-level import here would cycle.
        from repro.core.design_points import get_design_point
        from repro.sim.machine import Machine
        from repro.trace.buffer import TraceConfig
        from repro.workloads.suite import build_pipelined

        cells: Dict[str, Dict[str, CommOpStats]] = {}
        for bench in self.benchmarks:
            cells[bench] = {}
            program = decoupled_program(
                build_pipelined(bench, self.trip_count), self.consumer_pacing
            )
            for point in self.design_points:
                dp = get_design_point(point)
                cfg = dp.build_config().copy(
                    trace=TraceConfig(capacity=1 << 20, categories=("comm",))
                )
                machine = Machine(cfg, mechanism=dp.mechanism)
                machine.run(program)
                cells[bench][point] = measure_comm_ops(machine.trace, bench, point)
        return CommOpReport(
            benchmarks=self.benchmarks,
            design_points=self.design_points,
            cells=cells,
        )
