"""Typed trace events and the event taxonomy of the tracing subsystem.

Every instrumentation hook in the simulator emits one :class:`TraceEvent`.
Event *kinds* are dotted strings; the prefix before the first dot is the
event's **category**, which is what :class:`~repro.trace.buffer.TraceConfig`
filters on.  The taxonomy (see DESIGN.md §7 for prose):

===============  ====================================================
kind             meaning
===============  ====================================================
core.retire      ``n`` instructions committed (``overhead`` flags comm ops)
comm.produce     one PRODUCE macro-op, ``ts``..``ts+dur`` on the issue clock
comm.consume     one CONSUME macro-op, same span semantics
queue.publish    item ``item`` became consumer-visible on queue ``queue``
queue.free       slot of item ``item`` became producer-visible again
queue.wedge      a fault permanently stalled slot recycling on ``queue``
queue.forward    backing line ``line`` of ``queue`` arrived at the consumer
queue.block      a core began waiting on queue state (``reason``)
queue.unblock    that wait resolved (``status``: ok / timeout)
bus.grant        a shared-bus grant; ``dur`` is the occupancy hold
mem.access       an L1-missing memory access; ``level`` names the hit level
fwd.line         a producer-initiated write-forward delivered
fwd.drop         a write-forward suppressed by fault injection
fault.inject     a fault rule fired (``fault`` carries the FaultKind value)
sched.block      the co-sim scheduler parked a core on a predicate
sched.resume     the scheduler woke a parked core (``status``)
sched.done       a core's generator finished
===============  ====================================================

Instant events have ``dur == 0``; span events carry a positive ``dur`` and
map onto Chrome-trace "complete" (``ph: X``) events in the exporter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: All event categories (kind prefixes) the instrumentation can emit.
CATEGORIES = (
    "core",
    "comm",
    "queue",
    "bus",
    "mem",
    "fwd",
    "fault",
    "sched",
)


def category_of(kind: str) -> str:
    """Category (filter key) of an event kind: the prefix before the dot."""
    dot = kind.find(".")
    return kind if dot < 0 else kind[:dot]


@dataclass(slots=True)
class TraceEvent:
    """One timestamped simulator event.

    Attributes:
        seq: Global emission sequence number (total order across cores, used
            to detect ring-buffer drops and to stable-sort equal timestamps).
        kind: Dotted event kind from the taxonomy above.
        ts: Simulated time (CPU cycles) of the event (span start for spans).
        core: Core id the event belongs to, or ``None`` for global events.
        queue: Architectural queue id, when the event concerns one.
        dur: Span duration in cycles (0 for instant events).
        args: Kind-specific payload (small scalars only, by convention).
    """

    seq: int
    kind: str
    ts: float
    core: Optional[int] = None
    queue: Optional[int] = None
    dur: float = 0.0
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def category(self) -> str:
        return category_of(self.kind)

    @property
    def end(self) -> float:
        """Span end time (== ``ts`` for instant events)."""
        return self.ts + self.dur

    def describe(self) -> str:
        where = []
        if self.core is not None:
            where.append(f"core {self.core}")
        if self.queue is not None:
            where.append(f"queue {self.queue}")
        loc = " ".join(where) or "global"
        extra = ""
        if self.args:
            extra = " " + " ".join(f"{k}={v}" for k, v in sorted(self.args.items()))
        dur = f" dur={self.dur:g}" if self.dur else ""
        return f"t={self.ts:.0f} {self.kind} @ {loc}{dur}{extra}"
