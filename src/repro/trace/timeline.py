"""Derived timelines: queue occupancy over time and bus-utilization windows.

These are the first consumers of the raw event stream: they fold the
``queue.publish`` / ``queue.free`` visibility events into a step function of
per-channel occupancy, and the ``bus.grant`` spans into windowed utilization
— the two quantities the paper's arguments about queue-full/empty exposure
and bus contention are really about.

Both come with invariant checkers.  Occupancy must stay within
``[0, depth]`` at every sample: a negative sample means a slot was freed
that was never published (attribution bug), an over-depth sample means the
producer overran the architectural bound (gating bug).  Utilization must
stay within ``[0, 1]``: anything above 1 means the bus double-booked a
cycle.  Reconstructions are only sound when the ring buffer kept every
event, so the builders refuse (by default) to work on a trace that dropped
events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: One occupancy step: (time, occupancy-after-this-instant).
OccupancySample = Tuple[float, int]


class TraceIncompleteError(ValueError):
    """The ring buffer dropped events, so a derived timeline would lie."""


def _require_complete(trace, allow_dropped: bool) -> None:
    dropped = getattr(trace, "dropped", 0)
    if dropped and not allow_dropped:
        raise TraceIncompleteError(
            f"trace dropped {dropped} events (ring capacity too small); "
            "raise TraceConfig.capacity or pass allow_dropped=True"
        )


@dataclass
class OccupancyViolation:
    """One out-of-bounds occupancy sample."""

    queue_id: int
    time: float
    occupancy: int
    depth: int

    def describe(self) -> str:
        bound = "negative" if self.occupancy < 0 else f"over depth {self.depth}"
        return (
            f"queue {self.queue_id}: occupancy {self.occupancy} ({bound}) "
            f"at t={self.time:.0f}"
        )


def queue_occupancy(
    trace, queue_id: int, allow_dropped: bool = False
) -> List[OccupancySample]:
    """Occupancy step function of one queue from its publish/free events.

    Each ``queue.publish`` raises occupancy by one at its visibility time,
    each ``queue.free`` lowers it.  Events are ordered by (time, seq);
    at equal times frees apply before publishes, matching the architectural
    bound (a producer gated on a free can publish in the same cycle the
    free lands).
    """
    _require_complete(trace, allow_dropped)
    deltas: List[Tuple[float, int, int, int]] = []  # (ts, order, seq, delta)
    for ev in trace:
        if ev.queue != queue_id:
            continue
        if ev.kind == "queue.publish":
            deltas.append((ev.ts, 1, ev.seq, +1))
        elif ev.kind == "queue.free":
            deltas.append((ev.ts, 0, ev.seq, -1))
    deltas.sort()
    samples: List[OccupancySample] = []
    occ = 0
    for ts, _order, _seq, delta in deltas:
        occ += delta
        if samples and samples[-1][0] == ts:
            samples[-1] = (ts, occ)
        else:
            samples.append((ts, occ))
    return samples


def check_occupancy(
    samples: List[OccupancySample], depth: int, queue_id: int = 0
) -> List[OccupancyViolation]:
    """All samples violating ``0 <= occupancy <= depth`` (empty = healthy)."""
    return [
        OccupancyViolation(queue_id=queue_id, time=ts, occupancy=occ, depth=depth)
        for ts, occ in samples
        if occ < 0 or occ > depth
    ]


def occupancy_plateaus(
    samples: List[OccupancySample], min_duration: float, level: Optional[int] = None
) -> List[Tuple[float, float, int]]:
    """Spans where occupancy held one value for at least ``min_duration``.

    Returns ``(start, end, occupancy)`` triples.  ``level`` restricts to one
    occupancy value (e.g. the queue depth, to find full-queue stalls).  The
    trailing open-ended span after the last event is not reported — only
    plateaus bounded by a later occupancy change count.
    """
    out: List[Tuple[float, float, int]] = []
    for (t0, occ), (t1, _next_occ) in zip(samples, samples[1:]):
        if level is not None and occ != level:
            continue
        if t1 - t0 >= min_duration:
            out.append((t0, t1, occ))
    return out


# ----------------------------------------------------------------------
# Bus utilization
# ----------------------------------------------------------------------


@dataclass
class UtilizationWindow:
    """Bus occupancy within one ``[start, start + width)`` window."""

    start: float
    width: float
    busy: float

    @property
    def utilization(self) -> float:
        return self.busy / self.width if self.width > 0 else 0.0


def bus_utilization(
    trace, window: float = 1000.0, allow_dropped: bool = False
) -> List[UtilizationWindow]:
    """Windowed shared-bus utilization from ``bus.grant`` spans.

    Each grant's occupancy hold ``[ts, ts + dur)`` is clipped into
    fixed-width windows covering the traced interval.  Windows with no
    traffic still appear (utilization 0), so plots show idle gaps.
    """
    if window <= 0:
        raise ValueError("window width must be positive")
    _require_complete(trace, allow_dropped)
    spans = [
        (ev.ts, ev.ts + ev.dur)
        for ev in trace
        if ev.kind == "bus.grant" and ev.dur > 0
    ]
    if not spans:
        return []
    horizon = max(end for _start, end in spans)
    n_windows = int(horizon // window) + 1
    busy = [0.0] * n_windows
    for start, end in spans:
        w = int(start // window)
        while w < n_windows:
            w_start = w * window
            w_end = w_start + window
            overlap = min(end, w_end) - max(start, w_start)
            if overlap <= 0:
                break
            busy[w] += overlap
            w += 1
    return [
        UtilizationWindow(start=w * window, width=window, busy=busy[w])
        for w in range(n_windows)
    ]


def check_bus_utilization(windows: List[UtilizationWindow]) -> List[UtilizationWindow]:
    """Windows whose utilization leaves ``[0, 1]`` (empty = healthy).

    A split-transaction bus reserves disjoint busy intervals, so clipped
    occupancy can never exceed the window width; an over-1 sample means the
    bus model double-booked a cycle.
    """
    eps = 1e-9
    return [w for w in windows if w.busy < -eps or w.busy > w.width + eps]
