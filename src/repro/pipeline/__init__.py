"""Multi-stage DSWP pipelines on N-core CMPs.

The paper evaluates its communication design points on a dual-core machine,
but frames synchronization scalability — distributed occupancy counters vs.
memory flags, a shared bus vs. a dedicated interconnect — as the axis that
decides how streaming support extends beyond two cores.  This package makes
the n > 2 regime reachable:

* :mod:`repro.pipeline.partition` — :func:`partition_loop_k` chain-decomposes
  the dependence DAG into K balanced stages (generalizing the two-stage cut
  of :mod:`repro.dswp.partition`);
* :mod:`repro.pipeline.codegen` — :func:`lower_pipeline` emits one thread per
  stage, connected by per-adjacent-pair queues with relay forwarding for
  values used more than one stage downstream;
* :mod:`repro.pipeline.scaling` — the ``pipeline_scaling`` experiment sweeps
  stage counts across the four design points and reports speedup, per-hop
  COMM-OP delay, and shared-bus utilization.

A two-stage pipeline lowered through this package is instruction-for-
instruction identical to :func:`repro.dswp.codegen.lower_partition`'s
output, so every existing dual-core exhibit is unchanged.
"""

from repro.pipeline.codegen import lower_pipeline, plan_queue_hops
from repro.pipeline.partition import partition_loop_k
from repro.pipeline.scaling import (
    PIPELINE_BENCHMARKS,
    SCALING_POINTS,
    STAGE_COUNTS,
    build_pipeline,
    build_pipeline_partition,
    pipeline_scaling,
)

__all__ = [
    "PIPELINE_BENCHMARKS",
    "SCALING_POINTS",
    "STAGE_COUNTS",
    "build_pipeline",
    "build_pipeline_partition",
    "lower_pipeline",
    "partition_loop_k",
    "pipeline_scaling",
    "plan_queue_hops",
]
