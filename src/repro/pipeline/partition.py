"""K-stage DSWP partitioning: chain-decomposing the dependence DAG.

:func:`repro.dswp.partition.partition_loop` cuts the SCC condensation in
two.  For an N-core pipeline we instead *chain-decompose* it: fix one
deterministic topological order of the SCCs and split it into K contiguous,
non-empty segments, one per stage.  Because every DAG edge points forward
in a topological order, any such split assigns each dependence a
non-decreasing stage — the generalized DSWP invariant
(:meth:`repro.dswp.partition.Partition.validate`) holds by construction.

The boundary search is exact over all ``C(n-1, K-1)`` contiguous splits
for the condensation sizes in the suite (every loop is well under
:data:`_EXHAUSTIVE_SCC_LIMIT` SCCs); larger condensations fall back to a
greedy weight-quantile split.  Scoring mirrors the two-stage search, with
the communication term generalized to count *hops*: a value defined in
stage ``i`` and last used in stage ``j`` is relayed through every
intermediate stage, costing one produce/consume pair per iteration per
boundary crossed (see :func:`repro.pipeline.codegen.plan_queue_hops`).
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.dswp.graph import condense, topological_order
from repro.dswp.ir import Loop
from repro.dswp.partition import (
    Partition,
    PartitionError,
    build_dependence_graph,
)

#: Condensations at or below this many SCCs get an exact boundary search
#: (matches the exhaustive limit of the two-stage cut search).
_EXHAUSTIVE_SCC_LIMIT = 14


def crossing_values_k(loop: Loop, stage_of: Dict[str, int]) -> Tuple[str, ...]:
    """Values used in a later stage than their definition, in body order."""
    crossing = set()
    for op in loop.body:
        for dep in op.deps + op.carried_deps:
            if stage_of[dep] < stage_of[op.op_id]:
                crossing.add(dep)
    return tuple(op.op_id for op in loop.body if op.op_id in crossing)


def _hop_count(loop: Loop, stage_of: Dict[str, int]) -> int:
    """Queue items moved per iteration, counting one per boundary crossed."""
    last_use: Dict[str, int] = {}
    for op in loop.body:
        for dep in op.deps + op.carried_deps:
            if stage_of[dep] < stage_of[op.op_id]:
                last_use[dep] = max(
                    last_use.get(dep, 0), stage_of[op.op_id]
                )
    return sum(
        loop.op(v).repeat * (last - stage_of[v]) for v, last in last_use.items()
    )


def _greedy_boundaries(weights: Sequence[float], n_stages: int) -> Tuple[int, ...]:
    """Weight-quantile split for condensations too large to enumerate."""
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)
    boundaries: List[int] = []
    for stage in range(1, n_stages):
        target = total * stage / n_stages
        cut = bisect_right(cumulative, target)
        # Keep every segment non-empty: each boundary must advance past the
        # previous one and leave room for the remaining stages.
        low = (boundaries[-1] if boundaries else 0) + 1
        high = len(weights) - (n_stages - stage)
        boundaries.append(min(max(cut, low), high))
    return tuple(boundaries)


def partition_loop_k(
    loop: Loop, n_stages: int, comm_cost_weight: float = 1.0
) -> Partition:
    """Split ``loop`` into a ``n_stages``-stage pipeline.

    Args:
        n_stages: Pipeline stage (thread) count; must be at least 2.
        comm_cost_weight: Estimated cycles charged per queue item moved per
            iteration when scoring splits (one charge per boundary a value
            crosses — relays through middle stages are paid for).

    Returns a :class:`~repro.dswp.partition.Partition` whose ``stage_of``
    ranges over ``0..n_stages-1`` with every stage non-empty.

    Raises:
        PartitionError: When the condensation has fewer than ``n_stages``
            SCCs (the recurrences cannot fill that many stages).
        ValueError: When ``n_stages < 2``.
    """
    if n_stages < 2:
        raise ValueError(f"n_stages must be at least 2, got {n_stages}")
    graph = build_dependence_graph(loop)
    dag, op_to_scc, sccs = condense(graph)
    if len(sccs) < n_stages:
        raise PartitionError(
            f"loop {loop.name!r} condenses to {len(sccs)} SCC(s); "
            f"cannot form {n_stages} non-empty pipeline stages"
        )
    order = topological_order(dag)
    n = len(order)
    weights = [
        sum(loop.op(op_id).est_weight for op_id in sccs[scc_id])
        for scc_id in order
    ]
    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + w)
    position = {scc_id: i for i, scc_id in enumerate(order)}
    op_pos = {op.op_id: position[op_to_scc[op.op_id]] for op in loop.body}

    def stage_map(boundaries: Tuple[int, ...]) -> Dict[str, int]:
        return {
            op_id: bisect_right(boundaries, pos) for op_id, pos in op_pos.items()
        }

    best_boundaries, best_score = None, (float("inf"), float("inf"), ())

    def consider(boundaries: Tuple[int, ...]) -> None:
        nonlocal best_boundaries, best_score
        edges = (0,) + boundaries + (n,)
        bottleneck = max(
            prefix[edges[s + 1]] - prefix[edges[s]] for s in range(n_stages)
        )
        comm = _hop_count(loop, stage_map(boundaries))
        # Primary: estimated bottleneck stage time + per-iteration COMM-OP
        # cost (as in the two-stage search).  Tie-breaks: the flatter
        # pipeline, then the boundary tuple for determinism.
        score = (bottleneck + comm_cost_weight * comm, bottleneck, boundaries)
        if score < best_score:
            best_score = score
            best_boundaries = boundaries

    if n <= _EXHAUSTIVE_SCC_LIMIT:
        for boundaries in combinations(range(1, n), n_stages - 1):
            consider(boundaries)
    else:
        consider(_greedy_boundaries(weights, n_stages))
    assert best_boundaries is not None  # n >= n_stages guarantees a split
    stage_of = stage_map(best_boundaries)
    partition = Partition(
        loop=loop,
        stage_of=stage_of,
        crossing_values=crossing_values_k(loop, stage_of),
    )
    partition.validate()
    return partition
