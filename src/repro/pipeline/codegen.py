"""Lowering K-stage partitions to K-thread pipelined programs.

Queue topology
--------------

Queues connect *adjacent* stages only, mirroring how the paper's dual-core
queues connect the two cores: a value defined in stage ``i`` and last used
in stage ``j`` travels the hop chain ``i -> i+1 -> ... -> j``, one
architectural queue per hop.  Middle stages *relay*: they CONSUME the value
at the top of the iteration (the DSWP convention) and immediately re-PRODUCE
it into the next hop's queue.  Relaying keeps every queue's endpoints an
adjacent core pair, so each mechanism's per-channel machinery (flag lines,
occupancy counters, write-forward targets, dedicated-store ports) sees
exactly the traffic pattern it was built for, at any stage count.

The emitter subclasses :class:`repro.dswp.codegen._StageEmitter`, overriding
only its ``_consumes`` / ``_produces_after`` hooks; the shared skeleton
(modulo-scheduled load hoisting, body walk, replicated loop control) plus
the hop-id assignment below make a two-stage pipeline lowered here
instruction-for-instruction identical to
:func:`repro.dswp.codegen.lower_partition`'s output — the property that
keeps every existing dual-core exhibit numerically unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.dswp.codegen import DEFAULT_HOIST_DEPTH, _StageEmitter
from repro.dswp.ir import Op
from repro.dswp.partition import Partition
from repro.sim import isa
from repro.sim.isa import DynInst
from repro.sim.program import Program, ThreadProgram

#: A hop key: (value op_id, source stage).  The queue carries the value from
#: ``source stage`` to ``source stage + 1``.
Hop = Tuple[str, int]


def plan_queue_hops(partition: Partition, queue_base: int = 0) -> Dict[Hop, int]:
    """Assign one architectural queue id to every (value, source-stage) hop.

    Ids are dense from ``queue_base``, allocated in body order of the
    defining op and then in hop order — for a two-stage partition this
    degenerates to exactly the ``crossing_values``-ordered assignment of
    :func:`repro.dswp.codegen.lower_partition`.
    """
    loop = partition.loop
    stage_of = partition.stage_of
    last_use: Dict[str, int] = {}
    for op in loop.body:
        for dep in op.deps + op.carried_deps:
            if stage_of[dep] < stage_of[op.op_id]:
                last_use[dep] = max(last_use.get(dep, 0), stage_of[op.op_id])
    hops: Dict[Hop, int] = {}
    next_qid = queue_base
    for op in loop.body:
        value = op.op_id
        if value not in last_use:
            continue
        for src in range(stage_of[value], last_use[value]):
            hops[(value, src)] = next_qid
            next_qid += 1
    return hops


class _PipelineStageEmitter(_StageEmitter):
    """One pipeline stage's instruction stream, with relay forwarding."""

    def __init__(
        self,
        loop,
        stage_of: Dict[str, int],
        stage: int,
        hops: Dict[Hop, int],
        hoist_depth: int,
    ) -> None:
        super().__init__(loop, stage_of, stage, {}, hoist_depth)
        self.hops = hops
        #: value -> queue id consumed at the top of this stage's iteration
        #: (insertion order = body order of the defining op).
        self.consume_from: Dict[str, int] = {}
        #: value -> next hop's queue id, for values relayed downstream.
        self.relay_to: Dict[str, int] = {}
        for op in loop.body:
            incoming = hops.get((op.op_id, stage - 1))
            if incoming is None:
                continue
            self.consume_from[op.op_id] = incoming
            onward = hops.get((op.op_id, stage))
            if onward is not None:
                self.relay_to[op.op_id] = onward

    def _consumes(self, iteration: int) -> Iterator[DynInst]:
        for value, qid in self.consume_from.items():
            op = self.loop.op(value)
            for _ in range(op.repeat):
                yield isa.consume(self.reg(value, iteration), qid)
            onward = self.relay_to.get(value)
            if onward is not None:
                # Relay: forward the value to the next stage right away so
                # downstream stages see minimal extra latency per hop.
                for _ in range(op.repeat):
                    yield isa.produce(onward, self.reg(value, iteration))

    def _produces_after(self, op: Op, iteration: int) -> Iterator[DynInst]:
        qid = self.hops.get((op.op_id, self.stage))
        if qid is not None and self.stage_of[op.op_id] == self.stage:
            for _ in range(op.repeat):
                yield isa.produce(qid, self.reg(op.op_id, iteration))


def lower_pipeline(
    partition: Partition,
    queue_base: int = 0,
    hoist_depth: int = DEFAULT_HOIST_DEPTH,
) -> Program:
    """Emit the K-thread pipelined program for ``partition``.

    Thread ``t`` runs stage ``t``; every queue connects thread ``t`` to
    thread ``t + 1`` (see :func:`plan_queue_hops`).
    """
    loop = partition.loop
    n_stages = partition.n_stages
    hops = plan_queue_hops(partition, queue_base)

    def builder(stage: int):
        def build() -> Iterator[DynInst]:
            emitter = _PipelineStageEmitter(
                loop, partition.stage_of, stage, hops, hoist_depth
            )
            return emitter.instructions()

        return build

    return Program(
        name=f"{loop.name}-pipe{n_stages}",
        threads=[
            ThreadProgram(f"{loop.name}-stage{t}", builder(t))
            for t in range(n_stages)
        ],
        queue_endpoints={qid: (src, src + 1) for (_, src), qid in hops.items()},
    )
