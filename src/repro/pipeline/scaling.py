"""The N-core scalability study: ``pipeline_scaling``.

Sweeps pipeline stage count K over each communication design point and
kernel, on a K-core machine (:func:`repro.core.design_points.with_n_cores`).
For every cell it reports:

* **speedup** — single-threaded cycles / pipelined cycles (the Figure 9
  convention, extended along the K axis);
* **per-hop COMM-OP delay** — the paper's Section 3 quantity, folded from
  ``comm.produce`` / ``comm.consume`` trace events and grouped by the hop
  (adjacent-stage queue) each op targeted;
* **bus utilization** — the shared L3 bus's busy fraction over the run,
  from the bus model's own occupancy counter.

Expected shape (the paper's Section 6 extrapolation): SYNCOPTI and HEAVYWT
keep scaling as stages are added, because their per-hop synchronization is
a single instruction against a local counter (or a dedicated-store port);
EXISTING saturates — every added hop costs two ~10-instruction software
sequences plus flag-line ping-pong on the one shared bus, so the growing
COMM-OP bill and bus contention absorb the exposed parallelism.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.dswp.partition import Partition, PartitionError
from repro.harness.campaign import CampaignCell, run_cells
from repro.harness.runner import FailedRun, RunOutcome
from repro.pipeline.codegen import lower_pipeline
from repro.pipeline.partition import partition_loop_k
from repro.sim.program import Program
from repro.sim.stats import geomean
from repro.workloads.suite import build_loop, build_partition

#: Kernels with enough recurrences (SCCs) to fill eight pipeline stages.
PIPELINE_BENCHMARKS: Tuple[str, ...] = ("wc", "adpcmdec", "equake", "fft2")

#: The stage counts the study sweeps.
STAGE_COUNTS: Tuple[int, ...] = (2, 3, 4, 6, 8)

#: The Section 4 design points, in scaling order.
SCALING_POINTS: Tuple[str, ...] = ("EXISTING", "MEMOPTI", "SYNCOPTI", "HEAVYWT")


def build_pipeline_partition(
    name: str, n_stages: int, trip_count: Optional[int] = None
) -> Partition:
    """The K-stage partition of a non-nested benchmark.

    ``n_stages == 2`` returns the paper's own partition (DSWP-compiled or
    hand-partitioned, via :func:`repro.workloads.suite.build_partition`) so
    the two-stage column of the study is the existing dual-core path;
    deeper pipelines come from :func:`repro.pipeline.partition.partition_loop_k`.
    """
    if n_stages == 2:
        return build_partition(name, trip_count)
    return partition_loop_k(build_loop(name, trip_count), n_stages)


def build_pipeline(
    name: str, n_stages: int, trip_count: Optional[int] = None
) -> Program:
    """The K-thread pipelined program of a non-nested benchmark."""
    return lower_pipeline(build_pipeline_partition(name, n_stages, trip_count))


def _per_hop_delay(trace, hop_of_queue: Dict[int, int]) -> Dict[int, float]:
    """Mean COMM-OP delay per hop, from one traced run's ``comm.*`` events.

    Same measured quantity as :mod:`repro.trace.profiler`:
    ``max(0, dur - stall - feed)`` per op — queue blocking and operand feed
    are load balance and application dataflow, not operation cost.
    """
    totals: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for ev in trace:
        if ev.kind not in ("comm.produce", "comm.consume"):
            continue
        hop = hop_of_queue.get(ev.queue)
        if hop is None:
            continue
        stall = float(ev.args.get("stall", 0.0))
        feed = float(ev.args.get("feed", 0.0))
        totals[hop] = totals.get(hop, 0.0) + max(0.0, ev.dur - stall - feed)
        counts[hop] = counts.get(hop, 0) + 1
    return {hop: totals[hop] / counts[hop] for hop in totals}


def pipeline_scaling(
    scale: float = 1.0,
    benchmarks: Iterable[str] = PIPELINE_BENCHMARKS,
    stage_counts: Iterable[int] = STAGE_COUNTS,
    design_points: Iterable[str] = SCALING_POINTS,
    jobs: int = 1,
    kernel: str = "reference",
):
    """Run the stage-count sweep and render the scalability tables.

    Args:
        scale: Multiplier on the per-benchmark experiment trip counts
            (reduced-scale smokes pass e.g. ``0.1``).
        benchmarks: Kernel subset to sweep (non-nested suite members).
        stage_counts: Pipeline depths to build; each runs on that many cores.
        design_points: Design-point names to compare.
        jobs: ``1`` (default) runs every cell serially in-process; ``> 1``
            dispatches the grid through the campaign runner's worker pool.
            Either way each cell runs the same executor, so the study's
            numbers are identical.
        kernel: Simulation kernel for every cell (:mod:`repro.sim.kernel`);
            fingerprint-identical across kernels, host speed only.

    Returns an :class:`~repro.harness.experiments.ExperimentResult` whose
    ``data`` carries ``speedup`` / ``geomean_speedup`` / ``comm_op_delay`` /
    ``hop_delays`` / ``bus_utilization`` grids keyed by design point.
    """
    # Imported lazily: the harness's experiment registry imports this module,
    # so a top-level import of repro.harness.experiments would cycle.
    from repro.harness.experiments import EXPERIMENT_TRIPS, ExperimentResult
    from repro.harness.reporting import format_table

    benchmarks = tuple(benchmarks)
    stage_counts = tuple(stage_counts)
    design_points = tuple(design_points)

    failures: List[RunOutcome] = []
    speedup: Dict[str, Dict[str, Dict[int, Optional[float]]]] = {
        p: {b: {} for b in benchmarks} for p in design_points
    }
    hop_delays: Dict[str, Dict[str, Dict[int, Dict[int, float]]]] = {
        p: {b: {} for b in benchmarks} for p in design_points
    }
    bus_util: Dict[str, Dict[str, Dict[int, Optional[float]]]] = {
        p: {b: {} for b in benchmarks} for p in design_points
    }

    # Partition feasibility is checked once per (benchmark, K) up front —
    # a kernel without enough recurrences for K stages fails every design
    # point identically, so it gets one FailedRun, not four.
    trips: Dict[str, int] = {
        b: max(32, int(EXPERIMENT_TRIPS[b] * scale)) for b in benchmarks
    }
    buildable: Dict[Tuple[str, int], bool] = {}
    for bench in benchmarks:
        for k in stage_counts:
            try:
                build_pipeline_partition(bench, k, trips[bench])
                buildable[(bench, k)] = True
            except PartitionError as exc:
                buildable[(bench, k)] = False
                failures.append(
                    FailedRun(
                        benchmark=bench,
                        design_point=f"K={k}",
                        error_type=type(exc).__name__,
                        error=str(exc).splitlines()[0],
                    )
                )
                for point in design_points:
                    speedup[point][bench][k] = None
                    bus_util[point][bench][k] = None

    single_cells = {
        bench: CampaignCell(
            benchmark=bench, kind="single", trip_count=trips[bench], kernel=kernel
        )
        for bench in benchmarks
    }
    pipe_cells: Dict[Tuple[str, int, str], CampaignCell] = {
        (bench, k, point): CampaignCell(
            benchmark=bench,
            design_point=point,
            kind="pipeline",
            stages=k,
            trip_count=trips[bench],
            kernel=kernel,
        )
        for bench in benchmarks
        for k in stage_counts
        if buildable[(bench, k)]
        for point in design_points
    }
    outcomes = run_cells(
        list(single_cells.values()) + list(pipe_cells.values()), jobs=jobs
    )

    single_cycles: Dict[str, Optional[int]] = {}
    for bench in benchmarks:
        st = outcomes[single_cells[bench].key()]
        if st.ok:
            single_cycles[bench] = st.cycles
        else:
            single_cycles[bench] = None
            failures.append(st)

    for (bench, k, point), cell in pipe_cells.items():
        outcome = outcomes[cell.key()]
        if not outcome.ok:
            failures.append(outcome)
            speedup[point][bench][k] = None
            bus_util[point][bench][k] = None
            continue
        base = single_cycles[bench]
        speedup[point][bench][k] = (
            base / outcome.cycles if base is not None else None
        )
        hop_delays[point][bench][k] = outcome.extras["hop_delays"]
        bus_util[point][bench][k] = outcome.extras["bus_utilization"]

    def grid_geomean(
        grid: Dict[str, Dict[int, Optional[float]]], k: int
    ) -> Optional[float]:
        values = [
            grid[b][k] for b in benchmarks if grid[b].get(k) is not None
        ]
        return geomean(values) if values else None

    def grid_mean(
        grid: Dict[str, Dict[int, Optional[float]]], k: int
    ) -> Optional[float]:
        values = [
            grid[b][k] for b in benchmarks if grid[b].get(k) is not None
        ]
        return sum(values) / len(values) if values else None

    geomean_speedup = {
        p: {k: grid_geomean(speedup[p], k) for k in stage_counts}
        for p in design_points
    }
    mean_bus_util = {
        p: {k: grid_mean(bus_util[p], k) for k in stage_counts}
        for p in design_points
    }
    comm_op_delay: Dict[str, Dict[int, Optional[float]]] = {}
    for point in design_points:
        comm_op_delay[point] = {}
        for k in stage_counts:
            per_op = [
                delay
                for bench in benchmarks
                for delay in hop_delays[point][bench].get(k, {}).values()
            ]
            comm_op_delay[point][k] = (
                sum(per_op) / len(per_op) if per_op else None
            )

    def fmt(value: Optional[float], pattern: str = "{:.2f}") -> str:
        return "--" if value is None else pattern.format(value)

    headers = ("Benchmark", *(f"K={k}" for k in stage_counts))
    sections = []
    for point in design_points:
        rows = [
            (b, *(fmt(speedup[point][b].get(k)) for k in stage_counts))
            for b in benchmarks
        ]
        rows.append(
            ("GeoMean", *(fmt(geomean_speedup[point][k]) for k in stage_counts))
        )
        sections.append(
            f"-- {point}: speedup over single-threaded --\n"
            + format_table(headers, rows)
        )
    summary_rows = []
    for point in design_points:
        for k in stage_counts:
            summary_rows.append(
                (
                    point,
                    k,
                    fmt(geomean_speedup[point][k]),
                    fmt(comm_op_delay[point][k]),
                    fmt(mean_bus_util[point][k], "{:.1%}"),
                )
            )
    sections.append(
        "-- Summary: geomean speedup, mean per-hop COMM-OP delay, "
        "bus utilization --\n"
        + format_table(
            ("Design point", "K", "Speedup", "COMM-OP delay", "Bus util"),
            summary_rows,
        )
    )
    text = (
        "== Pipeline scaling: K-stage DSWP on K cores ==\n" + "\n\n".join(sections)
    )
    if failures:
        lines = [f"\n\n{len(failures)} cell(s) failed (rendered as --):"]
        for f in failures:
            lines.append(f"  {f.benchmark}/{f.design_point}: {f.error_type}: {f.error}")
        text += "\n".join(lines)
    return ExperimentResult(
        exhibit="pipeline_scaling",
        description="Speedup and communication overheads vs pipeline stage count",
        data={
            "speedup": speedup,
            "geomean_speedup": geomean_speedup,
            "comm_op_delay": comm_op_delay,
            "hop_delays": hop_delays,
            "bus_utilization": bus_util,
            "mean_bus_utilization": mean_bus_util,
            "stage_counts": stage_counts,
            "benchmarks": benchmarks,
            "design_points": design_points,
            "failures": failures,
        },
        text=text,
        failures=failures,
    )
