"""Content-addressed result store: simulation-as-cache.

The simulator is deterministic end to end — identical (program x design
point x config x kernel x faults) cells reproduce
:meth:`~repro.sim.stats.RunStats.fingerprint` byte for byte — so a
completed cell's statistics are a perfect memoization target: any
campaign, query service, or ad-hoc script that names the same cell spec
can reuse the recorded result instead of re-simulating it.

**Addressing.**  A cell's address is :func:`cell_digest`: SHA-256 over the
canonical JSON of ``{"schema": SPEC_SCHEMA_VERSION, "spec": cell.spec()}``.
The spec schema version is part of the preimage, so a future change to
what a spec *means* (the way PR 7 added the ``kernel`` field) bumps every
digest instead of silently colliding versioned specs — the store-level
twin of the campaign ledger's ``schema`` stamp.

**Entries.**  One :class:`StoreEntry` per digest holds the full spec, the
run's fingerprint and cycles, the complete per-thread statistics payload
(rebuildable into :class:`~repro.sim.stats.RunStats`), the JSON-able
subset of ``RunResult.extras``, and provenance (campaign id, attempt,
host, wall-clock time) — everything a later consumer needs to treat the
stored result exactly like a fresh :class:`~repro.harness.runner.RunResult`.

**Durability.**  Writes follow the checkpoint subsystem's discipline:
encode with a magic + version + CRC32 header, write to a
writer-private temporary file, ``fsync``, ``os.replace`` into place, then
fsync the directory.  Two processes racing to publish the same digest
both perform valid atomic renames of identical content — the loser's
rename simply reinstalls the same bytes, so the race needs no lock.
Reads validate the CRC *before* parsing; a torn or bit-flipped entry is
quarantined aside for forensics (never deleted, never returned) and the
digest reports as a miss.

**Maintenance.**  :meth:`ResultStore.verify` scans every entry and
quarantines the corrupt ones; :meth:`ResultStore.gc` clears orphaned
temporary files (and, on request, aged quarantine evidence);
:meth:`ResultStore.stats` summarizes entry counts, bytes, and this
process's hit/miss/corruption counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.harness.campaign import LEDGER_SCHEMA_VERSION, CampaignCell
from repro.harness.runner import RunResult
from repro.obs import runtime as _obs
from repro.sim.stats import COMPONENTS, RunStats, ThreadStats
from repro.store.io import TMP_MARKER, resolve_fs, write_atomic

__all__ = [
    "SPEC_SCHEMA_VERSION",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "ResultStore",
    "StoreCorruptError",
    "StoreEntry",
    "StoreError",
    "cell_digest",
    "result_from_entry",
    "stats_from_payload",
    "stats_to_payload",
]

#: Version of the *cell spec schema* hashed into every digest.  Matches the
#: campaign ledger's record schema: both version the meaning of a spec, so
#: a spec-semantics change (new field, new default) can never alias an
#: old digest.
SPEC_SCHEMA_VERSION = LEDGER_SCHEMA_VERSION

#: First header token of every entry file; never reused across layouts.
STORE_MAGIC = "RPROSTORE"

#: On-disk entry format version.  Readers reject anything else.
STORE_FORMAT_VERSION = 1

#: Suffix quarantined (corrupt) entries are renamed to.
QUARANTINE_SUFFIX = ".quarantined"


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class StoreCorruptError(StoreError):
    """An entry file failed validation (magic/version/length/CRC/decode).

    Callers must treat the file as untrusted: quarantine it and treat the
    digest as a miss.  Never retried in place.
    """


def cell_digest(cell: CampaignCell) -> str:
    """Canonical content address of one campaign cell spec.

    Full SHA-256 hex over compact sorted-key JSON of the versioned spec.
    Distinct from :meth:`CampaignCell.key` (a human-scannable label with 8
    digest hex digits): the store needs the full 256-bit address so grid
    collisions are out of the question at any fleet size.
    """
    preimage = json.dumps(
        {"schema": SPEC_SCHEMA_VERSION, "spec": cell.validate().spec()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Stats payloads
# ----------------------------------------------------------------------


def stats_to_payload(stats: RunStats) -> Dict[str, object]:
    """Plain-data form of a :class:`RunStats` (JSON-able, rebuildable)."""
    return {
        "threads": [t.canonical() for t in stats.threads],
        "host_seconds": stats.host_seconds,
    }


#: ThreadStats counter fields restored verbatim from a payload.  No numeric
#: coercion anywhere in the round trip: the simulator legitimately leaves
#: some counters as floats (fractional stall attribution), and the
#: fingerprint hashes the JSON *rendering* — ``1242.0`` and ``1242`` are
#: different canonical texts, so int-ifying a float would silently change
#: the fingerprint of an otherwise bit-identical result.
_THREAD_FIELDS = (
    "thread_id",
    "cycles",
    "app_instructions",
    "comm_instructions",
    "produces",
    "consumes",
    "queue_full_stall",
    "queue_empty_stall",
    "spin_reissues",
    "ozq_backpressure_events",
    "stream_cache_hits",
    "stream_cache_misses",
    "lines_forwarded",
)


def stats_from_payload(payload: Dict[str, object]) -> RunStats:
    """Rebuild a :class:`RunStats` from :func:`stats_to_payload` output."""
    threads = []
    for t in payload["threads"]:
        fields = {name: t[name] for name in _THREAD_FIELDS}
        components = {name: t["components"][name] for name in COMPONENTS}
        threads.append(ThreadStats(components=components, **fields))
    return RunStats(
        threads=threads, host_seconds=float(payload.get("host_seconds", 0.0))
    )


def _jsonable_extras(extras: Dict[str, object]) -> Dict[str, object]:
    """The JSON-representable subset of ``RunResult.extras``.

    Extras are derived observability payloads (per-hop delays, bus
    utilization), never fingerprint inputs — dropping a non-serializable
    value loses convenience, not correctness.
    """
    out: Dict[str, object] = {}
    for key, value in extras.items():
        try:
            out[key] = json.loads(json.dumps(value))
        except (TypeError, ValueError):
            continue
    return out


@dataclass
class StoreEntry:
    """One stored cell result: address, payloads, and provenance."""

    digest: str
    spec: Dict[str, object]
    fingerprint: str
    cycles: int
    stats: Dict[str, object]
    extras: Dict[str, object] = field(default_factory=dict)
    #: Who produced this entry: ``{"campaign", "attempt", "host", "pid",
    #: "time", "kernel"}`` — observability only, never part of the digest.
    provenance: Dict[str, object] = field(default_factory=dict)
    #: Spec schema version the digest was computed under.
    schema: int = SPEC_SCHEMA_VERSION

    def canonical(self) -> Dict[str, object]:
        return {
            "digest": self.digest,
            "schema": self.schema,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "cycles": self.cycles,
            "stats": self.stats,
            "extras": self.extras,
            "provenance": self.provenance,
        }

    @classmethod
    def from_canonical(cls, doc: Dict[str, object]) -> "StoreEntry":
        return cls(
            digest=doc["digest"],
            spec=doc["spec"],
            fingerprint=doc["fingerprint"],
            cycles=int(doc["cycles"]),
            stats=doc["stats"],
            extras=dict(doc.get("extras") or {}),
            provenance=dict(doc.get("provenance") or {}),
            schema=int(doc.get("schema", SPEC_SCHEMA_VERSION)),
        )


def result_from_entry(entry: StoreEntry) -> RunResult:
    """Materialize a stored entry as a :class:`RunResult` (a store hit).

    The rebuilt stats must reproduce the recorded fingerprint — a semantic
    check on top of the CRC, catching payload-schema drift the checksum
    cannot.  ``extras`` gains ``store_hit``/``store_digest`` markers so
    ledgers and reports can tell a cached result from a fresh simulation.
    """
    stats = stats_from_payload(entry.stats)
    if stats.fingerprint() != entry.fingerprint:
        raise StoreCorruptError(
            f"entry {entry.digest[:16]}: rebuilt stats fingerprint "
            f"{stats.fingerprint()} != recorded {entry.fingerprint}"
        )
    cell = CampaignCell.from_spec(entry.spec)
    design_point = entry.spec["design_point"]
    if cell.kind == "single":
        design_point = "SINGLE"
    extras = dict(entry.extras)
    extras["store_hit"] = True
    extras["store_digest"] = entry.digest
    return RunResult(
        benchmark=entry.spec["benchmark"],
        design_point=design_point,
        cycles=entry.cycles,
        stats=stats,
        machine=None,
        trace=None,
        extras=extras,
    )


# ----------------------------------------------------------------------
# On-disk format
# ----------------------------------------------------------------------
#
# One entry file = one ASCII header line + the JSON body:
#
#     RPROSTORE 1 <body-bytes> <crc32-of-body-hex>\n
#     {...canonical entry json...}\n
#
# The header is fixed-shape and tiny, so validation (magic, version,
# length, CRC) happens before any JSON parsing touches the body.


def _encode_entry(entry: StoreEntry) -> bytes:
    body = json.dumps(entry.canonical(), sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"
    header = (
        f"{STORE_MAGIC} {STORE_FORMAT_VERSION} {len(body)} {zlib.crc32(body):08x}\n"
    ).encode("ascii")
    return header + body


def _decode_entry(data: bytes, source: str = "<bytes>") -> StoreEntry:
    def corrupt(reason: str) -> StoreCorruptError:
        return StoreCorruptError(f"store entry {source}: {reason}")

    newline = data.find(b"\n")
    if newline < 0:
        raise corrupt("no header line (truncated?)")
    try:
        fields = data[:newline].decode("ascii").split(" ")
    except UnicodeDecodeError as exc:
        raise corrupt(f"undecodable header: {exc}") from exc
    if len(fields) != 4:
        raise corrupt(f"malformed header ({len(fields)} fields)")
    magic, version, length, crc = fields
    if magic != STORE_MAGIC:
        raise corrupt(f"bad magic {magic!r}")
    if version != str(STORE_FORMAT_VERSION):
        raise corrupt(
            f"format version {version} unsupported (reader is v{STORE_FORMAT_VERSION})"
        )
    try:
        body_len = int(length)
        expect_crc = int(crc, 16)
    except ValueError as exc:
        raise corrupt(f"malformed header numbers: {exc}") from exc
    body = data[newline + 1 :]
    if len(body) != body_len:
        raise corrupt(f"truncated body ({len(body)} of {body_len} bytes)")
    if zlib.crc32(body) != expect_crc:
        raise corrupt("body CRC mismatch (bit flip or torn write)")
    try:
        doc = json.loads(body)
        entry = StoreEntry.from_canonical(doc)
    except (KeyError, TypeError, ValueError) as exc:
        raise corrupt(f"body failed to decode: {exc}") from exc
    return entry


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class ResultStore:
    """A content-addressed directory of cell results on a (shared) filesystem.

    Layout::

        <root>/STORE_FORMAT           # format marker, written once
        <root>/objects/<d[:2]>/<digest>.entry
        <root>/objects/<d[:2]>/<digest>.entry.quarantined[.N]

    Concurrency: every write is tmp + fsync + atomic rename, so any number
    of local or remote writers may race on the same digest — all outcomes
    leave one valid entry.  Hit/miss/corruption counters are per-instance
    (process-local observability, not shared state).
    """

    def __init__(self, root: str, fs=None) -> None:
        self.root = str(root)
        #: OS facade for every durable path (:mod:`repro.store.io`); the
        #: default is the real filesystem, :mod:`repro.chaos` injects here.
        self.fs = resolve_fs(fs)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.dedupes = 0
        self.fs.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
        marker = os.path.join(self.root, "STORE_FORMAT")
        if not self.fs.exists(marker):
            self._write_atomic(
                marker,
                f"{STORE_MAGIC} {STORE_FORMAT_VERSION}\n".encode("ascii"),
            )

    # -- paths ----------------------------------------------------------

    def entry_path(self, digest: str) -> str:
        return os.path.join(self.root, "objects", digest[:2], digest + ".entry")

    def _iter_entry_paths(self) -> Iterator[str]:
        objects = os.path.join(self.root, "objects")
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".entry"):
                    yield os.path.join(shard_dir, name)

    # -- write ----------------------------------------------------------

    def _write_atomic(self, path: str, data: bytes) -> None:
        self.fs.makedirs(os.path.dirname(path), exist_ok=True)
        write_atomic(path, data, fs=self.fs)

    def put(
        self,
        cell: CampaignCell,
        result: RunResult,
        provenance: Optional[Dict[str, object]] = None,
    ) -> "tuple[StoreEntry, bool]":
        """Publish one completed cell result; returns ``(entry, created)``.

        Dedupe semantics: when a *valid* entry already exists under the
        digest, the write is skipped and the existing entry returned
        (``created=False``) — a second campaign touching the same cell is
        a store hit, not a re-publication.  A fingerprint conflict between
        the existing entry and the new result raises :class:`StoreError`:
        that is a determinism violation, never something to paper over.
        An existing *corrupt* entry is quarantined and replaced.
        """
        digest = cell_digest(cell)
        existing = self._read_valid(digest)
        if existing is not None:
            if existing.fingerprint != result.fingerprint():
                raise StoreError(
                    f"digest {digest[:16]} already stored with fingerprint "
                    f"{existing.fingerprint} but new result has "
                    f"{result.fingerprint()} — determinism violated"
                )
            self.dedupes += 1
            return existing, False
        prov = {
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "time": time.time(),
            "kernel": cell.kernel,
        }
        prov.update(provenance or {})
        entry = StoreEntry(
            digest=digest,
            spec=cell.spec(),
            fingerprint=result.fingerprint(),
            cycles=result.cycles,
            stats=stats_to_payload(result.stats),
            extras=_jsonable_extras(
                {
                    k: v
                    for k, v in result.extras.items()
                    if k not in ("store_hit", "store_digest")
                }
            ),
            provenance=prov,
        )
        self._write_atomic(self.entry_path(digest), _encode_entry(entry))
        self.writes += 1
        return entry, True

    # -- read -----------------------------------------------------------

    def _read_valid(self, digest: str) -> Optional[StoreEntry]:
        """The digest's entry if present and valid; quarantines corruption.

        A decode failure is re-read once before quarantining: a transient
        short read (flaky NFS, a signal-interrupted read) must not cost a
        perfectly good entry its place in the store.  Only corruption that
        *persists* across the second read is quarantined.
        """
        path = self.entry_path(digest)
        entry = None
        for attempt in (0, 1):
            try:
                data = self.fs.read_bytes(path)
            except FileNotFoundError:
                return None
            except OSError as exc:
                raise StoreError(f"cannot read store entry {path}: {exc}") from exc
            try:
                entry = _decode_entry(data, source=path)
                break
            except StoreCorruptError:
                if attempt == 0:
                    continue
                self.corrupt += 1
                self.quarantine(path)
                return None
        if entry.digest != digest:
            # Content under the wrong address: treat as corruption.
            self.corrupt += 1
            self.quarantine(path)
            return None
        return entry

    def get(self, digest: str) -> Optional[StoreEntry]:
        """Look one digest up; counts a hit or miss; quarantines corruption."""
        entry = self._read_valid(digest)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def get_cell(self, cell: CampaignCell) -> Optional[StoreEntry]:
        """Convenience: :meth:`get` keyed by the cell itself."""
        return self.get(cell_digest(cell))

    def contains(self, digest: str) -> bool:
        """Existence probe that counts neither hit nor miss.

        Still validates: a corrupt entry is quarantined and reported absent.
        """
        return self._read_valid(digest) is not None

    def quarantine(self, path: str) -> str:
        """Move a corrupt entry aside for forensics; returns the new path."""
        target = path + QUARANTINE_SUFFIX
        n = 1
        while self.fs.exists(target):
            n += 1
            target = f"{path}{QUARANTINE_SUFFIX}.{n}"
        self.fs.replace(path, target)
        state = _obs.get_state()
        if state is not None:
            # Corruption is the store's highest-signal event: count it and
            # log the evidence path so a fleet operator sees it without
            # grepping worker stderr.
            state.registry.counter(
                "repro_store_quarantines_total",
                "Corrupt entries moved aside for forensics",
            ).inc()
            state.emit("store.quarantine", path=path, evidence=target)
        return target

    # -- maintenance ----------------------------------------------------

    def verify(self) -> Dict[str, object]:
        """Validate every entry; quarantine the corrupt ones.

        Returns ``{"entries", "valid", "corrupt", "quarantined": [paths]}``.
        """
        entries = valid = 0
        quarantined: List[str] = []
        for path in list(self._iter_entry_paths()):
            entries += 1
            try:
                data = self.fs.read_bytes(path)
                entry = _decode_entry(data, source=path)
                if entry.digest != os.path.basename(path)[: -len(".entry")]:
                    raise StoreCorruptError(f"{path}: digest/path mismatch")
                if stats_from_payload(entry.stats).fingerprint() != entry.fingerprint:
                    raise StoreCorruptError(f"{path}: stats/fingerprint mismatch")
            except StoreCorruptError:
                self.corrupt += 1
                quarantined.append(self.quarantine(path))
                continue
            except OSError:
                continue  # raced with another maintenance pass
            valid += 1
        return {
            "entries": entries,
            "valid": valid,
            "corrupt": len(quarantined),
            "quarantined": quarantined,
        }

    def gc(self, quarantine_max_age: Optional[float] = None) -> Dict[str, object]:
        """Collect write droppings; optionally expire quarantine evidence.

        Removes orphaned writer-temporary files (a writer that died between
        open and rename leaves one behind; any live writer's tmp file is
        private to its pid, so removal can only race with that writer's own
        rename — which ``os.replace`` wins).  Quarantined entries are
        *evidence* and kept by default; pass ``quarantine_max_age`` seconds
        to drop the ones older than that.
        """
        removed_tmp: List[str] = []
        removed_quarantine: List[str] = []
        now = time.time()
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if TMP_MARKER in name:
                    try:
                        os.unlink(path)
                        removed_tmp.append(path)
                    except OSError:
                        pass
                elif QUARANTINE_SUFFIX in name and quarantine_max_age is not None:
                    try:
                        if now - os.path.getmtime(path) > quarantine_max_age:
                            os.unlink(path)
                            removed_quarantine.append(path)
                    except OSError:
                        pass
        return {
            "removed_tmp": removed_tmp,
            "removed_quarantined": removed_quarantine,
        }

    def stats(self) -> Dict[str, object]:
        """Store-wide summary plus this instance's traffic counters."""
        entries = 0
        total_bytes = 0
        quarantined = 0
        for dirpath, _dirnames, filenames in os.walk(
            os.path.join(self.root, "objects")
        ):
            for name in filenames:
                path = os.path.join(dirpath, name)
                if name.endswith(".entry"):
                    entries += 1
                    try:
                        total_bytes += os.path.getsize(path)
                    except OSError:
                        pass
                elif QUARANTINE_SUFFIX in name:
                    quarantined += 1
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "quarantined": quarantined,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "dedupes": self.dedupes,
        }
