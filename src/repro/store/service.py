"""``repro serve`` — the async batch-query front end over the result store.

The design-space study as a *service*: clients ask "what is the speedup
of design point X on kernel Y at scale Z" and the server answers from the
content-addressed store (:mod:`repro.store.store`), simulating only on a
miss.  The shape follows the ordered-streaming systems the ROADMAP names
(Prasaad et al.; FastFlow): a single async dispatch plane absorbs heavy
concurrent query traffic, while the actual work — cell simulation — runs
on a decoupled worker farm (a local process pool, or external workers
pulling from the shared :class:`~repro.store.dispatch.WorkQueue`).

Three guarantees:

* **hits never schedule work** — a stored digest is answered straight
  from disk, with only the store read on the critical path;
* **misses simulate exactly once** — concurrent queries naming the same
  digest coalesce onto one in-flight task
  (:attr:`QueryService.inflight`), so a thundering herd of identical
  queries costs one simulation; the store's dedupe semantics extend the
  same property across processes and hosts;
* **stdlib only** — the HTTP layer is a minimal HTTP/1.1 implementation
  over ``asyncio`` streams; no web framework enters the dependency set.

Endpoints::

    GET  /healthz       liveness + store reachability
    GET  /metrics       Prometheus text: serve/dispatch/store/span metrics
    GET  /metrics.json  the same surface as a JSON snapshot
    POST /query         {"queries": [{...}, ...]}  ->  {"answers": [...]}

A query names a cell the way campaign grids do::

    {"benchmark": "wc", "design_point": "HEAVYWT", "kernel": "event",
     "scale": 0.5, "speedup": true}

``trip_count`` pins the iteration count exactly; otherwise ``scale``
multiplies the benchmark's experiment default — the same knob the CLI
grids use.  ``"speedup": true`` additionally resolves the benchmark's
single-threaded baseline cell (through the same store/coalescing path)
and reports ``baseline_cycles / cycles``, the paper's Figure-9 metric.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import multiprocessing
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.campaign import CampaignCell, execute_cell
from repro.harness.runner import RunResult
from repro.obs import runtime as _obs
from repro.obs.events import new_cid
from repro.obs.registry import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.spans import span as _span
from repro.store.dispatch import WorkQueue
from repro.store.store import (
    ResultStore,
    StoreEntry,
    StoreError,
    cell_digest,
    result_from_entry,
)

__all__ = [
    "IO_RETRIES",
    "IO_RETRY_BASE",
    "LocalExecutor",
    "QueryError",
    "QueryService",
    "QueueExecutor",
    "RETRY_AFTER_S",
    "ServeHandle",
    "ServeMetrics",
    "executor_stats",
    "render_prometheus",
    "start_service",
    "sync_gauges",
]

#: Store/queue I/O retry budget: a flaky mount gets this many attempts
#: with exponential backoff (``IO_RETRY_BASE * 2**i`` seconds) before the
#: query degrades to a 503 — bounded, so a dead disk cannot pin queries
#: forever, and generous enough to ride out a transient burst.
IO_RETRIES = 4
IO_RETRY_BASE = 0.05

#: Seconds clients are told to back off when a request is shed.
RETRY_AFTER_S = 1


class QueryError(Exception):
    """A query that cannot be answered (bad spec, failed simulation)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class ServeMetrics:
    """Process-lifetime counters the ``/metrics`` endpoints expose.

    Since the ``repro.obs`` absorption these are registry-backed: every
    field is a :class:`~repro.obs.registry.Counter` living in
    ``self.registry`` (a private registry by default; ``repro serve``
    passes the process-wide one so spans, store, dispatch, and kernel
    metrics share a single ``/metrics`` surface).  Counters compare and
    increment like ints, so ``metrics.hits += 1`` / ``metrics.hits == 1``
    keep their seed-era spelling.

    ``observe_latency`` additionally feeds a fixed-bucket histogram
    (``repro_serve_query_latency_seconds``): zero-duration observations
    land in the smallest bucket, anything beyond the largest boundary in
    ``+Inf`` only, and a snapshot taken mid-burst is always coherent
    (``sum(buckets) == count``).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.queries = reg.counter(
            "repro_serve_queries_total", "Queries received (all outcomes)"
        )
        self.batches = reg.counter(
            "repro_serve_batches_total", "POST /query batches received"
        )
        self.hits = reg.counter(
            "repro_serve_hits_total", "Queries answered straight from the store"
        )
        self.misses = reg.counter(
            "repro_serve_misses_total", "Queries that scheduled a simulation"
        )
        #: Queries that attached to an already-in-flight miss instead of
        #: scheduling their own simulation.
        self.coalesced = reg.counter(
            "repro_serve_coalesced_total",
            "Queries coalesced onto an in-flight miss",
        )
        self.errors = reg.counter(
            "repro_serve_errors_total", "Queries answered with an error"
        )
        #: Requests refused with 503 because the in-flight bound was hit.
        self.shed = reg.counter(
            "repro_serve_shed_total", "Batches shed with 503 (overload)"
        )
        #: Queries that hit their per-query wall-clock timeout (504).
        self.timeouts = reg.counter(
            "repro_serve_timeouts_total", "Queries that hit the 504 budget"
        )
        #: Store/queue I/O errors absorbed by the retry budget (degraded mode).
        self.io_errors = reg.counter(
            "repro_serve_io_errors_total", "Store I/O errors absorbed by retries"
        )
        self.latency = reg.histogram(
            "repro_serve_query_latency_seconds",
            "Wall-clock latency of answered queries",
            buckets=LATENCY_BUCKETS_S,
        )
        self.latency_total_s = 0.0
        self.latency_max_s = 0.0

    def observe_latency(self, seconds: float) -> None:
        self.latency_total_s += seconds
        self.latency_max_s = max(self.latency_max_s, seconds)
        self.latency.observe(seconds)

    def snapshot(self) -> Dict[str, object]:
        queries = int(self.queries)
        avg = self.latency_total_s / queries if queries else 0.0
        return {
            "queries": queries,
            "batches": int(self.batches),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "coalesced": int(self.coalesced),
            "errors": int(self.errors),
            "shed": int(self.shed),
            "timeouts": int(self.timeouts),
            "io_errors": int(self.io_errors),
            "latency_avg_ms": round(avg * 1e3, 3),
            "latency_max_ms": round(self.latency_max_s * 1e3, 3),
            "latency_histogram": self.latency.snapshot(),
        }


# ----------------------------------------------------------------------
# Miss executors
# ----------------------------------------------------------------------


def _execute_spec(
    spec: Dict[str, object],
    wall_clock_budget: Optional[float],
    obs_ctx: Optional[Tuple[str, bool, Optional[str]]] = None,
):
    """Process-pool entry point: run one cell, return a transportable outcome.

    ``obs_ctx`` carries the parent's observability wiring across the
    process boundary: ``(event_log_path, sync, cid)``.  The pool worker
    configures obs for itself (idempotent across cells — same log path
    reuses the open fd) so the ``sim.run`` span lands in the same
    shared-FS log, under the same correlation ID, as the serve-side
    spans.  ``None`` (obs disabled in the parent) costs nothing here.
    """
    cid = None
    if obs_ctx is not None:
        log_path, sync, cid = obs_ctx
        _obs.configure(log_path=log_path, sync=sync)
    cell = CampaignCell.from_spec(spec)
    with _span("sim.run", cid=cid, kernel=cell.kernel, benchmark=cell.benchmark) as sp:
        outcome = execute_cell(cell, wall_clock_budget=wall_clock_budget)
        if isinstance(outcome, RunResult):
            sp.note(
                cycles=outcome.cycles,
                cycles_per_sec=round(outcome.stats.simulated_cycles_per_sec),
            )
        else:
            sp.note(outcome=type(outcome).__name__)
    if isinstance(outcome, RunResult):
        outcome.machine = None
        outcome.trace = None
    return outcome


def _obs_ctx() -> Optional[Tuple[str, bool, Optional[str]]]:
    """The ``(log_path, sync, cid)`` triple a child process needs, or None."""
    state = _obs.get_state()
    if state is None or state.log is None:
        return None
    return state.log.path, state.log.sync, _obs.current_cid()


class LocalExecutor:
    """Resolve misses on an in-host process pool (the single-host farm).

    Simulation is CPU-bound pure Python, so worker *processes* — not
    threads — are what lets concurrent misses use multiple cores.  The
    event loop only ever awaits; publication back to the store happens on
    the loop thread, keeping the store instance single-writer in this
    process.
    """

    def __init__(
        self,
        store: ResultStore,
        jobs: int = 2,
        wall_clock_budget: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.store = store
        self.wall_clock_budget = wall_clock_budget
        # ``forkserver``, not the platform-default ``fork``: the pool
        # starts its workers lazily on the first miss, by which time the
        # server holds open client sockets — plain-forked workers would
        # inherit those fds and keep them alive long after the response,
        # so clients reading to EOF (Connection: close) would never see
        # it.  Forkserver children fork from a clean early-started helper
        # and inherit none of the server's descriptors.
        self.pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs, mp_context=multiprocessing.get_context("forkserver")
        )
        self.jobs = jobs
        #: Cells currently submitted to the pool (the depth gauge's measure:
        #: > ``jobs`` means misses are queueing behind a saturated pool).
        self.depth = 0

    async def resolve(self, cell: CampaignCell, digest: str) -> StoreEntry:
        loop = asyncio.get_running_loop()
        cid = _obs.current_cid()
        self.depth += 1
        try:
            with _span("dispatch.wait", cid=cid, executor="local", digest=digest[:16]):
                outcome = await loop.run_in_executor(
                    self.pool,
                    _execute_spec,
                    cell.spec(),
                    self.wall_clock_budget,
                    _obs_ctx(),
                )
        finally:
            self.depth -= 1
        if not isinstance(outcome, RunResult):
            raise QueryError(
                f"simulation failed: {outcome.error_type}: {outcome.error}",
                status=502,
            )
        state = _obs.get_state()
        if state is not None and outcome.stats is not None:
            # The run happened in a pool child with its own registry; fold
            # its throughput into the serve registry too (metrics only —
            # the child already emitted the ``kernel.run`` event), so one
            # ``/metrics`` scrape covers the kernel family.
            from repro.obs.registry import CYCLES_PER_SEC_BUCKETS

            state.registry.histogram(
                "repro_sim_cycles_per_sec",
                "Simulated cycles per host second, per kernel",
                buckets=CYCLES_PER_SEC_BUCKETS,
                kernel=cell.kernel,
            ).observe(outcome.stats.simulated_cycles_per_sec)
            state.registry.counter(
                "repro_sim_runs_total", "Completed simulation runs",
                kernel=cell.kernel,
            ).inc()
        with _span("store.publish", cid=cid, digest=digest[:16]):
            entry, created = self.store.put(
                cell, outcome, provenance={"campaign": "serve", "attempt": 1}
            )
        if _obs.active():
            _obs.emit(
                "store.publish", cid=cid, digest=digest, created=created,
                fingerprint=entry.fingerprint,
            )
        return entry

    def stats(self) -> Dict[str, object]:
        """Pool shape for the executor gauges (``/metrics``)."""
        return {"kind": "local", "pool_size": self.jobs, "depth": self.depth}

    def close(self) -> None:
        self.pool.shutdown(wait=False, cancel_futures=True)


class QueueExecutor:
    """Resolve misses by enqueueing onto the shared work queue (the fleet).

    The serve process never simulates: it enqueues the miss (idempotent —
    a digest already queued by another dispatcher shares the entry) and
    awaits the store, where some external :func:`~repro.store.dispatch.run_worker`
    publishes the result.  ``timeout`` bounds how long a query will wait
    for the fleet before erroring out.
    """

    def __init__(
        self,
        store: ResultStore,
        queue: WorkQueue,
        poll: float = 0.2,
        timeout: Optional[float] = None,
    ) -> None:
        self.store = store
        self.queue = queue
        self.poll = poll
        self.timeout = timeout

    async def resolve(self, cell: CampaignCell, digest: str) -> StoreEntry:
        cid = _obs.current_cid()
        self.queue.enqueue(cell, cid=cid)
        if _obs.active():
            _obs.emit("dispatch.enqueue", cid=cid, digest=digest, queue=self.queue.root)
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        with _span("dispatch.wait", cid=cid, executor="queue", digest=digest[:16]):
            while True:
                if self.store.contains(digest):
                    entry = self.store.get(digest)
                    if entry is not None:
                        return entry
                failed = self.queue.failed()
                if digest in failed:
                    doc = failed[digest]
                    raise QueryError(
                        f"simulation failed on worker: "
                        f"{doc.get('error_type')}: {doc.get('error')}",
                        status=502,
                    )
                if deadline is not None and time.monotonic() > deadline:
                    raise QueryError(
                        f"no worker produced {digest[:16]} within "
                        f"{self.timeout:g}s (is the fleet running?)",
                        status=504,
                    )
                await asyncio.sleep(self.poll)

    def stats(self) -> Dict[str, object]:
        """Queue shape for the executor gauges (``/metrics``)."""
        out: Dict[str, object] = {"kind": "queue"}
        try:
            out.update(self.queue.stats())
        except OSError:
            out["error"] = "queue stats unavailable"
        return out

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------


def _query_cell(query: Dict[str, object]) -> CampaignCell:
    """Build the cell a query names; :class:`QueryError` on a bad spec."""
    if not isinstance(query, dict):
        raise QueryError("each query must be a JSON object")
    if "benchmark" not in query:
        raise QueryError("query is missing 'benchmark'")
    trip_count = query.get("trip_count")
    if trip_count is None:
        from repro.harness.experiments import EXPERIMENT_TRIPS

        benchmark = str(query["benchmark"])
        if benchmark not in EXPERIMENT_TRIPS:
            raise QueryError(f"unknown benchmark {benchmark!r}")
        scale = float(query.get("scale", 1.0))
        if scale <= 0:
            raise QueryError("'scale' must be positive")
        trip_count = max(32, int(EXPERIMENT_TRIPS[benchmark] * scale))
    try:
        return CampaignCell(
            benchmark=str(query["benchmark"]),
            design_point=str(query.get("design_point", "HEAVYWT")),
            kind=str(query.get("kind", "benchmark")),
            trip_count=int(trip_count),
            overrides=dict(query.get("overrides") or {}),
            stages=query.get("stages"),
            kernel=str(query.get("kernel", "reference")),
        ).validate()
    except (KeyError, TypeError, ValueError) as exc:
        raise QueryError(f"bad query spec: {exc}") from exc


class QueryService:
    """Store-backed query answering with in-flight miss coalescing.

    Degradation knobs (all off by default, zero cost when unused):

    * ``query_timeout`` — per-query wall-clock bound; a query that
      outlives it answers ``504`` instead of hanging its client.
    * ``max_inflight`` — bound on concurrently-processing queries; the
      HTTP layer sheds whole batches beyond it with ``503`` +
      ``Retry-After`` rather than queueing unboundedly.
    * Store reads ride an :data:`IO_RETRIES`-deep backoff budget; while
      errors persist the service reports ``degraded`` (with the cause)
      from ``/healthz`` and keeps answering what it can.
    """

    def __init__(
        self,
        store: ResultStore,
        executor,
        metrics: Optional[ServeMetrics] = None,
        query_timeout: Optional[float] = None,
        max_inflight: Optional[int] = None,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.store = store
        self.executor = executor
        self.metrics = metrics or ServeMetrics()
        self.query_timeout = query_timeout
        self.max_inflight = max_inflight
        #: digest -> the one task resolving it; concurrent queries await it.
        self.inflight: Dict[str, "asyncio.Task[StoreEntry]"] = {}
        #: digest -> cid of the query that *started* the in-flight miss
        #: (observability only; coalesced queries log it as their leader).
        self.inflight_cids: Dict[str, str] = {}
        #: Queries currently being answered (the shedding bound's measure).
        self.active = 0
        #: Drain flag: set by SIGTERM / :meth:`ServeHandle.drain`; new
        #: requests are refused, in-flight ones finish.
        self.draining = False
        #: Why the service is degraded, or ``None`` when healthy.
        self.degraded_cause: Optional[str] = None

    def state(self) -> Tuple[str, Optional[str]]:
        """``(ok|degraded|draining, cause)`` for ``/healthz``."""
        if self.draining:
            return "draining", "shutdown requested; finishing in-flight queries"
        if self.degraded_cause is not None:
            return "degraded", self.degraded_cause
        return "ok", None

    async def _store_get(self, digest: str, cid: Optional[str] = None) -> Optional[StoreEntry]:
        """Store lookup with the I/O retry budget; 503 once it runs dry.

        A flaky read marks the service degraded (``/healthz`` reports the
        cause); the first clean read clears it — degradation tracks the
        *present* disk, not history.
        """
        last: Optional[Exception] = None
        with _span("store.lookup", cid=cid, digest=digest[:16]) as sp:
            for attempt in range(IO_RETRIES):
                try:
                    entry = self.store.get(digest)
                except (OSError, StoreError) as exc:
                    last = exc
                    self.metrics.io_errors += 1
                    self.degraded_cause = f"store I/O failing: {exc}"
                    await asyncio.sleep(IO_RETRY_BASE * (2**attempt))
                    continue
                self.degraded_cause = None
                sp.note(result="hit" if entry is not None else "miss")
                return entry
        raise QueryError(
            f"store unavailable after {IO_RETRIES} attempts: {last}", status=503
        )

    async def resolve_cell(
        self, cell: CampaignCell, cid: Optional[str] = None
    ) -> Tuple[StoreEntry, bool, bool]:
        """Resolve one cell; returns ``(entry, hit, coalesced)``."""
        digest = cell_digest(cell)
        entry = await self._store_get(digest, cid=cid)
        if entry is not None:
            self.metrics.hits += 1
            if _obs.active():
                _obs.emit("store.hit", cid=cid, digest=digest)
            return entry, True, False
        task = self.inflight.get(digest)
        if task is not None:
            self.metrics.coalesced += 1
            if _obs.active():
                _obs.emit(
                    "serve.coalesce",
                    cid=cid,
                    digest=digest,
                    leader=self.inflight_cids.get(digest),
                )
            entry = await asyncio.shield(task)
            return entry, False, True
        self.metrics.misses += 1
        if _obs.active():
            _obs.emit("serve.miss", cid=cid, digest=digest)
            # The ContextVar rides into the task the executor runs under
            # (asyncio copies the ambient context at task creation), so
            # executors — including third-party ones with the plain
            # ``resolve(cell, digest)`` signature — can recover the cid
            # via :func:`repro.obs.runtime.current_cid`.
            token = _obs.set_cid(cid)
            try:
                task = asyncio.ensure_future(self.executor.resolve(cell, digest))
            finally:
                _obs.reset_cid(token)
            if cid is not None:
                self.inflight_cids[digest] = cid
        else:
            task = asyncio.ensure_future(self.executor.resolve(cell, digest))
        self.inflight[digest] = task

        def _retire(t: "asyncio.Task[StoreEntry]") -> None:
            # Deregistered when the TASK finishes — not when a waiter is
            # cancelled (a timed-out query's shielded task keeps running,
            # and later queries must still coalesce onto it).  Touching
            # the exception keeps an abandoned failure out of asyncio's
            # never-retrieved log.
            self.inflight.pop(digest, None)
            self.inflight_cids.pop(digest, None)
            if not t.cancelled():
                t.exception()

        task.add_done_callback(_retire)
        entry = await asyncio.shield(task)
        return entry, False, False

    async def _answer_cell(
        self, query: Dict[str, object], cid: Optional[str] = None
    ) -> Dict[str, object]:
        """The un-guarded answer path (wrapped in the timeout by the caller)."""
        cell = _query_cell(query)
        entry, hit, coalesced = await self.resolve_cell(cell, cid=cid)
        answer: Dict[str, object] = {
            "ok": True,
            "digest": entry.digest,
            "hit": hit,
            "coalesced": coalesced,
            "cycles": entry.cycles,
            "fingerprint": entry.fingerprint,
            "kernel": cell.kernel,
            "trip_count": cell.trip_count,
        }
        if query.get("speedup") and cell.kind != "single":
            baseline = CampaignCell(
                benchmark=cell.benchmark,
                kind="single",
                trip_count=cell.trip_count,
                kernel=cell.kernel,
            ).validate()
            base_entry, base_hit, base_coalesced = await self.resolve_cell(
                baseline, cid=cid
            )
            answer["baseline_cycles"] = base_entry.cycles
            answer["baseline_digest"] = base_entry.digest
            answer["baseline_hit"] = base_hit
            if base_coalesced:
                answer["baseline_coalesced"] = True
            answer["speedup"] = (
                round(base_entry.cycles / entry.cycles, 4)
                if entry.cycles > 0
                else None
            )
        return answer

    async def answer_query(self, query: Dict[str, object]) -> Dict[str, object]:
        """Answer one query dict; never raises — errors become data.

        With obs enabled, every query gets a fresh correlation ID; the
        answer carries it back to the client (``"cid"``) so ``repro obs
        tail --cid`` starts from the HTTP response in hand.
        """
        self.metrics.queries += 1
        self.active += 1
        cid = new_cid() if _obs.active() else None
        started = time.monotonic()
        answer: Optional[Dict[str, object]] = None
        with _span(
            "serve.query", cid=cid, benchmark=query.get("benchmark") if isinstance(query, dict) else None
        ) as sp:
            try:
                if self.draining:
                    raise QueryError("server is draining", status=503)
                if self.query_timeout is None:
                    answer = await self._answer_cell(query, cid=cid)
                else:
                    try:
                        answer = await asyncio.wait_for(
                            self._answer_cell(query, cid=cid),
                            timeout=self.query_timeout,
                        )
                    except asyncio.TimeoutError:
                        # The in-flight task keeps running under its shield:
                        # a later retry can still coalesce onto (or hit) its
                        # result.
                        self.metrics.timeouts += 1
                        raise QueryError(
                            f"query exceeded the {self.query_timeout:g}s budget",
                            status=504,
                        ) from None
            except QueryError as exc:
                self.metrics.errors += 1
                answer = {"ok": False, "error": str(exc), "status": exc.status}
            except Exception as exc:  # noqa: BLE001 - a query must never kill the server
                self.metrics.errors += 1
                answer = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "status": 500,
                }
            finally:
                self.active -= 1
                self.metrics.observe_latency(time.monotonic() - started)
            if cid is not None:
                answer["cid"] = cid
                sp.note(
                    ok=bool(answer.get("ok")),
                    hit=answer.get("hit"),
                    status=answer.get("status"),
                )
        return answer

    async def answer_batch(self, queries: List[Dict[str, object]]) -> List[Dict[str, object]]:
        """Answer a batch concurrently — duplicates coalesce inside the batch."""
        self.metrics.batches += 1
        return list(await asyncio.gather(*(self.answer_query(q) for q in queries)))


def executor_stats(executor) -> Dict[str, object]:
    """The executor's load shape, tolerating executors without ``stats()``."""
    stats_fn = getattr(executor, "stats", None)
    if not callable(stats_fn):
        return {"kind": type(executor).__name__}
    try:
        out = stats_fn()
    except OSError:
        return {"kind": type(executor).__name__, "error": "stats unavailable"}
    return out if isinstance(out, dict) else {"kind": type(executor).__name__}


def sync_gauges(service: QueryService) -> None:
    """Fold the *instantaneous* serve state into the metrics registry.

    Counters update at their call sites; gauges (in-flight misses,
    active queries, executor pool depth, store/queue stats) are
    point-in-time reads, synced at scrape so ``/metrics`` always shows
    the present — load shedding is visible as depth/active climbing
    toward the bound *before* the first 503.
    """
    reg = service.metrics.registry
    reg.gauge(
        "repro_serve_inflight_misses",
        "Distinct digests currently being simulated for queries",
    ).set(len(service.inflight))
    reg.gauge(
        "repro_serve_active_queries", "Queries currently being answered"
    ).set(service.active)
    reg.gauge("repro_serve_draining", "1 while the server drains").set(
        1 if service.draining else 0
    )
    reg.gauge("repro_serve_degraded", "1 while store I/O is failing").set(
        1 if service.degraded_cause is not None else 0
    )
    ex = executor_stats(service.executor)
    kind = str(ex.get("kind", "unknown"))
    for key, val in ex.items():
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            continue
        reg.gauge(
            f"repro_executor_{key}", "Miss-executor load gauge", kind=kind
        ).set(val)
    try:
        store_stats = service.store.stats()
    except OSError:
        store_stats = {}
    for key, val in store_stats.items():
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            continue
        reg.gauge(f"repro_store_{key}", "Result-store stats field").set(val)


def render_prometheus(service: QueryService) -> str:
    """The ``GET /metrics`` body: registry state in Prometheus text format."""
    sync_gauges(service)
    return service.metrics.registry.render_prometheus()


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 over asyncio streams
# ----------------------------------------------------------------------

#: Refuse larger request bodies (a query batch has no business being 16 MiB).
MAX_BODY_BYTES = 16 * 1024 * 1024


def _http_response(
    status: int,
    payload: Dict[str, object],
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 413: "Payload Too Large",
               500: "Internal Server Error", 503: "Service Unavailable",
               504: "Gateway Timeout"}
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + body


def _http_text_response(status: int, text: str, content_type: str) -> bytes:
    """Non-JSON response (the Prometheus exposition body)."""
    body = text.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} OK\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    return head + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, bytes]:
    """Parse method, path, and body from one HTTP/1.1 request."""
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ValueError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError as exc:
                raise ValueError("bad Content-Length") from exc
    if content_length > MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


@dataclass
class ServeHandle:
    """A running server: address, service internals, and shutdown."""

    server: asyncio.AbstractServer
    service: QueryService
    host: str
    port: int
    metrics: ServeMetrics = field(default_factory=ServeMetrics)

    async def drain(self, grace: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight, close.

        The SIGTERM path.  Marks the service draining (``/healthz`` says
        so; new queries get 503), stops accepting connections, waits up to
        ``grace`` seconds for active queries to complete, then closes.
        Returns ``True`` when everything in flight finished in time.
        """
        self.service.draining = True
        self.server.close()
        deadline = time.monotonic() + grace
        while self.service.active > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = self.service.active == 0
        await self.close()
        return drained

    async def close(self) -> None:
        self.server.close()
        await self.server.wait_closed()
        close = getattr(self.service.executor, "close", None)
        if close is not None:
            close()


async def _handle_client(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            method, path, body = await _read_request(reader)
        except (ValueError, ConnectionError, asyncio.IncompleteReadError):
            writer.write(_http_response(400, {"ok": False, "error": "bad request"}))
            return
        if method == "GET" and path == "/healthz":
            state, cause = service.state()
            health: Dict[str, object] = {
                "ok": state == "ok",
                "state": state,
                "store": service.store.root,
                "inflight": len(service.inflight),
                "active": service.active,
            }
            if cause is not None:
                health["cause"] = cause
            # Health stays a 200 even degraded/draining: the prober wants
            # the diagnosis, not a connection slammed in its face.
            writer.write(_http_response(200, health))
        elif method == "GET" and path == "/metrics":
            # Prometheus text exposition: the whole registry — serve
            # counters + latency histograms, span self-time, executor
            # pool depth, in-flight gauges, store/queue stats.
            writer.write(
                _http_text_response(
                    200,
                    render_prometheus(service),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            )
        elif method == "GET" and path == "/metrics.json":
            sync_gauges(service)
            writer.write(
                _http_response(
                    200,
                    {
                        "ok": True,
                        "serve": service.metrics.snapshot(),
                        "store": service.store.stats(),
                        "executor": executor_stats(service.executor),
                        "inflight": len(service.inflight),
                        "active": service.active,
                        "registry": service.metrics.registry.snapshot(),
                    },
                )
            )
        elif method == "POST" and path == "/query":
            try:
                doc = json.loads(body or b"{}")
            except json.JSONDecodeError:
                writer.write(
                    _http_response(400, {"ok": False, "error": "body is not JSON"})
                )
                return
            if isinstance(doc, dict) and "queries" in doc:
                queries = doc["queries"]
            elif isinstance(doc, list):
                queries = doc
            else:
                queries = [doc]
            if not isinstance(queries, list):
                writer.write(
                    _http_response(
                        400, {"ok": False, "error": "'queries' must be a list"}
                    )
                )
                return
            if service.draining:
                writer.write(
                    _http_response(
                        503,
                        {"ok": False, "error": "server is draining"},
                        headers={"Retry-After": str(RETRY_AFTER_S)},
                    )
                )
                return
            if (
                service.max_inflight is not None
                and service.active + len(queries) > service.max_inflight
            ):
                # Load shedding: refuse the whole batch now, cheaply, with
                # a back-off hint — never queue unboundedly and never hang.
                service.metrics.shed += 1
                writer.write(
                    _http_response(
                        503,
                        {
                            "ok": False,
                            "error": (
                                f"overloaded: {service.active} quer(ies) in "
                                f"flight (bound {service.max_inflight})"
                            ),
                            "retry_after_s": RETRY_AFTER_S,
                        },
                        headers={"Retry-After": str(RETRY_AFTER_S)},
                    )
                )
                return
            answers = await service.answer_batch(queries)
            ok = all(a.get("ok") for a in answers)
            writer.write(_http_response(200, {"ok": ok, "answers": answers}))
        else:
            writer.write(
                _http_response(
                    404, {"ok": False, "error": f"no route {method} {path}"}
                )
            )
    finally:
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_service(
    store: ResultStore,
    executor,
    host: str = "127.0.0.1",
    port: int = 0,
    query_timeout: Optional[float] = None,
    max_inflight: Optional[int] = None,
    metrics: Optional[ServeMetrics] = None,
) -> ServeHandle:
    """Start the HTTP front end; ``port=0`` picks a free port.

    Returns a :class:`ServeHandle` whose ``port`` is the bound port and
    whose :meth:`~ServeHandle.close` stops the server and the executor.
    ``query_timeout`` / ``max_inflight`` arm the degradation knobs
    (:class:`QueryService`); both default off.  ``metrics`` lets the
    caller supply registry-shared counters (``repro serve`` passes ones
    bound to the process-wide obs registry).
    """
    metrics = metrics if metrics is not None else ServeMetrics()
    service = QueryService(
        store,
        executor,
        metrics,
        query_timeout=query_timeout,
        max_inflight=max_inflight,
    )

    async def handler(reader, writer):
        await _handle_client(service, reader, writer)

    server = await asyncio.start_server(handler, host=host, port=port)
    bound_port = server.sockets[0].getsockname()[1]
    return ServeHandle(
        server=server, service=service, host=host, port=bound_port, metrics=metrics
    )


async def serve_forever(
    store_root: str,
    host: str = "127.0.0.1",
    port: int = 8763,
    jobs: int = 2,
    queue_root: Optional[str] = None,
    wall_clock_budget: Optional[float] = None,
    queue_timeout: Optional[float] = None,
    query_timeout: Optional[float] = None,
    max_inflight: Optional[int] = None,
    drain_grace: float = 30.0,
    ready: Optional[Callable[[ServeHandle], None]] = None,
    obs_log: Optional[str] = None,
) -> None:
    """CLI entry: build store + executor, serve until SIGTERM or cancel.

    SIGTERM triggers a graceful drain (:meth:`ServeHandle.drain`): the
    listener closes, in-flight queries get up to ``drain_grace`` seconds
    to finish, new ones are shed with 503 — never a mid-response cut.

    ``obs_log`` (the ``--obs-log`` flag) arms ``repro.obs``: correlated
    events/spans append to that shared JSONL path, and ``ServeMetrics``
    binds to the process-wide registry so ``GET /metrics`` covers spans
    and everything else the process observes.  Left ``None``, nothing is
    recorded and the serve path keeps its zero-overhead shape.
    """
    metrics: Optional[ServeMetrics] = None
    if obs_log is not None:
        state = _obs.configure(log_path=obs_log)
        metrics = ServeMetrics(registry=state.registry)
        state.emit("serve.start", host=host, port=port, store=store_root)
    store = ResultStore(store_root)
    if queue_root is not None:
        executor = QueueExecutor(
            store, WorkQueue(queue_root), timeout=queue_timeout
        )
    else:
        executor = LocalExecutor(store, jobs=jobs, wall_clock_budget=wall_clock_budget)
    handle = await start_service(
        store,
        executor,
        host=host,
        port=port,
        query_timeout=query_timeout,
        max_inflight=max_inflight,
        metrics=metrics,
    )
    if ready is not None:
        ready(handle)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        sigterm_wired = True
    except (NotImplementedError, RuntimeError):
        sigterm_wired = False  # non-UNIX loop; cancellation still works
    try:
        await stop.wait()  # until SIGTERM (or this task is cancelled)
        await handle.drain(grace=drain_grace)
    finally:
        if sigterm_wired:
            loop.remove_signal_handler(signal.SIGTERM)
        await handle.close()
        if _obs.active():
            _obs.emit("serve.stop", queries=int(metrics.queries) if metrics else None)
