"""``repro.store`` — content-addressed results, fleet dispatch, serving.

Three layers over the campaign harness:

* :mod:`repro.store.store` — the on-disk, content-addressed result store
  (digest over the canonical cell spec -> full ``RunStats`` payload with
  CRC-validated atomic entries and corruption quarantine);
* :mod:`repro.store.dispatch` — a shared-filesystem work queue with
  atomic lease files, heartbeat renewal, and stale-lease reclamation, so
  any number of hosts can drain one campaign;
* :mod:`repro.store.service` — ``repro serve``, the asyncio batch-query
  front end that answers from the store and coalesces duplicate
  in-flight misses.
"""

from repro.store.dispatch import (
    DEFAULT_LEASE_TTL,
    Lease,
    LeaseLostError,
    WorkQueue,
    default_worker_id,
    dispatch_cells,
    run_worker,
)
from repro.store.service import (
    LocalExecutor,
    QueryService,
    QueueExecutor,
    ServeMetrics,
    start_service,
)
from repro.store.store import (
    SPEC_SCHEMA_VERSION,
    ResultStore,
    StoreCorruptError,
    StoreEntry,
    StoreError,
    cell_digest,
    result_from_entry,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "Lease",
    "LeaseLostError",
    "LocalExecutor",
    "QueryService",
    "QueueExecutor",
    "ResultStore",
    "SPEC_SCHEMA_VERSION",
    "ServeMetrics",
    "StoreCorruptError",
    "StoreEntry",
    "StoreError",
    "WorkQueue",
    "cell_digest",
    "default_worker_id",
    "dispatch_cells",
    "result_from_entry",
    "run_worker",
    "start_service",
]
