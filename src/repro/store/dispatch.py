"""Multi-host cell dispatch over a shared-filesystem work queue.

The campaign pool (:mod:`repro.harness.campaign`) is single-host: one
parent process spawns workers.  Fleet scale needs the inverse shape —
any number of hosts mounting one filesystem, each pulling cells from a
shared queue and publishing results to the content-addressed store
(:mod:`repro.store.store`), with no coordinator process at all.  The
design borrows the lock-free split the streaming literature uses between
dispatch and worker farms (FastFlow's accelerators; Prasaad et al.'s
ordered-stream workers): the *queue* holds only specs, the *store* is
the only result channel, and every coordination primitive is an atomic
filesystem rename.

Layout::

    <queue>/pending/<digest>.json     # one cell spec per file
    <queue>/leases/<digest>.lease     # atomic claim + heartbeat
    <queue>/failed/<digest>.json      # deterministic failures, diagnosed

**Claiming** is ``open(O_CREAT | O_EXCL)`` on the lease file: exactly one
worker wins, no lock server.  A lease carries the worker id, a random
token, and a heartbeat timestamp; the holder renews it by atomically
rewriting the file.  A lease whose heartbeat is older than ``lease_ttl``
is *stale* — its worker crashed or lost the host — and any other worker
may reclaim it: rename the stale lease aside (``os.replace`` has exactly
one winner, so two reclaimers cannot both proceed), then claim fresh.
The token guards the other half of the race: a zombie holder's next
heartbeat sees a token it does not own and gets :class:`LeaseLostError`
instead of silently stomping the new owner's lease.

**Crash safety** composes with the rest of the system: a worker killed
mid-cell leaves a stale lease (reclaimed; the cell re-runs — it never
published, so nothing is lost) or a published-but-uncompleted cell (the
reclaiming worker sees the store entry and completes without re-running
— publication is the commit point).  Results are deduped by the store's
own semantics, so even two workers racing the same cell converge on one
entry with one fingerprint.

``clock`` is injectable (default :func:`time.time`) so staleness and
reclamation are unit-testable without real waiting — the same discipline
as the campaign ledger's ``sleep`` hook.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.harness.campaign import (
    LEDGER_SCHEMA_VERSION,
    CampaignCell,
    CampaignLedger,
    CampaignReport,
    execute_cell,
)
from repro.harness.runner import FailedRun, RunResult, TimedOutRun
from repro.obs import runtime as _obs
from repro.obs.spans import span as _span
from repro.store.io import resolve_fs, write_atomic
from repro.store.store import ResultStore, cell_digest, result_from_entry

__all__ = [
    "Lease",
    "LeaseLostError",
    "WorkQueue",
    "dispatch_cells",
    "run_worker",
]

#: Default seconds without a heartbeat before a lease counts as stale.
DEFAULT_LEASE_TTL = 60.0


class LeaseLostError(RuntimeError):
    """A heartbeat found the lease gone or owned by another worker.

    The holder must stop treating the cell as its own: a reclaimer took
    over after the holder's heartbeats went stale.  Any result it still
    produces may be published — the store dedupes — but the lease and
    pending entry now belong to someone else.
    """


@dataclass
class Lease:
    """One worker's claim on one queued cell."""

    digest: str
    path: str
    worker: str
    token: str
    acquired_at: float


class WorkQueue:
    """A shared-filesystem queue of campaign cells with crash-safe leases."""

    def __init__(
        self,
        root: str,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        clock: Optional[Callable[[], float]] = None,
        fs=None,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        self.root = str(root)
        self.lease_ttl = float(lease_ttl)
        #: OS facade for every durable path (:mod:`repro.store.io`); the
        #: default is the real filesystem, :mod:`repro.chaos` injects here.
        self.fs = resolve_fs(fs)
        #: Staleness clock.  Defaults to the facade's (so chaos clock skew
        #: reaches lease TTL judgements); still separately injectable for
        #: tests that step time by hand.
        self.clock: Callable[[], float] = clock if clock is not None else self.fs.clock
        self.pending_dir = os.path.join(self.root, "pending")
        self.leases_dir = os.path.join(self.root, "leases")
        self.failed_dir = os.path.join(self.root, "failed")
        for d in (self.pending_dir, self.leases_dir, self.failed_dir):
            self.fs.makedirs(d, exist_ok=True)

    # -- enqueue --------------------------------------------------------

    def enqueue(self, cell: CampaignCell, cid: Optional[str] = None) -> Tuple[str, bool]:
        """Add one cell; returns ``(digest, created)``.  Idempotent.

        The pending file is the *only* record that the cell exists, and
        callers acknowledge the enqueue to their own callers (a dispatcher
        starts awaiting the digest) — so the write carries the full
        directory-fsync discipline: a power loss after ``enqueue`` returns
        must never silently unqueue the cell.

        ``cid`` rides along in the pending doc: it is how a serve query's
        correlation ID crosses hosts to the worker that eventually runs
        the cell.  It is observability-only — never part of the digest,
        so an enqueue with a different cid still dedupes.
        """
        digest = cell_digest(cell)
        path = os.path.join(self.pending_dir, digest + ".json")
        if self.fs.exists(path):
            return digest, False
        doc = {
            "digest": digest,
            "schema": LEDGER_SCHEMA_VERSION,
            "spec": cell.spec(),
            "enqueued_at": self.clock(),
        }
        if cid is not None:
            doc["cid"] = cid
        write_atomic(
            path,
            (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"),
            fs=self.fs,
        )
        return digest, True

    def pending(self) -> List[str]:
        """Digests currently queued (leased or not), oldest enqueue first."""
        entries = []
        for name in os.listdir(self.pending_dir):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.pending_dir, name)
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue  # completed while listing
            entries.append((mtime, name[: -len(".json")]))
        return [digest for _, digest in sorted(entries)]

    def load_doc(self, digest: str) -> Dict[str, object]:
        """The queued cell's full pending/failed doc (spec + cid + times)."""
        for d in (self.pending_dir, self.failed_dir):
            path = os.path.join(d, digest + ".json")
            try:
                doc = json.loads(self.fs.read_bytes(path).decode("utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(doc, dict) and "spec" in doc:
                return doc
        raise KeyError(f"digest {digest[:16]} not queued")

    def load_cell(self, digest: str) -> CampaignCell:
        """Rebuild the queued cell's spec (from pending or failed)."""
        return CampaignCell.from_spec(self.load_doc(digest)["spec"])

    # -- leases ---------------------------------------------------------

    def _lease_path(self, digest: str) -> str:
        return os.path.join(self.leases_dir, digest + ".lease")

    def _read_lease(self, path: str) -> Optional[Dict[str, object]]:
        try:
            return json.loads(self.fs.read_bytes(path).decode("utf-8"))
        except (OSError, ValueError):
            # Missing, or caught mid-replace: treat as unreadable-now.
            return None

    def _try_acquire(self, digest: str, worker: str) -> Optional[Lease]:
        """O_EXCL-create the lease file; exactly one caller can win."""
        path = self._lease_path(digest)
        token = os.urandom(8).hex()
        now = self.clock()
        body = json.dumps(
            {"digest": digest, "worker": worker, "token": token, "time": now},
            sort_keys=True,
        ).encode("utf-8")
        try:
            fd = self.fs.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return None
        try:
            self.fs.write(fd, body)
            self.fs.fsync(fd)
        finally:
            self.fs.close(fd)
        return Lease(
            digest=digest, path=path, worker=worker, token=token, acquired_at=now
        )

    def _reclaim_stale(self, digest: str) -> bool:
        """Break a stale lease.  True when this caller won the break.

        The break is a rename: ``os.replace`` moves the stale file to a
        caller-private tombstone, so of N concurrent reclaimers exactly
        one succeeds (the others' renames raise ``FileNotFoundError``).
        The tombstone is then removed — the evidence that matters (who
        held it, when it last beat) lives in worker logs, not the queue.
        """
        path = self._lease_path(digest)
        doc = self._read_lease(path)
        if doc is None:
            # Missing — or present but unreadable: a claimer that died
            # between its O_EXCL create and the body write leaves a torn
            # lease that will never heartbeat.  Age it by file mtime so it
            # becomes reclaimable after one TTL (younger could still be a
            # live claimer between create and write); without this, a torn
            # lease wedges its digest forever (found by the chaos drill).
            try:
                age = self.clock() - os.path.getmtime(path)
            except OSError:
                return False  # truly gone
            if age <= self.lease_ttl:
                return False
        else:
            beat = float(doc.get("time", 0.0))
            if self.clock() - beat <= self.lease_ttl:
                return False
        tombstone = f"{path}.stale.{os.getpid()}.{threading.get_ident()}"
        try:
            self.fs.replace(path, tombstone)
        except FileNotFoundError:
            return False  # another reclaimer won
        try:
            self.fs.unlink(tombstone)
        except OSError:
            pass
        state = _obs.get_state()
        if state is not None:
            state.registry.counter(
                "repro_dispatch_lease_reclaims_total",
                "Stale leases broken by this process",
            ).inc()
            state.emit(
                "dispatch.lease_reclaimed",
                digest=digest,
                holder=(doc or {}).get("worker"),
            )
        return True

    def claim(self, worker: Optional[str] = None) -> Optional[Lease]:
        """Claim the oldest claimable pending cell, or ``None``.

        Skips digests under a live lease; breaks stale leases first.  A
        claim can race completion (the pending file vanishing between
        listing and locking) — the worker loop handles that by checking
        the store after claiming.
        """
        worker = worker or default_worker_id()
        for digest in self.pending():
            lease = self._try_acquire(digest, worker)
            if lease is not None:
                return lease
            if self._reclaim_stale(digest):
                lease = self._try_acquire(digest, worker)
                if lease is not None:
                    return lease
        return None

    def heartbeat(self, lease: Lease) -> None:
        """Renew the lease's staleness clock; raise if ownership was lost."""
        doc = self._read_lease(lease.path)
        if doc is None or doc.get("token") != lease.token:
            raise LeaseLostError(
                f"lease on {lease.digest[:16]} lost (reclaimed after stale "
                f"heartbeats or completed elsewhere)"
            )
        doc["time"] = self.clock()
        # dir_sync=False: a lease renewal rolled back by power loss only
        # makes the heartbeat *look* older, and the token fence already
        # protects the holder against the resulting early reclamation.
        write_atomic(
            lease.path,
            (json.dumps(doc, sort_keys=True) + "\n").encode(),
            fs=self.fs,
            dir_sync=False,
        )

    def complete(self, lease: Lease) -> None:
        """Retire a finished cell: drop its pending entry and lease."""
        for path in (
            os.path.join(self.pending_dir, lease.digest + ".json"),
            lease.path,
        ):
            try:
                self.fs.unlink(path)
            except OSError:
                pass
        # Make the retirement durable: if the pending-entry unlink reverts
        # on power loss the cell merely re-runs (the store dedupes), but
        # syncing here keeps "completed" meaning completed on the platter.
        self.fs.fsync_dir(self.pending_dir)

    def release(self, lease: Lease) -> None:
        """Give a claimed cell back (still pending, claimable by anyone)."""
        try:
            self.fs.unlink(lease.path)
        except OSError:
            pass

    def fail(self, lease: Lease, outcome) -> None:
        """Move a deterministically-failed cell to ``failed/`` (diagnosed).

        The spec travels with the diagnosis so operators can requeue by
        renaming the file back into ``pending/``.
        """
        pending = os.path.join(self.pending_dir, lease.digest + ".json")
        target = os.path.join(self.failed_dir, lease.digest + ".json")
        doc: Dict[str, object] = {"digest": lease.digest, "failed_at": self.clock()}
        try:
            doc["spec"] = json.loads(self.fs.read_bytes(pending).decode("utf-8"))[
                "spec"
            ]
        except (OSError, ValueError, KeyError):
            pass
        doc["error_type"] = getattr(outcome, "error_type", type(outcome).__name__)
        doc["error"] = getattr(outcome, "error", str(outcome))
        # Fully dir-synced: the diagnosis is the only copy of the evidence
        # once the pending entry is retired below.
        write_atomic(
            target, (json.dumps(doc, sort_keys=True) + "\n").encode(), fs=self.fs
        )
        self.complete(lease)

    def failed(self) -> Dict[str, Dict[str, object]]:
        """Diagnosed failures by digest."""
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(os.listdir(self.failed_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(
                    os.path.join(self.failed_dir, name), "r", encoding="utf-8"
                ) as fh:
                    out[name[: -len(".json")]] = json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue
        return out

    def stats(self) -> Dict[str, object]:
        leases = [n for n in os.listdir(self.leases_dir) if n.endswith(".lease")]
        stale = 0
        now = self.clock()
        for name in leases:
            doc = self._read_lease(os.path.join(self.leases_dir, name))
            if doc is not None and now - float(doc.get("time", 0.0)) > self.lease_ttl:
                stale += 1
        return {
            "root": self.root,
            "pending": len(self.pending()),
            "leased": len(leases),
            "stale_leases": stale,
            "failed": len(self.failed()),
            "lease_ttl": self.lease_ttl,
        }


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------


class _HeartbeatThread(threading.Thread):
    """Renews one lease in the background while the cell simulates.

    Failures are *surfaced*, not swallowed: ``lost`` is the fence the
    worker loop checks.  It is set immediately on :class:`LeaseLostError`
    (another worker holds the cell now), and also when heartbeat I/O keeps
    erroring for longer than the lease TTL — at that point the lease is
    stale from every other worker's point of view whether or not the
    renewal bytes ever landed, so the holder must assume it was reclaimed.
    A worker that keeps simulating after ``lost`` is a zombie: its result
    may still be published (the store dedupes), but it must not complete,
    fail, or release the queue entry it no longer owns.
    """

    def __init__(self, queue: WorkQueue, lease: Lease, every: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{lease.digest[:8]}")
        self.queue = queue
        self.lease = lease
        self.every = every
        self.lost = threading.Event()
        #: Transient heartbeat I/O errors absorbed so far (observability).
        self.io_failures = 0
        self._last_ok = queue.clock()
        # NB: not named _stop — threading.Thread owns that attribute and
        # calls it internally when the thread finishes.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.every):
            try:
                self.queue.heartbeat(self.lease)
            except LeaseLostError:
                self.lost.set()
                self._observe_fence("lease_lost")
                return
            except OSError:
                # A single hiccup is absorbed by the TTL; a run of them
                # longer than the TTL means the lease has gone stale on
                # disk and anyone may have reclaimed it — fence ourselves.
                self.io_failures += 1
                state = _obs.get_state()
                if state is not None:
                    state.registry.counter(
                        "repro_dispatch_heartbeat_io_failures_total",
                        "Heartbeat renewals that errored (absorbed by the TTL)",
                    ).inc()
                if self.queue.clock() - self._last_ok > self.queue.lease_ttl:
                    self.lost.set()
                    self._observe_fence("io_stale")
                    return
                continue
            self._last_ok = self.queue.clock()

    def _observe_fence(self, reason: str) -> None:
        state = _obs.get_state()
        if state is not None:
            state.registry.counter(
                "repro_dispatch_heartbeat_fences_total",
                "Workers self-fenced after losing their lease",
                reason=reason,
            ).inc()
            state.emit(
                "dispatch.heartbeat_fenced",
                digest=self.lease.digest,
                worker=self.lease.worker,
                reason=reason,
                io_failures=self.io_failures,
            )

    def stop(self) -> None:
        self._halt.set()


def run_worker(
    store: ResultStore,
    queue: WorkQueue,
    worker_id: Optional[str] = None,
    poll: float = 0.5,
    heartbeat_every: Optional[float] = None,
    max_cells: Optional[int] = None,
    drain: bool = True,
    wall_clock_budget: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, int]:
    """Pull cells from the queue until it drains (or ``max_cells``).

    For each claimed cell: a store hit (published by a faster worker or a
    previous campaign) completes immediately; otherwise the cell runs via
    the campaign executor, publishes to the store — the commit point —
    and then retires its queue entry.  Deterministic failures are filed
    under ``failed/``; transient ones (watchdog timeouts) release the
    lease for any worker to retry.  Heartbeats renew the lease from a
    background thread every ``heartbeat_every`` seconds (default: a third
    of the queue's TTL) so long cells are never reclaimed mid-run.

    Returns counters: ``{"ran", "store_hits", "failed", "released",
    "lease_lost"}``.
    """
    worker_id = worker_id or default_worker_id()
    if heartbeat_every is None:
        heartbeat_every = queue.lease_ttl / 3.0
    counters = {
        "ran": 0,
        "store_hits": 0,
        "failed": 0,
        "released": 0,
        "lease_lost": 0,
        "io_errors": 0,
    }

    def bump(name: str) -> None:
        # The dict is the return contract; the registry mirror is what a
        # scrape (or an obs snapshot dump) sees while the loop is live.
        counters[name] += 1
        state = _obs.get_state()
        if state is not None:
            state.registry.counter(
                f"repro_worker_{name}_total", "run_worker outcome counter"
            ).inc()

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    while max_cells is None or (counters["ran"] + counters["store_hits"]) < max_cells:
        lease = queue.claim(worker_id)
        if lease is None:
            if drain and not queue.pending():
                break
            if not drain:
                break
            sleep(poll)  # everything pending is leased elsewhere; wait
            continue
        cid: Optional[str] = None
        doc: Optional[Dict[str, object]] = None
        if _obs.active():
            # Eager doc read only when observing: the cid travels in the
            # pending doc and the claim event should carry it.  Disabled,
            # the store-hit path keeps its seed-era zero-read shape.
            try:
                doc = queue.load_doc(lease.digest)
                raw_cid = doc.get("cid")
                cid = raw_cid if isinstance(raw_cid, str) else None
            except KeyError:
                doc = None
            _obs.emit(
                "worker.claim", cid=cid, digest=lease.digest, worker=worker_id
            )
        if store.contains(lease.digest):
            # Published by someone else (or a prior campaign) after it was
            # enqueued: completing without running IS the dedupe.
            bump("store_hits")
            queue.complete(lease)
            if _obs.active():
                _obs.emit(
                    "worker.store_hit", cid=cid, digest=lease.digest, worker=worker_id
                )
            note(f"[{worker_id}] {lease.digest[:16]} already stored; completed")
            continue
        if doc is None:
            try:
                doc = queue.load_doc(lease.digest)
            except KeyError:
                queue.release(lease)
                continue
        cell = CampaignCell.from_spec(doc["spec"])
        beat = _HeartbeatThread(queue, lease, heartbeat_every)
        beat.start()

        def fence() -> Optional[str]:
            # Probed by the kernel at its wall-clock cadence: a fenced
            # zombie stops simulating within one check interval instead of
            # burning the whole cell before discovering the lease is gone.
            if beat.lost.is_set():
                return f"lease on {lease.digest[:16]} lost (fenced heartbeat)"
            return None

        cid_token = _obs.set_cid(cid) if cid is not None else None
        try:
            with _span(
                "sim.run",
                cid=cid,
                kernel=cell.kernel,
                benchmark=cell.benchmark,
                worker=worker_id,
            ):
                outcome = execute_cell(
                    cell, wall_clock_budget=wall_clock_budget, abort=fence
                )
        finally:
            if cid_token is not None:
                _obs.reset_cid(cid_token)
            beat.stop()
            beat.join(timeout=heartbeat_every + 1.0)
        if beat.lost.is_set():
            bump("lease_lost")
            note(f"[{worker_id}] lease lost on {lease.digest[:16]}; discarding")
            continue
        if isinstance(outcome, RunResult):
            try:
                with _span("store.publish", cid=cid, digest=lease.digest[:16]):
                    store.put(
                        cell,
                        outcome,
                        provenance={
                            "campaign": "queue",
                            "worker": worker_id,
                            "attempt": 1,
                        },
                    )
            except OSError as exc:
                # Publish failed (ENOSPC, EIO, mount hiccup): the result is
                # *not* acknowledged, so give the cell back for any worker
                # — possibly this one, next claim — to retry.
                queue.release(lease)
                bump("io_errors")
                bump("released")
                note(f"[{worker_id}] publish failed for {cell.key()}: {exc}; released")
                continue
            queue.complete(lease)
            bump("ran")
            if _obs.active():
                _obs.emit(
                    "store.publish",
                    cid=cid,
                    digest=lease.digest,
                    worker=worker_id,
                    cycles=outcome.cycles,
                    fingerprint=outcome.fingerprint(),
                )
            note(
                f"[{worker_id}] ran {cell.key()} "
                f"({outcome.cycles} cycles, fp {outcome.fingerprint()})"
            )
        elif isinstance(outcome, TimedOutRun):
            queue.release(lease)
            bump("released")
            note(f"[{worker_id}] released {cell.key()} after timeout")
        else:
            queue.fail(lease, outcome)
            bump("failed")
            if _obs.active():
                _obs.emit(
                    "worker.failed",
                    cid=cid,
                    digest=lease.digest,
                    worker=worker_id,
                    error_type=outcome.error_type,
                )
            note(f"[{worker_id}] failed {cell.key()}: {outcome.error_type}")
    return counters


# ----------------------------------------------------------------------
# Store-first external dispatch (the campaign's --workers-external path)
# ----------------------------------------------------------------------


def dispatch_cells(
    cells: Iterable[CampaignCell],
    store: ResultStore,
    queue: WorkQueue,
    ledger_path: Optional[str] = None,
    poll: float = 0.2,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> CampaignReport:
    """Store-first scheduling onto external workers: skip hits, enqueue misses.

    The multi-host half of ``campaign run --store --workers-external``:
    no cell is simulated in this process.  Hits are answered from the
    store immediately; misses are enqueued (idempotently — concurrent
    dispatchers share one queue entry per digest) and awaited until their
    entries appear, workers file them under ``failed/``, or ``timeout``
    passes.  Outcomes are bit-identical to running the same grid locally:
    the store only ever holds fingerprint-checked results.

    Every resolution is journalled to ``ledger_path`` in the campaign
    ledger dialect, so ``campaign status`` works on dispatched campaigns
    unchanged.
    """
    cells = [c.validate() for c in cells]
    report = CampaignReport()
    ledger = CampaignLedger(ledger_path).open() if ledger_path is not None else None

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    def journal(rec: Dict[str, object]) -> None:
        if ledger is not None:
            ledger.append(rec)

    waiting: Dict[str, CampaignCell] = {}
    started = time.monotonic()
    journal(
        {
            "event": "campaign-start",
            "schema": LEDGER_SCHEMA_VERSION,
            "time": time.time(),
            "resume": False,
            "n_cells": len(cells),
            "store": store.root,
            "queue": queue.root,
            "policy": {"external": True},
        }
    )

    def resolve(cell: CampaignCell, entry, via: str) -> None:
        key = cell.key()
        outcome = result_from_entry(entry)
        report.outcomes[key] = outcome
        journal(
            {
                "event": "cell-end",
                "cell": key,
                "attempt": 0 if via == "store" else 1,
                "time": time.time(),
                "elapsed": round(time.monotonic() - started, 4),
                "terminal": True,
                "status": "done",
                "cycles": entry.cycles,
                "fingerprint": entry.fingerprint,
                "kernel": cell.kernel,
                "store_hit": via == "store",
                "store_digest": entry.digest,
                "via": via,
            }
        )

    try:
        for cell in cells:
            digest = cell_digest(cell)
            entry = store.get(digest)
            if entry is not None:
                report.store_hits.append(cell.key())
                resolve(cell, entry, via="store")
                continue
            queue.enqueue(cell)
            waiting[digest] = cell
            journal(
                {
                    "event": "cell-start",
                    "cell": cell.key(),
                    "attempt": 1,
                    "time": time.time(),
                    "schema": LEDGER_SCHEMA_VERSION,
                    "spec": cell.spec(),
                    "enqueued": True,
                }
            )
        note(
            f"dispatch: {len(report.store_hits)} store hit(s), "
            f"{len(waiting)} enqueued"
        )

        while waiting:
            if timeout is not None and time.monotonic() - started > timeout:
                for digest, cell in sorted(waiting.items()):
                    key = cell.key()
                    report.outcomes[key] = TimedOutRun(
                        benchmark=cell.benchmark,
                        design_point=cell.design_point,
                        budget=timeout,
                        elapsed=time.monotonic() - started,
                        error="external dispatch timed out awaiting workers",
                    )
                    journal(
                        {
                            "event": "cell-end",
                            "cell": key,
                            "attempt": 1,
                            "time": time.time(),
                            "elapsed": round(time.monotonic() - started, 4),
                            "terminal": False,
                            "status": "timeout",
                            "transient": True,
                            "error_type": "WallClockExceededError",
                            "error": "external dispatch timed out",
                        }
                    )
                break
            failed = queue.failed()
            for digest in sorted(waiting):
                cell = waiting[digest]
                entry = store.get(digest)
                if entry is not None:
                    del waiting[digest]
                    resolve(cell, entry, via="external")
                elif digest in failed:
                    del waiting[digest]
                    key = cell.key()
                    doc = failed[digest]
                    outcome = FailedRun(
                        benchmark=cell.benchmark,
                        design_point=cell.design_point,
                        error_type=str(doc.get("error_type", "FailedRun")),
                        error=str(doc.get("error", "external worker failure")),
                    )
                    report.outcomes[key] = outcome
                    journal(
                        {
                            "event": "cell-end",
                            "cell": key,
                            "attempt": 1,
                            "time": time.time(),
                            "elapsed": round(time.monotonic() - started, 4),
                            "terminal": True,
                            "status": "failed",
                            "transient": False,
                            "error_type": outcome.error_type,
                            "error": outcome.error,
                        }
                    )
            if waiting:
                sleep(poll)
    finally:
        journal(
            {
                "event": "campaign-end",
                "time": time.time(),
                "complete": not waiting,
                "n_done": report.n_done,
                "n_failed": report.n_failed,
                "retries": 0,
            }
        )
        if ledger is not None:
            ledger.close()
    return report
