"""``repro.store.io`` — the one durable-write helper every subsystem shares.

Before this module the repository carried three hand-rolled copies of the
tmp + fsync + rename discipline (the result store, the work queue, and the
checkpoint writer), two of which skipped the *parent directory* fsync —
the step that makes the rename itself durable.  A power loss after
``os.replace`` but before the directory's metadata reaches the platter can
silently undo the rename, which is fatal exactly when the caller has
already acknowledged the write (a published store entry, a diagnosed
failure record).  Everything durable now funnels through
:func:`write_atomic`.

The module doubles as the **chaos seam**: every function takes an optional
``fs`` argument — an object with the small OS-facade surface of
:class:`RealFS` — through which all filesystem side effects flow.  The
default, :data:`REAL_FS`, is a plain passthrough to :mod:`os`, so the
absent-by-default cost is one attribute lookup per call (the same contract
``trace=None`` and ``checkpoint=None`` honour).  :mod:`repro.chaos`
substitutes a :class:`~repro.chaos.fs.ChaosFS` here to inject torn writes,
dropped renames, lost fsyncs, ENOSPC/EIO bursts, short reads, clock skew,
and deterministic process-kill at enumerated crash points.

Nothing in this module imports anything above :mod:`os`/:mod:`time`, so it
is importable from any layer (store, harness, sim) without cycles.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

__all__ = [
    "REAL_FS",
    "RealFS",
    "TMP_MARKER",
    "fsync_dir",
    "read_bytes",
    "resolve_fs",
    "write_atomic",
]

#: Substring marking writer-private temporary files.  Kept identical to the
#: store's historical marker so ``ResultStore.gc`` keeps finding orphans.
TMP_MARKER = ".tmp."


class RealFS:
    """The real OS: every method is a direct passthrough.

    This is the *entire* surface the durable paths are allowed to touch for
    side effects — a deliberate bottleneck.  A chaos facade implements the
    same methods; production code never knows which one it holds.

    ``clock`` is wall-clock time (lease TTLs and staleness judgements flow
    through it, so a chaos facade can skew it).

    Methods resolve ``os.*`` at call time, not import time, so tests that
    monkeypatch :mod:`os` functions (dead-disk simulations) keep working
    against facade-threaded code.
    """

    @staticmethod
    def open(path: str, flags: int, mode: int = 0o777) -> int:
        return os.open(path, flags, mode)

    @staticmethod
    def write(fd: int, data: bytes) -> int:
        return os.write(fd, data)

    @staticmethod
    def fsync(fd: int) -> None:
        os.fsync(fd)

    @staticmethod
    def close(fd: int) -> None:
        os.close(fd)

    @staticmethod
    def replace(src: str, dst: str) -> None:
        os.replace(src, dst)

    @staticmethod
    def unlink(path: str) -> None:
        os.unlink(path)

    @staticmethod
    def clock() -> float:
        return time.time()

    @staticmethod
    def makedirs(path: str, exist_ok: bool = True) -> None:
        os.makedirs(path, exist_ok=exist_ok)

    @staticmethod
    def exists(path: str) -> bool:
        return os.path.exists(path)

    @staticmethod
    def read_bytes(path: str) -> bytes:
        with open(path, "rb") as fh:
            return fh.read()

    @staticmethod
    def fsync_dir(dirname: str) -> None:
        """Best-effort directory fsync: makes renames/creates durable.

        Filesystems that cannot open directories (or refuse to fsync them)
        are tolerated — the write itself already succeeded, and on such
        systems there is nothing more the process can do.
        """
        try:
            dfd = os.open(dirname, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dfd)
        except OSError:
            pass
        finally:
            os.close(dfd)


#: The module-wide default facade — plain :mod:`os`, zero added behaviour.
REAL_FS = RealFS()


def resolve_fs(fs: Optional[object]) -> object:
    """``fs`` itself, or the real filesystem when ``None``."""
    return REAL_FS if fs is None else fs


def write_atomic(
    path: str,
    data: bytes,
    fs: Optional[object] = None,
    dir_sync: bool = True,
    mode: int = 0o644,
) -> None:
    """Durably install ``data`` at ``path``: tmp + fsync + rename (+ dir fsync).

    The temporary name is private to this writer (pid + thread id), so any
    number of processes and threads may race on one target — every outcome
    is some writer's complete bytes, never an interleaving.  ``dir_sync``
    additionally fsyncs the parent directory so the *rename* survives a
    power loss; leave it on for anything the caller acknowledges to others
    (store entries, queue state transitions) and turn it off only for
    writes whose loss is recovered by protocol (lease heartbeat renewals,
    where the token fence already covers a rolled-back rename).
    """
    fs = resolve_fs(fs)
    tmp = f"{path}{TMP_MARKER}{os.getpid()}.{threading.get_ident()}"
    fd = fs.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, mode)
    try:
        fs.write(fd, data)
        fs.fsync(fd)
    finally:
        fs.close(fd)
    fs.replace(tmp, path)
    if dir_sync:
        fs.fsync_dir(os.path.dirname(os.path.abspath(path)))


def fsync_dir(dirname: str, fs: Optional[object] = None) -> None:
    """Facade-aware directory fsync (see :meth:`RealFS.fsync_dir`)."""
    resolve_fs(fs).fsync_dir(dirname)


def read_bytes(path: str, fs: Optional[object] = None) -> bytes:
    """Facade-aware whole-file read (the short-read injection point)."""
    return resolve_fs(fs).read_bytes(path)
