"""``repro.bench`` — the tracked perf trajectory of the simulator itself.

Every other module in this repository measures *simulated* time; this one
measures *host* time: how many simulated cycles per host second each
registered stepping kernel (:mod:`repro.sim.kernel`) achieves across the
Figure-9 sweep (every Figure-7 design point plus the single-threaded
baseline), and how many campaign cells per minute the harness sustains
under each kernel.

The run doubles as a differential test: every (benchmark, design point)
cell is executed once per kernel and the fingerprints must agree — a
kernel that got faster by simulating something different fails here
before it can skew an exhibit.

Since PR 8 the record also carries the result store's cold-vs-warm
campaign numbers (:func:`bench_store`): the same grid run against a fresh
store and then re-run against the populated one, where every cell must
come back as a hit with a bit-identical fingerprint — the store's dedupe
contract measured as a throughput ratio.

Since PR 9 the record is also compared against the previous committed
record (:func:`compare_baseline`): a seam threaded under a hot path —
the chaos FS facade then, the ``repro.obs`` telemetry gates now — is
supposed to cost *nothing* when disabled, and the per-kernel throughput
ratio against ``BENCH_9.json`` is the receipt.  The ratio gates
``--check`` only when both records were taken at the same trip count
(quick vs full), with generous bounds — shared-CI hosts are noisy; the
gate exists to catch a forgotten debug hook (2x), not a 5% wobble.

Results land in ``BENCH_<n>.json`` (``BENCH_10.json`` for this PR), the
committed perf record the CI perf-smoke job regenerates with ``--quick
--check`` to catch regressions where the event kernel stops paying for
itself — or where warm store reruns stop being hits.

Usage::

    python -m repro bench                 # full measurement, BENCH_10.json
    python -m repro bench --quick --check # CI smoke: fast + assertions
    python -m repro.bench --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.sim.stats import geomean

#: Identifier stamped into the payload and the default output file name.
BENCH_ID = "BENCH_10"

#: Previous committed record, the no-overhead baseline for this PR.
BASELINE_ID = "BENCH_9"

#: Acceptable per-kernel throughput ratio (current / baseline) when the
#: two records share a trip count.  Deliberately loose: the gate is for
#: structural regressions (an accidentally-enabled shim, a hot-path
#: import), not host noise.
BASELINE_RATIO_MIN = 0.5
BASELINE_RATIO_MAX = 2.0

#: The sweep's workload: the paper's flagship streaming kernel.  One
#: benchmark keeps the full grid (kernels x design points) under a minute
#: while still exercising every mechanism's bus/queue behaviour.
BENCH_BENCHMARK = "wc"

#: Trip counts: full runs are long enough that per-run host time is
#: seconds (timing noise < 2%); quick runs are CI-sized.
FULL_TRIPS = 1500
QUICK_TRIPS = 300

#: Campaign-throughput probe: the smoke grid's shape (2 benchmarks x the
#: Figure-7 design points), small trips — measures harness + simulator
#: throughput in cells/min, the unit campaign ETAs are quoted in.
CAMPAIGN_BENCHMARKS = ("wc", "fir")
CAMPAIGN_TRIPS = 96


def bench_grid(
    kernels: Sequence[str],
    trips: int,
    benchmark: str = BENCH_BENCHMARK,
) -> List[Dict[str, object]]:
    """Run ``benchmark`` on every design point under every kernel.

    Returns one row per (kernel, design point) with ``cycles``,
    ``host_seconds``, ``simulated_cycles_per_sec`` and ``fingerprint`` —
    plus a ``SINGLE`` row per kernel for the Figure-9 single-threaded
    baseline.  Rows are measurement records; cross-kernel checks live in
    :func:`check_rows`.
    """
    from repro.core.design_points import FIGURE7_ORDER
    from repro.harness.runner import run_benchmark, run_single_threaded

    rows: List[Dict[str, object]] = []
    for kernel in kernels:
        for point in FIGURE7_ORDER:
            res = run_benchmark(benchmark, point, trips, kernel=kernel)
            rows.append(_row(kernel, benchmark, point, res))
        res = run_single_threaded(benchmark, trips, kernel=kernel)
        rows.append(_row(kernel, benchmark, "SINGLE", res))
    return rows


def _row(kernel: str, benchmark: str, point: str, res) -> Dict[str, object]:
    return {
        "kernel": kernel,
        "benchmark": benchmark,
        "design_point": point,
        "cycles": res.cycles,
        "host_seconds": round(res.stats.host_seconds, 4),
        "simulated_cycles_per_sec": round(res.stats.simulated_cycles_per_sec, 1),
        "fingerprint": res.fingerprint(),
    }


def bench_campaign(kernels: Sequence[str], trips: int = CAMPAIGN_TRIPS):
    """Campaign throughput per kernel: serial ``run_cells`` over the smoke
    grid, reported as cells per minute."""
    from repro.core.design_points import FIGURE7_ORDER
    from repro.harness.campaign import CampaignCell, run_cells

    out: Dict[str, Dict[str, object]] = {}
    for kernel in kernels:
        cells = [
            CampaignCell(
                benchmark=b, design_point=p, trip_count=trips, kernel=kernel
            )
            for b in CAMPAIGN_BENCHMARKS
            for p in FIGURE7_ORDER
        ]
        started = time.perf_counter()
        outcomes = run_cells(cells)
        elapsed = time.perf_counter() - started
        n_ok = sum(1 for o in outcomes.values() if o.ok)
        out[kernel] = {
            "cells": len(cells),
            "ok": n_ok,
            "seconds": round(elapsed, 3),
            "cells_per_min": round(len(cells) * 60.0 / elapsed, 1),
        }
    return out


def bench_store(
    kernel: str = "reference", trips: int = CAMPAIGN_TRIPS
) -> Dict[str, object]:
    """Cold-vs-warm store campaign: the memoization contract as a number.

    Runs the smoke-shaped grid against a fresh result store (cold — every
    cell simulates and publishes), then the same grid against the now
    populated store (warm — every cell must be a hit).  Reports both
    wall-clock times, the warm/cold throughput ratio, and whether the
    warm pass was 100% hits with fingerprints bit-identical to the cold
    pass — the check CI gates on.
    """
    import shutil
    import tempfile

    from repro.core.design_points import FIGURE7_ORDER
    from repro.harness.campaign import CampaignCell, run_campaign
    from repro.store.store import ResultStore

    cells = [
        CampaignCell(benchmark=b, design_point=p, trip_count=trips, kernel=kernel)
        for b in CAMPAIGN_BENCHMARKS
        for p in FIGURE7_ORDER
    ]
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        store = ResultStore(root)
        started = time.perf_counter()
        cold = run_campaign(cells, store=store)
        cold_s = time.perf_counter() - started
        cold_fps = {
            k: o.fingerprint() for k, o in cold.outcomes.items() if o.ok
        }

        started = time.perf_counter()
        warm = run_campaign(cells, store=store)
        warm_s = time.perf_counter() - started
        warm_fps = {
            k: o.fingerprint() for k, o in warm.outcomes.items() if o.ok
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "kernel": kernel,
        "cells": len(cells),
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "warm_speedup": round(cold_s / warm_s, 1) if warm_s > 0 else None,
        "warm_hits": len(warm.store_hits),
        "all_hits": len(warm.store_hits) == len(cells),
        "fingerprints_identical": cold_fps == warm_fps and len(cold_fps) == len(cells),
    }


def check_rows(rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Cross-kernel verification over the measurement rows.

    * fingerprints: every kernel must produce the same fingerprint for the
      same (benchmark, design point) cell — the kernels' core contract;
    * speedup: per-design-point event/reference throughput ratios and
      their geomean, the number the CI smoke gates on.
    """
    by_cell: Dict[tuple, Dict[str, str]] = {}
    for row in rows:
        cell = (row["benchmark"], row["design_point"])
        by_cell.setdefault(cell, {})[row["kernel"]] = row["fingerprint"]
    mismatches = [
        {"benchmark": b, "design_point": p, "fingerprints": fps}
        for (b, p), fps in sorted(by_cell.items())
        if len(set(fps.values())) > 1
    ]

    scps: Dict[str, Dict[str, float]] = {}
    for row in rows:
        scps.setdefault(row["kernel"], {})[row["design_point"]] = float(
            row["simulated_cycles_per_sec"]
        )
    speedup: Dict[str, float] = {}
    ref = scps.get("reference", {})
    ev = scps.get("event", {})
    for point in ref:
        if point in ev and ref[point] > 0:
            speedup[point] = round(ev[point] / ref[point], 2)
    return {
        "fingerprints_match": not mismatches,
        "mismatches": mismatches,
        "event_speedup_vs_reference": speedup,
        "event_speedup_geomean": (
            round(geomean(speedup.values()), 2) if speedup else None
        ),
    }


def compare_baseline(
    rows: List[Dict[str, object]],
    quick: bool,
    baseline_path: Optional[str] = None,
) -> Optional[Dict[str, object]]:
    """Per-kernel throughput ratio against the previous committed record.

    Computes, for every kernel present in both records, the geomean over
    design points of ``current simulated_cycles_per_sec / baseline``.
    The ratios only ``gate`` (feed ``--check``) when both records were
    taken at the same trip count — comparing a ``--quick`` run against
    the committed full run measures trip count, not the code.  Returns
    ``None`` when no baseline record can be read (fresh checkout,
    renamed file): absence of a baseline is not a regression.
    """
    import os

    if baseline_path is None:
        baseline_path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            f"{BASELINE_ID}.json",
        )
    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        return None

    def scps(rs) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for r in rs:
            out.setdefault(r["kernel"], {})[r["design_point"]] = float(
                r["simulated_cycles_per_sec"]
            )
        return out

    cur, base = scps(rows), scps(baseline.get("rows", []))
    ratios: Dict[str, float] = {}
    for kernel in cur:
        shared = [
            cur[kernel][p] / base[kernel][p]
            for p in cur[kernel]
            if p in base.get(kernel, {}) and base[kernel][p] > 0
        ]
        if shared:
            ratios[kernel] = round(geomean(shared), 3)
    if not ratios:
        return None
    gate = bool(baseline.get("quick", False)) == quick
    within = all(
        BASELINE_RATIO_MIN <= r <= BASELINE_RATIO_MAX for r in ratios.values()
    )
    return {
        "baseline_id": baseline.get("bench_id", BASELINE_ID),
        "baseline_trips": baseline.get("trips"),
        "throughput_ratio": ratios,
        "gate": gate,
        "within_bounds": within,
        "bounds": [BASELINE_RATIO_MIN, BASELINE_RATIO_MAX],
    }


def run_bench(
    quick: bool = False,
    kernels: Optional[Sequence[str]] = None,
    with_campaign: bool = True,
) -> Dict[str, object]:
    """Execute the full benchmark and return the ``BENCH_ID`` payload."""
    from repro.sim.kernel import KERNEL_NAMES

    kernels = list(kernels) if kernels is not None else list(KERNEL_NAMES)
    trips = QUICK_TRIPS if quick else FULL_TRIPS
    rows = bench_grid(kernels, trips)
    payload: Dict[str, object] = {
        "bench_id": BENCH_ID,
        "quick": quick,
        "benchmark": BENCH_BENCHMARK,
        "trips": trips,
        "kernels": kernels,
        "rows": rows,
        "checks": check_rows(rows),
    }
    baseline = compare_baseline(rows, quick)
    if baseline is not None:
        payload["baseline"] = baseline
    if with_campaign:
        payload["campaign"] = bench_campaign(
            kernels, trips=max(32, trips // 8)
        )
        payload["store"] = bench_store(trips=max(32, trips // 8))
    return payload


def render(payload: Dict[str, object]) -> str:
    """Human-readable summary of a bench payload."""
    lines = [f"{payload['bench_id']}: {payload['benchmark']} x "
             f"{len(payload['kernels'])} kernel(s), trips={payload['trips']}"]
    lines.append(
        f"{'kernel':<10} {'design point':<12} {'cycles':>10} "
        f"{'host s':>8} {'sim cyc/s':>12}"
    )
    for row in payload["rows"]:
        lines.append(
            f"{row['kernel']:<10} {row['design_point']:<12} "
            f"{row['cycles']:>10} {row['host_seconds']:>8.3f} "
            f"{row['simulated_cycles_per_sec']:>12,.0f}"
        )
    checks = payload["checks"]
    lines.append(
        "fingerprints: "
        + ("all kernels agree" if checks["fingerprints_match"] else "MISMATCH")
    )
    if checks["event_speedup_vs_reference"]:
        pairs = ", ".join(
            f"{p}={s}x" for p, s in checks["event_speedup_vs_reference"].items()
        )
        lines.append(
            f"event vs reference: {pairs} "
            f"(geomean {checks['event_speedup_geomean']}x)"
        )
    for kernel, camp in payload.get("campaign", {}).items():
        lines.append(
            f"campaign [{kernel}]: {camp['ok']}/{camp['cells']} cells in "
            f"{camp['seconds']}s = {camp['cells_per_min']} cells/min"
        )
    store = payload.get("store")
    if store:
        lines.append(
            f"store: cold {store['cold_seconds']}s -> warm "
            f"{store['warm_seconds']}s ({store['warm_speedup']}x), "
            f"{store['warm_hits']}/{store['cells']} hits, fingerprints "
            + ("identical" if store["fingerprints_identical"] else "DIFFER")
        )
    baseline = payload.get("baseline")
    if baseline:
        pairs = ", ".join(
            f"{k}={r}x" for k, r in baseline["throughput_ratio"].items()
        )
        gated = "gated" if baseline["gate"] else "informational (trips differ)"
        lines.append(
            f"vs {baseline['baseline_id']}: {pairs} [{gated}]"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Measure simulated cycles/sec per kernel across the Figure-9 "
            "sweep and campaign cells/min; emit the BENCH json record."
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI-sized trips ({QUICK_TRIPS} instead of {FULL_TRIPS})",
    )
    parser.add_argument(
        "--out",
        default=f"{BENCH_ID}.json",
        help=f"output path for the json record (default: {BENCH_ID}.json)",
    )
    parser.add_argument(
        "--no-campaign",
        action="store_true",
        help="skip the campaign cells/min probe",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero unless every kernel's fingerprints agree and the "
            "event kernel's geomean throughput is >= the reference kernel's"
        ),
    )
    args = parser.parse_args(argv)

    payload = run_bench(quick=args.quick, with_campaign=not args.no_campaign)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(render(payload))
    print(f"wrote {args.out}")

    if args.check:
        checks = payload["checks"]
        if not checks["fingerprints_match"]:
            print("CHECK FAILED: kernels disagree on fingerprints")
            return 1
        gm = checks["event_speedup_geomean"]
        if gm is not None and gm < 1.0:
            print(f"CHECK FAILED: event kernel slower than reference ({gm}x)")
            return 1
        store = payload.get("store")
        if store is not None:
            if not store["all_hits"]:
                print(
                    f"CHECK FAILED: warm store rerun had "
                    f"{store['warm_hits']}/{store['cells']} hits (want all)"
                )
                return 1
            if not store["fingerprints_identical"]:
                print("CHECK FAILED: warm store fingerprints differ from cold")
                return 1
        baseline = payload.get("baseline")
        if baseline is not None and baseline["gate"] and not baseline["within_bounds"]:
            lo, hi = baseline["bounds"]
            print(
                f"CHECK FAILED: throughput vs {baseline['baseline_id']} "
                f"outside [{lo}, {hi}]: {baseline['throughput_ratio']}"
            )
            return 1
        print("checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
