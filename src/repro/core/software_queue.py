"""EXISTING: shared-memory software queues (Section 3.1.1 / Figure 4).

This is the design point representative of commercial CMPs with no streaming
support.  Produce and consume are ~10-instruction load/store sequences —
6 synchronization instructions (spin flag load, compare, branch, fence, flag
store, mask), 1 data-transfer instruction, and 3 stream-address (head/tail
pointer) update instructions — with a dependence height of 4 (Section 4.3).

Synchronization uses per-slot full/empty condition variables co-located with
the queue data (Figure 5): a producer spins until the tail slot's flag reads
*empty*, stores the datum, then sets the flag; a consumer mirrors this on the
head slot.  Both sides' flag writes make the backing line ping-pong between
the private L2s through the snoop protocol, and every spin iteration flows
through the pipeline and recirculates in the OzQ, occupying L2 ports — the
COMM-OP overheads the paper measures for this design.
"""

from __future__ import annotations

from typing import Generator

from repro.core.mechanism import CommMechanism, register_mechanism
from repro.core.queue_model import QueueChannel
from repro.mem.bus import SharedBus
from repro.sim.isa import DynInst


@register_mechanism("existing")
class SoftwareQueueMechanism(CommMechanism):
    """Software queues over unmodified coherent shared memory."""

    flag_bytes = 8  # 8-byte lock word co-located with each 8-byte datum

    #: Synchronization ALU overhead around the spin load: compare, branch,
    #: mask — with the flag load, fence and flag store this makes the six
    #: synchronization instructions of Section 4.3.
    SYNC_ALU_OPS = 3
    #: Stream-address (head/tail pointer) update: add, compare, select.
    POINTER_ALU_OPS = 3

    def _observe_flag_delay(self) -> float:
        """Latency for an in-flight spin load to observe the remote update.

        While spinning, the flag load recirculates as an outstanding L2
        transaction; once the other core's flag write happens, the update
        reaches the spinner via a snoop round plus an L2 visit — not a full
        fresh line refetch.
        """
        mem = self.machine.mem
        return (
            mem.bus.end_to_end_cycles(SharedBus.CONTROL_BYTES)
            + self.machine.config.l2.latency
        )

    def _spin_until(self, core, flag_addr: int, visible_at: float, first) -> None:
        """Spin on the flag at ``flag_addr`` until it reads updated."""
        core.spin_wait(visible_at, first.breakdown)
        # The observing (final) spin iteration: its in-flight refetch brings
        # the whole line (flag + co-located data) into this L2 — unless a
        # write-forward already delivered the line, in which case the spin
        # load observes the local (possibly in-flight) fill and no snoop
        # round crosses the bus (MEMOPTI's consumer-side win, §3.5.1).
        mem = self.machine.mem
        local = mem.holds_line(core.core_id, flag_addr)
        arrival = mem.observe_update(core.core_id, flag_addr, visible_at)
        core.retire(1, overhead=True)
        if local:
            observed = max(arrival, visible_at) + self.machine.config.l2.latency
        else:
            observed = visible_at + self._observe_flag_delay()
        core.stall_until(observed, first.breakdown)

    # ------------------------------------------------------------------

    def produce(self, core, inst: DynInst) -> Generator:
        ch = self.channel(inst.queue)
        layout = ch.layout
        item = ch.n_produced
        ch.n_produced += 1

        # --- Synchronization: spin until the slot's flag reads empty. ---
        flag = layout.flag_addr(item)
        first = core.overhead_load(flag)
        core.overhead_alu(self.SYNC_ALU_OPS, dep_height=2)
        gate = ch.producer_must_wait_for(item)
        if gate is not None:
            yield from self.wait_for_len(
                core, ch.freed, gate, reason="full", queue_id=ch.queue_id
            )
            free_t = ch.freed[gate]
            if free_t > first.complete:
                core.stats.queue_full_stall += free_t - max(core.now, first.complete)
                self._spin_until(core, flag, free_t, first)
            else:
                core.stall_until(first.complete, first.breakdown)
        else:
            core.stall_until(first.complete, first.breakdown)

        # --- Data transfer, ordered before the flag set by a fence.  The
        # store cannot issue before the produced value is ready (in-order
        # core), exposing any in-flight miss feeding it. ---
        if inst.srcs:
            op_ready = core.scoreboard.ready(inst.srcs)
            if op_ready > core.now:
                core.stall_until(
                    op_ready, core.scoreboard.dominant_mix(inst.srcs, op_ready)
                )
        data = core.overhead_store(layout.data_addr(item))
        core.overhead_fence()
        flag_set = core.overhead_store(flag)
        ch.record_produced(flag_set.complete)
        ch.record_store_complete(data.complete)
        self._after_flag_set(core, ch, item, flag_set.complete)

        # --- Stream address (tail pointer) update. ---
        core.overhead_alu(self.POINTER_ALU_OPS, dep_height=2)
        return None

    # Hook for MEMOPTI's write-forwarding.
    def _after_flag_set(
        self, core, ch: QueueChannel, item: int, at: float
    ) -> None:
        """Called after the producer's flag-set store completes."""

    # ------------------------------------------------------------------

    def consume(self, core, inst: DynInst) -> Generator:
        ch = self.channel(inst.queue)
        layout = ch.layout
        item = ch.n_consumed
        ch.n_consumed += 1

        # --- Synchronization: spin until the slot's flag reads full. ---
        flag = layout.flag_addr(item)
        first = core.overhead_load(flag)
        core.overhead_alu(self.SYNC_ALU_OPS, dep_height=2)
        yield from self.wait_for_len(
            core, ch.produced, item, reason="empty", queue_id=ch.queue_id
        )
        avail = ch.produced[item]
        if avail > first.complete:
            core.stats.queue_empty_stall += avail - max(core.now, first.complete)
            self._spin_until(core, flag, avail, first)
        else:
            core.stall_until(first.complete, first.breakdown)

        # --- Data transfer: the one load whose value feeds the kernel. ---
        data = core.overhead_load(layout.data_addr(item))
        if inst.dest is not None:
            core.scoreboard.define(inst.dest, data.complete, data.breakdown)

        # --- Mark the slot empty (ordered after the data read). ---
        core.overhead_fence()
        clear = core.overhead_store(flag)
        ch.record_freed(clear.complete)

        # --- Stream address (head pointer) update. ---
        core.overhead_alu(self.POINTER_ALU_OPS, dep_height=2)
        return None
