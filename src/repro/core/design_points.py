"""Named design points of the paper's evaluation (Sections 4 and 5).

A design point is a (communication mechanism, machine-configuration delta)
pair.  The four Section 4 points — EXISTING, MEMOPTI, SYNCOPTI, HEAVYWT —
plus the three Section 5 SYNCOPTI optimizations — Q64, SC, SC+Q64 — are
registered here, along with helpers to apply the sensitivity-study overrides
of Figures 6, 10 and 11 (interconnect transit delay, bus latency, bus width,
queue depth).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.config import MachineConfig, baseline_config


class DesignPointConfigError(ValueError):
    """A caller-supplied config contradicts the design point it runs under."""


#: Mechanisms that read the stream-cache configuration.
_STREAM_CACHE_MECHANISMS = frozenset({"syncopti_sc"})


@dataclass(frozen=True)
class DesignPoint:
    """A named point in the communication-support design space."""

    name: str
    mechanism: str
    description: str
    configure: Optional[Callable[[MachineConfig], None]] = None

    def build_config(self, base: Optional[MachineConfig] = None) -> MachineConfig:
        """Materialize this design point's machine configuration."""
        config = (base or baseline_config()).copy()
        if self.configure is not None:
            self.configure(config)
        return config.validate()

    def validate_config(self, config: MachineConfig) -> MachineConfig:
        """Check that a caller-supplied config can pair with this point.

        Contract: configs handed to :func:`repro.harness.runner.run_benchmark`
        must be derived from this point's :meth:`build_config` (sensitivity
        overrides — bus latency/width, queue depth, transit delay, fault
        plans — are fine).  What is *not* fine is a config whose
        mechanism-identity knobs contradict the design point, e.g. a
        stream-cache-enabled config run under plain SYNCOPTI: silently, the
        mechanism would ignore the stream cache and the cell would be
        labeled with the wrong design point.  Raises
        :class:`DesignPointConfigError` on such a mismatch.
        """
        wants_sc = self.mechanism in _STREAM_CACHE_MECHANISMS
        if wants_sc and not config.stream_cache.enabled:
            raise DesignPointConfigError(
                f"design point {self.name!r} ({self.mechanism}) needs "
                "config.stream_cache.enabled=True; build the config with "
                f"get_design_point({self.name!r}).build_config()"
            )
        if not wants_sc and config.stream_cache.enabled:
            raise DesignPointConfigError(
                f"config has stream_cache.enabled=True but design point "
                f"{self.name!r} runs mechanism {self.mechanism!r}, which "
                "ignores the stream cache — the cell would be mislabeled. "
                "Use an SC design point or a config built for this one."
            )
        return config


def _q64(config: MachineConfig) -> None:
    """64-entry queues with 16 packed 8-byte items per 128 B line (§5)."""
    config.queues.depth = 64
    config.queues.qlu = 16


def _sc(config: MachineConfig) -> None:
    config.stream_cache.enabled = True


def _sc_q64(config: MachineConfig) -> None:
    _q64(config)
    _sc(config)


DESIGN_POINTS: Dict[str, DesignPoint] = {
    point.name: point
    for point in (
        DesignPoint(
            name="EXISTING",
            mechanism="existing",
            description=(
                "Commercial-CMP baseline: software queues over coherent "
                "shared memory; ~10 instructions and a fence per comm op"
            ),
        ),
        DesignPoint(
            name="MEMOPTI",
            mechanism="memopti",
            description=(
                "EXISTING plus write-forwarding of completed queue lines "
                "to the consumer's L2 (never L1)"
            ),
        ),
        DesignPoint(
            name="SYNCOPTI",
            mechanism="syncopti",
            description=(
                "produce/consume instructions, stream address logic, L2 "
                "occupancy counters, locality-enhanced write-forwarding, "
                "bulk ACKs; memory subsystem as backing store"
            ),
        ),
        DesignPoint(
            name="SYNCOPTI_Q64",
            mechanism="syncopti",
            description="SYNCOPTI with 64-entry queues and QLU 16",
            configure=_q64,
        ),
        DesignPoint(
            name="SYNCOPTI_SC",
            mechanism="syncopti_sc",
            description="SYNCOPTI with the 1 KB fully-associative stream cache",
            configure=_sc,
        ),
        DesignPoint(
            name="SYNCOPTI_SC_Q64",
            mechanism="syncopti_sc",
            description="SYNCOPTI with both the stream cache and Q64 (the paper's pick)",
            configure=_sc_q64,
        ),
        DesignPoint(
            name="HEAVYWT",
            mechanism="heavywt",
            description=(
                "Dedicated distributed backing store at the consumer core "
                "plus a dedicated pipelined interconnect (synchronization-"
                "array / scalar-operand-network class)"
            ),
        ),
    )
}

#: The Figure 7 evaluation order (left to right).
FIGURE7_ORDER = ("HEAVYWT", "SYNCOPTI", "EXISTING", "MEMOPTI")

#: The Figure 12 evaluation order (left to right).
FIGURE12_ORDER = (
    "HEAVYWT",
    "SYNCOPTI_SC_Q64",
    "SYNCOPTI_SC",
    "SYNCOPTI_Q64",
    "SYNCOPTI",
)


def get_design_point(name: str) -> DesignPoint:
    try:
        return DESIGN_POINTS[name]
    except KeyError:
        known = ", ".join(sorted(DESIGN_POINTS))
        raise KeyError(f"unknown design point {name!r}; known: {known}") from None


def with_transit_delay(config: MachineConfig, cycles: int) -> MachineConfig:
    """Figure 6 override: HEAVYWT dedicated-interconnect end-to-end latency."""
    out = config.copy()
    out.dedicated = dataclasses.replace(out.dedicated, transit_delay=cycles)
    return out.validate()


def with_queue_depth(config: MachineConfig, depth: int) -> MachineConfig:
    """Figure 6 override: queue entries (32 vs 64)."""
    out = config.copy()
    out.queues = dataclasses.replace(out.queues, depth=depth)
    return out.validate()


def with_bus_latency(config: MachineConfig, cpu_cycles: int) -> MachineConfig:
    """Figure 10 override: CPU cycles per bus cycle."""
    out = config.copy()
    out.bus = dataclasses.replace(out.bus, cycle_latency=cpu_cycles)
    return out.validate()


def with_bus_width(config: MachineConfig, width_bytes: int) -> MachineConfig:
    """Figure 11 override: bus width in bytes."""
    out = config.copy()
    out.bus = dataclasses.replace(out.bus, width_bytes=width_bytes)
    return out.validate()


def with_n_cores(config: MachineConfig, n_cores: int) -> MachineConfig:
    """Pipeline-scaling override: core count (= maximum pipeline stages).

    Every per-core structure (cores, store ports, stream-cache instances,
    L1/L2 instances, snoop sets) is sized from ``n_cores`` at machine
    construction, so this is the only knob an N-stage pipeline needs.
    """
    out = config.copy(n_cores=n_cores)
    return out.validate()


#: The declarative override vocabulary: name -> config transform.  Campaign
#: cells carry plain ``{name: value}`` dicts (JSON-serializable, picklable
#: across worker processes, hashable into cell keys) instead of closures;
#: this table is the single mapping both the serial and pooled grid paths
#: apply, so a cell means the same machine either way.
OVERRIDE_KNOBS = {
    "transit_delay": with_transit_delay,
    "queue_depth": with_queue_depth,
    "bus_latency": with_bus_latency,
    "bus_width": with_bus_width,
    "n_cores": with_n_cores,
}


def apply_overrides(config: MachineConfig, overrides) -> MachineConfig:
    """Apply a declarative ``{knob: value}`` mapping via the ``with_*`` helpers.

    Knobs are applied in :data:`OVERRIDE_KNOBS` order (not dict order) so a
    cell's machine is independent of how its overrides dict was built.
    """
    for name, transform in OVERRIDE_KNOBS.items():
        if name in overrides:
            config = transform(config, overrides[name])
    unknown = set(overrides) - set(OVERRIDE_KNOBS)
    if unknown:
        raise KeyError(
            f"unknown override knob(s) {sorted(unknown)}; "
            f"known: {sorted(OVERRIDE_KNOBS)}"
        )
    return config
