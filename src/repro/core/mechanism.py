"""Abstract interface and registry for streaming communication mechanisms.

A :class:`CommMechanism` realizes the architectural queue contract for one
design point of the paper's design space (Section 3): it decides what a
PRODUCE/CONSUME macro-op costs inside the core (COMM-OP delay), what traffic
it puts on which interconnect, where queue bytes live, and how the two
threads synchronize.  The core timing model calls :meth:`produce` /
:meth:`consume` (both generators, so mechanisms can block on queue state via
the co-simulation protocol); everything else — queue layouts, channels,
endpoint binding — is shared infrastructure provided here.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Generator, Optional

from repro.core.queue_model import QueueChannel, QueueLayout
from repro.sim.isa import DynInst

#: name -> factory(machine) registry, populated by the implementations.
_REGISTRY: Dict[str, Callable[["object"], "CommMechanism"]] = {}


def register_mechanism(name: str):
    """Class decorator registering a mechanism under ``name``."""

    def decorate(cls):
        if name in _REGISTRY:
            raise ValueError(f"mechanism {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorate


def create_mechanism(name: str, machine) -> "CommMechanism":
    """Instantiate a registered mechanism by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown mechanism {name!r}; known: {known}") from None
    return factory(machine)


def available_mechanisms():
    """Names of all registered mechanisms."""
    return sorted(_REGISTRY)


class CommMechanism(abc.ABC):
    """Base class for the four design points (and their variants)."""

    #: Set by @register_mechanism.
    name: str = "abstract"
    #: Per-slot co-located flag storage in the backing layout (software
    #: queues: 8 bytes; counter-synchronized designs: 0).
    flag_bytes: int = 0

    def __init__(self, machine) -> None:
        self.machine = machine

    # ------------------------------------------------------------------
    # Layout / channel plumbing
    # ------------------------------------------------------------------

    def layout_for(self, queue_id: int) -> QueueLayout:
        """Build this mechanism's backing layout for one queue."""
        qcfg = self.machine.config.queues
        line = self.machine.config.l2.line_bytes
        slot = qcfg.item_bytes + self.flag_bytes
        # The configured QLU is capped by how many slots physically fit.
        qlu = min(qcfg.qlu, line // slot)
        # Keep depth a multiple of the effective QLU.
        if qcfg.depth % qlu != 0:
            qlu = max(q for q in range(1, qlu + 1) if qcfg.depth % q == 0)
        return QueueLayout(
            queue_id=queue_id,
            depth=qcfg.depth,
            item_bytes=qcfg.item_bytes,
            qlu=qlu,
            line_bytes=line,
            flag_bytes=self.flag_bytes,
        )

    def channel(self, queue_id: int) -> QueueChannel:
        return self.machine.channel(queue_id)

    # ------------------------------------------------------------------
    # Blocking helper (co-simulation protocol)
    # ------------------------------------------------------------------

    def wait_for_len(
        self,
        core,
        lst,
        index: int,
        deadline: Optional[float] = None,
        reason: str = "",
        queue_id: Optional[int] = None,
    ) -> Generator:
        """Block ``core`` until ``len(lst) > index`` (or ``deadline`` passes).

        Returns ``"ok"`` or ``"timeout"``.  Yields a time heartbeat first so
        the scheduler sees the blocking core's current clock.

        ``reason`` ("full"/"empty"/...) and ``queue_id`` label the optional
        queue.block / queue.unblock trace events.  Both events carry the
        blocking core's clock *at the block point* — the simulated wait shows
        up as the stall the mechanism charges right after resuming.
        """
        if len(lst) > index:
            return "ok"
        trace = getattr(core, "trace", None)  # tolerate stub cores in tests
        if trace is not None:
            trace.emit(
                "queue.block", core.now, core=core.core_id,
                queue=queue_id, reason=reason, index=index,
            )
        yield ("time", core.now)
        status = yield ("block", (lambda: len(lst) > index), deadline)
        if trace is not None:
            trace.emit(
                "queue.unblock", core.now, core=core.core_id,
                queue=queue_id, reason=reason, status=status,
            )
        return status

    # ------------------------------------------------------------------
    # The design-point-specific COMM-OP realizations
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def produce(self, core, inst: DynInst) -> Generator:
        """Execute a PRODUCE macro-op on ``core`` (generator; may block)."""

    @abc.abstractmethod
    def consume(self, core, inst: DynInst) -> Generator:
        """Execute a CONSUME macro-op on ``core`` (generator; may block)."""

    # ------------------------------------------------------------------
    # Optional hooks
    # ------------------------------------------------------------------

    def on_streaming_eviction(self, core_id: int, line_addr: int, at: float) -> None:
        """An L2 evicted a streaming line (SYNCOPTI flushes counters)."""

    def describe(self) -> str:
        """One-line summary used by reports."""
        return self.name
