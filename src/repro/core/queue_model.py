"""Architectural inter-thread queues: layout, state, and visibility timing.

Every communication mechanism in the paper implements the same architectural
contract — a bounded FIFO of fixed-size items between a producer thread and a
consumer thread — but differs in *where the backing bytes live* and *when
each side learns about the other's progress*.  This module provides the two
mechanism-independent halves of that contract:

* :class:`QueueLayout` maps queue slots to backing-store byte addresses,
  implementing the queue-layout-unit (QLU) packing of Figure 5 (co-located
  data + flag for software queues; densely packed items for SYNCOPTI).

* :class:`QueueChannel` records the *visibility timeline* of one queue:
  for every item, when its value becomes observable to the consumer
  (``produced``), and when its slot's recycling becomes observable to the
  producer (``freed``).  Mechanisms append to these lists as their produce /
  consume / forward / ACK events complete; the co-simulation scheduler uses
  list growth as the wake-up condition for blocked threads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

#: Base byte address of the queue backing region in the simulated address
#: space, far above any workload data region.
QUEUE_REGION_BASE = 0x8000_0000

#: Bytes reserved per queue in the backing region (large enough for the
#: biggest configuration: 64 entries x 16-byte software-queue slots).
QUEUE_REGION_STRIDE = 0x1_0000


def queue_of_addr(addr: int) -> Optional[int]:
    """Architectural queue id backing ``addr``, or ``None`` for regular data.

    Used by the memory system's fault hooks to map a forwarded line back to
    the queue it carries, so fault rules can target individual queues.
    """
    if addr < QUEUE_REGION_BASE:
        return None
    return (addr - QUEUE_REGION_BASE) // QUEUE_REGION_STRIDE


@dataclass
class QueueLayout:
    """Slot-to-address mapping for one queue's memory backing store.

    Args:
        queue_id: Architectural queue number.
        depth: Number of slots.
        item_bytes: Payload size of one queue item.
        qlu: Queue layout unit — items per cache line (Figure 5).
        line_bytes: Cache line size of the backing level (L2: 128 B).
        flag_bytes: Per-slot synchronization flag storage.  Software queues
            co-locate an 8-byte lock word with each item; hardware-counter
            designs (SYNCOPTI, HEAVYWT) use 0.
    """

    queue_id: int
    depth: int = 32
    item_bytes: int = 8
    qlu: int = 8
    line_bytes: int = 128
    flag_bytes: int = 0

    def __post_init__(self) -> None:
        if self.depth <= 0 or self.item_bytes <= 0 or self.qlu <= 0:
            raise ValueError("queue layout fields must be positive")
        if self.depth % self.qlu != 0:
            raise ValueError("depth must be a multiple of the QLU")
        if self.qlu * self.slot_bytes > self.line_bytes:
            raise ValueError(
                f"QLU {self.qlu} x slot {self.slot_bytes}B exceeds a "
                f"{self.line_bytes}B line"
            )

    @property
    def slot_bytes(self) -> int:
        """Bytes consumed per slot, including any co-located flag."""
        return self.item_bytes + self.flag_bytes

    @property
    def slot_stride(self) -> int:
        """Address stride between consecutive slots on a line.

        Slots are spread so exactly ``qlu`` of them share one line: a sparse
        layout (QLU 1) pads each slot to a full line (Figure 5, bottom).
        """
        return self.line_bytes // self.qlu

    @property
    def base(self) -> int:
        return QUEUE_REGION_BASE + self.queue_id * QUEUE_REGION_STRIDE

    @property
    def n_lines(self) -> int:
        """Distinct cache lines backing the queue."""
        return self.depth // self.qlu

    def slot_of(self, item_index: int) -> int:
        """Queue slot used by the ``item_index``-th item ever enqueued."""
        if item_index < 0:
            raise ValueError("item index must be non-negative")
        return item_index % self.depth

    def data_addr(self, item_index: int) -> int:
        """Backing-store address of an item's payload."""
        return self.base + self.slot_of(item_index) * self.slot_stride

    def flag_addr(self, item_index: int) -> int:
        """Backing-store address of an item's full/empty flag (co-located)."""
        if self.flag_bytes == 0:
            raise ValueError("this layout has no per-slot flags")
        return self.data_addr(item_index) + self.item_bytes

    def line_of(self, item_index: int) -> int:
        """Backing line index (0..n_lines-1) holding an item's slot."""
        return self.slot_of(item_index) // self.qlu

    def line_addr(self, line: int) -> int:
        """Byte address of the start of backing line ``line``."""
        if not 0 <= line < self.n_lines:
            raise ValueError(f"line {line} out of range")
        return self.base + line * self.line_bytes

    def is_last_in_line(self, item_index: int) -> bool:
        """Does this item fill the last slot of its backing line?"""
        return self.slot_of(item_index) % self.qlu == self.qlu - 1


@dataclass
class QueueChannel:
    """Visibility timeline and endpoint binding of one inter-thread queue.

    The channel is the single synchronization object shared between the two
    cores' mechanism instances and the co-simulation scheduler.  All fields
    are monotone (append-only lists, increasing counters) which is what makes
    lazy, min-timestamp co-simulation sound.
    """

    layout: QueueLayout
    producer_core: int = 0
    consumer_core: int = 1
    #: produced[i]: time item i's value is observable by the consumer.
    produced: List[float] = field(default_factory=list)
    #: freed[i]: time item i's slot recycling is observable by the producer.
    freed: List[float] = field(default_factory=list)
    #: store_complete[i]: time the producer's write of item i completed
    #: locally (SYNCOPTI's timeout path needs this before the line forwards).
    store_complete: List[float] = field(default_factory=list)
    #: line -> arrival time of its write-forward at the consumer.
    line_forwarded: Dict[int, float] = field(default_factory=dict)
    n_produced: int = 0
    n_consumed: int = 0
    #: Optional fault plan consulted when slot recycling is recorded; the
    #: channel is the natural hook point for QUEUE_SLOT_STALL faults because
    #: every mechanism funnels its frees through ``record_freed``.
    fault_plan: Optional["FaultPlan"] = field(default=None, repr=False, compare=False)
    #: Set when an infinite slot stall wedges the channel: no further frees
    #: are ever observed by the producer (forced-deadlock fault scenarios).
    wedged: bool = False
    #: Optional :class:`~repro.trace.buffer.TraceBuffer` shared with the
    #: owning machine; ``None`` keeps each record hook to a single branch.
    trace: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def queue_id(self) -> int:
        return self.layout.queue_id

    @property
    def depth(self) -> int:
        return self.layout.depth

    def occupancy_bound(self) -> int:
        """Items produced but not yet known-consumed (conservative)."""
        return self.n_produced - len(self.freed)

    def producer_must_wait_for(self, item_index: int) -> Optional[int]:
        """Index of the `freed` entry gating production of ``item_index``.

        Returns ``None`` when the queue cannot be full for this item (the
        first ``depth`` items never wait).
        """
        if item_index < self.depth:
            return None
        return item_index - self.depth

    def record_produced(self, visible_at: float) -> int:
        """Append one item's consumer-visibility time; returns its index."""
        index = len(self.produced)
        self.produced.append(visible_at)
        self.n_produced = max(self.n_produced, index + 1)
        if self.trace is not None:
            self.trace.emit(
                "queue.publish", visible_at, queue=self.queue_id, item=index
            )
        return index

    def record_store_complete(self, at: float) -> int:
        index = len(self.store_complete)
        self.store_complete.append(at)
        return index

    def record_freed(self, visible_at: float) -> int:
        """Append one slot-free visibility time; returns its item index.

        An active fault plan may stall the slot (delaying the visibility
        time) or — with an infinite stall — wedge the channel, after which
        this method drops all frees on the floor and the producer eventually
        deadlocks (diagnosed by the post-mortem's ``wedged`` flag).
        """
        index = len(self.freed)
        if self.wedged:
            return index
        if self.fault_plan is not None:
            stall = self.fault_plan.queue_slot_stall(self.queue_id, index, visible_at)
            if math.isinf(stall):
                self.wedged = True
                if self.trace is not None:
                    self.trace.emit(
                        "queue.wedge", visible_at, queue=self.queue_id, item=index
                    )
                return index
            visible_at += stall
        self.freed.append(visible_at)
        if self.trace is not None:
            self.trace.emit(
                "queue.free", visible_at, queue=self.queue_id, item=index
            )
        return index

    def record_freed_bulk(self, count: int, visible_at: float) -> None:
        """Bulk ACK: mark ``count`` further items' slots free at one time."""
        for _ in range(count):
            self.record_freed(visible_at)

    def record_forward(self, line: int, arrival: float) -> None:
        self.line_forwarded[line] = arrival
        if self.trace is not None:
            self.trace.emit(
                "queue.forward", arrival, queue=self.queue_id, line=line
            )
