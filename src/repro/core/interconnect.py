"""Dedicated pipelined point-to-point interconnect for HEAVYWT.

HEAVYWT adds a new on-chip network connecting processor cores to the
distributed dedicated queue backing stores — the scalar-operand-network /
synchronization-array class of designs.  The network is pipelined: it
accepts one operand-sized message per cycle per direction regardless of its
end-to-end transit delay, which is what lets streaming codes tolerate large
transit delays (Figure 6) — a longer pipeline simply behaves like extra
queue storage in flight.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.resources import ThroughputPort


class DedicatedInterconnect:
    """Per-direction pipelined channels between core pairs."""

    def __init__(self, transit_delay: int, issue_interval: float = 1.0) -> None:
        if transit_delay <= 0:
            raise ValueError("transit delay must be positive")
        if issue_interval <= 0:
            raise ValueError("issue interval must be positive")
        self.transit_delay = transit_delay
        self.issue_interval = issue_interval
        self._channels: Dict[Tuple[int, int], ThroughputPort] = {}
        self.messages = 0

    def _channel(self, src: int, dst: int) -> ThroughputPort:
        key = (src, dst)
        port = self._channels.get(key)
        if port is None:
            port = ThroughputPort(self.issue_interval, name=f"net-{src}->{dst}")
            self._channels[key] = port
        return port

    def send(self, src: int, dst: int, at: float) -> float:
        """Inject a message at ``at``; returns its arrival time at ``dst``.

        Injection contends only with this channel's issue rate (pipelined
        network); transit adds the fixed end-to-end delay.
        """
        if src == dst:
            raise ValueError("dedicated network connects distinct cores")
        grant = self._channel(src, dst).acquire(at)
        self.messages += 1
        return grant + self.transit_delay

    def in_flight_capacity(self) -> float:
        """Messages the pipeline can hold per channel (transit / interval).

        Longer transit on a pipelined network acts as extra queue storage —
        the effect the paper observes for art/equake/fir in Figure 6.
        """
        return self.transit_delay / self.issue_interval
