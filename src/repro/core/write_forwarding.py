"""MEMOPTI: software queues + producer-initiated write-forwarding (§3.5.1).

MEMOPTI keeps EXISTING's ten-instruction software-queue sequences but adds a
low-impact memory-subsystem optimization: when the producer finishes writing
the last queue entry on a cache line, the cache controller *forwards* the
line to the consumer's private L2 (never to L1, to avoid polluting it with
short-lived streaming data).  Consumer-side flag and data loads then hit
locally instead of demand-fetching across the snoop bus.

The paper's key (and initially surprising) result is that MEMOPTI sometimes
loses to EXISTING: forwarded lines are pushed from the producer's OzQ, and
while the push waits for the bus it recirculates through the L2 ports,
starving regular requests — whereas EXISTING's consumer-demand writebacks
arrive as external coherence requests that the L2 controller prioritizes.
Both effects are modeled in :meth:`repro.mem.hierarchy.MemorySystem.forward_line`
(``contend_ports=True``).
"""

from __future__ import annotations

from repro.core.mechanism import register_mechanism
from repro.core.queue_model import QueueChannel
from repro.core.software_queue import SoftwareQueueMechanism


@register_mechanism("memopti")
class WriteForwardingMechanism(SoftwareQueueMechanism):
    """EXISTING plus write-forwarding of completed queue lines."""

    def _after_flag_set(self, core, ch: QueueChannel, item: int, at: float) -> None:
        """Forward the backing line once its last slot has been written."""
        layout = ch.layout
        if not layout.is_last_in_line(item):
            return
        line_addr = layout.line_addr(layout.line_of(item))
        arrival = self.machine.mem.forward_line(
            src=ch.producer_core,
            dst=ch.consumer_core,
            addr=line_addr,
            at=at,
            release_src=False,
            contend_ports=True,
        )
        if arrival is None:
            # Delivery failed: the consumer's normal coherence miss path
            # still finds the line at the producer, just without the push.
            return
        ch.record_forward(layout.line_of(item), arrival)
        core.stats.lines_forwarded += 1
