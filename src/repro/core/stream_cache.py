"""The 1 KB stream cache (SC) and the SYNCOPTI_SC mechanism (Section 5).

SYNCOPTI's consume-to-use latency is ≥6 cycles: stream-address generation
followed by the L2 access where synchronization happens.  The stream cache
cuts this to 1 cycle: when a write-forwarded queue line fills the consumer's
L2, its memory address is reverse-mapped to a queue address — a (queue
number, queue slot) two-tuple — and the items are deposited in a small
fully-associative structure inside the core.  Consume instructions that hit
read their datum without TLB lookup or memory address generation; entries
are invalidated by the consuming hit; fills are ignored when the cache is
full; misses fall back to the ordinary SYNCOPTI L2 path.  Hitting consumes
still send their counter update to the L2 (off the critical path) so the
producer's occupancy tracking is unaffected.

The structure costs less than 1% of HEAVYWT's dedicated backing store yet
(combined with the 64-entry/QLU-16 queue configuration) brings SYNCOPTI
within 2% of HEAVYWT — the paper's headline result.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.mechanism import register_mechanism
from repro.core.queue_model import QueueChannel
from repro.core.syncopti import SyncOptiMechanism
from repro.sim.config import StreamCacheConfig
from repro.sim.stats import LatencyBreakdown


class StreamCache:
    """Fully-associative queue-addressed cache of forwarded stream items."""

    def __init__(self, config: StreamCacheConfig) -> None:
        config.validate()
        self.config = config
        self.capacity = config.n_entries
        #: (queue_id, slot) -> fill-arrival time.
        self._entries: Dict[Tuple[int, int], float] = {}
        self.fills = 0
        self.fills_ignored = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def fill(self, queue_id: int, slot: int, arrival: float) -> bool:
        """Deposit one forwarded item; ignored when the cache is full."""
        key = (queue_id, slot)
        if key not in self._entries and len(self._entries) >= self.capacity:
            self.fills_ignored += 1
            return False
        self._entries[key] = arrival
        self.fills += 1
        return True

    def lookup(self, queue_id: int, slot: int, at: float):
        """Consume-side probe: hit pops the entry (invalidate-on-hit).

        Returns the fill-arrival time on a hit (which may be in the future
        if the fill is still in flight), or ``None`` on a miss.
        """
        key = (queue_id, slot)
        arrival = self._entries.pop(key, None)
        if arrival is None:
            self.misses += 1
            return None
        self.hits += 1
        return arrival

    def invalidate_queue(self, queue_id: int) -> int:
        """Drop all entries of one queue (context-switch support)."""
        victims = [k for k in self._entries if k[0] == queue_id]
        for k in victims:
            del self._entries[k]
        return len(victims)


@register_mechanism("syncopti_sc")
class StreamCacheMechanism(SyncOptiMechanism):
    """SYNCOPTI with the per-core stream cache enabled."""

    def __init__(self, machine) -> None:
        super().__init__(machine)
        sc_cfg = machine.config.stream_cache
        self._caches = [StreamCache(sc_cfg) for _ in range(machine.config.n_cores)]

    def stream_cache(self, core_id: int) -> StreamCache:
        return self._caches[core_id]

    # ------------------------------------------------------------------

    def _fill_stream_cache(self, ch: QueueChannel, last_item: int, arrival: float) -> None:
        """Reverse-map a forwarded line's items into the consumer's SC."""
        layout = ch.layout
        sc = self._caches[ch.consumer_core]
        first = last_item - (layout.qlu - 1)
        for item in range(first, last_item + 1):
            sc.fill(ch.queue_id, layout.slot_of(item), arrival)

    def _obtain_item(self, core, ch: QueueChannel, item: int, t_sync: float):
        """Try the stream cache first; fall back to the SYNCOPTI L2 path."""
        layout = ch.layout
        sc = self._caches[core.core_id]
        # A hit is only possible once the line's forward has been simulated;
        # wait for visibility exactly like base SYNCOPTI (same deadline
        # semantics), then probe the SC.
        cfg = self.machine.config
        if len(ch.produced) > item:
            status = "ok"
        else:
            deadline = t_sync + cfg.syncopti.partial_line_timeout
            status = yield from self.wait_for_len(
                core, ch.produced, item, deadline=deadline,
                reason="empty", queue_id=ch.queue_id,
            )
        if status == "ok":
            arrival = sc.lookup(ch.queue_id, layout.slot_of(item), t_sync)
            if arrival is not None:
                core.stats.stream_cache_hits += 1
                avail = max(arrival, ch.produced[item])
                wait = max(0.0, avail - t_sync)
                core.stats.queue_empty_stall += wait
                # 1-cycle consume-to-use; the stream address logic's latency
                # is what the SC bypasses.
                issue = t_sync - cfg.syncopti.stream_addr_latency
                ready = max(issue + cfg.stream_cache.hit_latency, avail)
                # Counter update still goes to the L2, off the critical path.
                self.machine.mem.ozq[core.core_id].acquire_port(ready, busy=1.0)
                mix = LatencyBreakdown(
                    total=int(ready - issue), prel2=int(wait)
                )
                core.horizon = max(core.horizon, ready)
                return ready, mix
            core.stats.stream_cache_misses += 1
        # Miss (or timeout): identical to base SYNCOPTI.
        result = yield from self._resolve_via_l2(core, ch, item, t_sync, status)
        return result

    def _resolve_via_l2(self, core, ch: QueueChannel, item: int, t_sync: float, status: str):
        """Base-SYNCOPTI resolution, reusing the already-determined status."""
        cfg = self.machine.config
        layout = ch.layout
        if status == "ok":
            avail = ch.produced[item]
            wait = max(0.0, avail - t_sync)
            core.stats.queue_empty_stall += wait
            res = self.machine.mem.stream_load(
                core.core_id, layout.data_addr(item), max(t_sync, avail)
            )
            mix = res.breakdown
            mix.prel2 += int(wait)
            mix.total += int(wait)
            return res.complete, mix
        yield from self.wait_for_len(
            core, ch.store_complete, item,
            reason="partial-line", queue_id=ch.queue_id,
        )
        stored = ch.store_complete[item]
        t0 = max(t_sync + cfg.syncopti.partial_line_timeout, stored)
        core.stats.queue_empty_stall += t0 - t_sync
        res = self.machine.mem.stream_load(core.core_id, layout.data_addr(item), t0)
        while len(ch.produced) <= item:
            ch.record_produced(res.complete)
        mix = res.breakdown
        mix.prel2 += int(t0 - t_sync)
        mix.total += int(t0 - t_sync)
        return res.complete, mix
