"""HEAVYWT: dedicated distributed backing store + dedicated network (§4.1).

The performance-no-object design point: single-instruction produce/consume,
a dedicated distributed queue store located at the consumer core (servicing
4 concurrent operations per cycle, 1-cycle consume-to-use), occupancy
counters replicated at both endpoints, and a new dedicated pipelined
interconnect — the synchronization-array / Raw scalar-operand-network class
of hardware.  Queue traffic never touches the memory subsystem, so its L2 /
BUS / L3 / MEM components are zero by construction; its costs are die area
and the OS burden of context-switching all of this architectural state.
"""

from __future__ import annotations

from typing import Generator

from repro.core.interconnect import DedicatedInterconnect
from repro.core.mechanism import CommMechanism, register_mechanism
from repro.sim.isa import DynInst
from repro.sim.resources import UnitPool
from repro.sim.stats import LatencyBreakdown


@register_mechanism("heavywt")
class HeavyWeightMechanism(CommMechanism):
    """Dedicated-store, dedicated-network streaming support."""

    flag_bytes = 0

    def __init__(self, machine) -> None:
        super().__init__(machine)
        ded = machine.config.dedicated
        self.network = DedicatedInterconnect(ded.transit_delay)
        #: Per-core dedicated-store ports (4 concurrent ops per cycle).
        self._store_ports = [
            UnitPool(ded.ops_per_cycle, name=f"sa-ports-{c}")
            for c in range(machine.config.n_cores)
        ]

    # ------------------------------------------------------------------

    def produce(self, core, inst: DynInst) -> Generator:
        ch = self.channel(inst.queue)
        item = ch.n_produced
        ch.n_produced += 1
        ded = self.machine.config.dedicated

        issue = core.issue_comm_slot(inst)
        core.retire(1, overhead=True)
        t = issue

        # Local occupancy counter: block the pipeline on a full queue until
        # the consumer's ACK (carried on the dedicated network) arrives.
        gate = ch.producer_must_wait_for(item)
        if gate is not None:
            yield from self.wait_for_len(
                core, ch.freed, gate, reason="full", queue_id=ch.queue_id
            )
            free_t = ch.freed[gate]
            if free_t > t:
                core.stats.queue_full_stall += free_t - t
                core.stall_until(free_t, component="PreL2")
                t = free_t

        # Ship the operand to the consumer-side dedicated store.  Write
        # ports at the store are provisioned for the network's injection
        # rate (≤1 operand/cycle/channel vs 4 ops/cycle), so arrivals never
        # queue; only consume-side reads contend for ports.
        arrival = self.network.send(ch.producer_core, ch.consumer_core, t)
        ch.record_produced(arrival)
        ch.record_store_complete(arrival)
        core.horizon = max(core.horizon, arrival)
        return None

    # ------------------------------------------------------------------

    def consume(self, core, inst: DynInst) -> Generator:
        ch = self.channel(inst.queue)
        item = ch.n_consumed
        ch.n_consumed += 1
        ded = self.machine.config.dedicated

        issue = core.issue_comm_slot(inst)
        core.retire(1, overhead=True)

        yield from self.wait_for_len(
            core, ch.produced, item, reason="empty", queue_id=ch.queue_id
        )
        avail = ch.produced[item]
        wait = max(0.0, avail - issue)
        core.stats.queue_empty_stall += wait

        # Read from the local dedicated store: 1-cycle consume-to-use.
        grant = self._store_ports[core.core_id].acquire(max(issue, avail), busy=1.0)
        ready = grant + ded.consume_to_use
        if inst.dest is not None:
            core.scoreboard.define(
                inst.dest,
                ready,
                LatencyBreakdown(total=int(ready - issue), prel2=int(wait)),
            )
        core.horizon = max(core.horizon, ready)

        # Occupancy ACK back to the producer over the dedicated network.
        freed_visible = self.network.send(ch.consumer_core, ch.producer_core, ready)
        ch.record_freed(freed_visible)
        return None
