"""SYNCOPTI: streaming-tuned message passing atop shared memory (§4.2).

SYNCOPTI adds ``produce``/``consume`` instructions to the ISA but keeps the
memory subsystem as the backing store and the existing L3 bus as the
interconnect — the paper's light-weight sweet spot.  The moving parts:

* **Stream address logic** renames produce/consume instructions to
  consecutive backing-store addresses; its 2-cycle latency overlaps the L1
  access but serializes the trip to the L2, making the consume-to-use
  latency at least ``stream_addr + L2`` cycles (vs 1 cycle in HEAVYWT).
* **Occupancy counters** at each L2 controller synchronize the two sides
  without any flag traffic.  A produce to a full queue sits *dormant* in one
  OzQ entry until the counter permits — filling the OzQ and backpressuring
  the pipeline (PreL2), but not churning L2 ports like a software spin.
* **Locality-enhanced write-forwarding** pushes a backing line to the
  consumer's L2 only after *all* QLU entries on it are written, and hands
  ownership over (the producer's copy is released).  Forwarding doubles as
  the consumer-side counter update: items become consumable when their line
  arrives.
* **Bulk ACKs**: when the consumer reads the last item on a line it puts a
  single counter-update message on the bus, freeing all the line's slots at
  the producer at once.
* **Wrap-around stall**: a producer re-entering a line stalls until the
  consumer has drained it, preserving the consumer's spatial locality.
* **Partial-line timeout**: a consume whose line will never fill (stream
  ended or producer stalled mid-line) times out and performs a demand L2/L3
  access, eliciting a writeback of the partial line from the producer —
  avoiding deadlock (Section 4.2).
"""

from __future__ import annotations

from typing import Generator

from repro.core.mechanism import CommMechanism, register_mechanism
from repro.core.queue_model import QueueChannel
from repro.sim.isa import DynInst


@register_mechanism("syncopti")
class SyncOptiMechanism(CommMechanism):
    """Produce/consume instructions + counters over the memory subsystem."""

    flag_bytes = 0  # synchronization is counter-based; no per-slot flags

    # ------------------------------------------------------------------

    def produce(self, core, inst: DynInst) -> Generator:
        ch = self.channel(inst.queue)
        layout = ch.layout
        item = ch.n_produced
        ch.n_produced += 1
        cfg = self.machine.config

        # The produce instruction issues in-order (waiting on its source
        # operand) and occupies one memory-port slot; its stream address is
        # generated in parallel with the L1 bypass.
        issue = core.issue_comm_slot(inst)
        core.retire(1, overhead=True)
        t = issue + cfg.syncopti.stream_addr_latency

        # Occupancy check at the L2 controller.  On a full queue the produce
        # sits dormant in the OzQ until a counter update frees a line.
        gate = ch.producer_must_wait_for(item)
        if gate is not None:
            yield from self.wait_for_len(
                core, ch.freed, gate, reason="full", queue_id=ch.queue_id
            )
            free_t = ch.freed[gate]
            if free_t > t:
                core.stats.queue_full_stall += free_t - t
                core.stats.ozq_backpressure_events += 1
                ozq = self.machine.mem.ozq[core.core_id]
                entry = ozq.begin_entry(t)
                ozq.end_entry(entry, free_t)
                core.stall_until(free_t, component="PreL2")
                t = max(t, core.now)

        # Write the item into the backing line in the producer's L2.
        res = self.machine.mem.store(
            core.core_id, layout.data_addr(item), t, streaming=True
        )
        core.charge("PreL2", res.prel2_wait)
        core.horizon = max(core.horizon, res.complete)
        ch.record_store_complete(res.complete)

        # Locality-enhanced write-forward: only once the line is full.
        if layout.is_last_in_line(item):
            self._forward_line(core, ch, item, res.complete)
        return None

    def _forward_line(self, core, ch: QueueChannel, item: int, at: float) -> None:
        """Push the completed line to the consumer; publish its items."""
        layout = ch.layout
        line = layout.line_of(item)
        arrival = self.machine.mem.forward_line(
            src=ch.producer_core,
            dst=ch.consumer_core,
            addr=layout.line_addr(line),
            at=at,
            release_src=True,
            contend_ports=False,
        )
        if arrival is None:
            # The forward was never delivered: items stay unpublished and
            # the consumer's partial-line timeout elicits them on demand.
            return
        ch.record_forward(line, arrival)
        core.stats.lines_forwarded += 1
        # All stored-but-unpublished items up to `item` become visible when
        # the line lands (the forward *is* the consumer's counter update).
        while len(ch.produced) <= item:
            ch.record_produced(arrival)
        self._fill_stream_cache(ch, item, arrival)

    def _fill_stream_cache(self, ch: QueueChannel, last_item: int, arrival: float) -> None:
        """Hook for the stream-cache variant (no-op in base SYNCOPTI)."""

    # ------------------------------------------------------------------

    def consume(self, core, inst: DynInst) -> Generator:
        ch = self.channel(inst.queue)
        layout = ch.layout
        item = ch.n_consumed
        ch.n_consumed += 1
        cfg = self.machine.config

        issue = core.issue_comm_slot(inst)
        core.retire(1, overhead=True)
        t_sync = issue + cfg.syncopti.stream_addr_latency

        # Wait for the item to become visible: normally via its line's
        # write-forward; on timeout via a demand fetch (partial lines).
        ready, mix = yield from self._obtain_item(core, ch, item, t_sync)
        if inst.dest is not None:
            core.scoreboard.define(inst.dest, ready, mix)
        core.horizon = max(core.horizon, ready)

        # Bulk ACK: last item on the line frees all its slots at once.
        if layout.is_last_in_line(item) or ch.n_consumed == ch.n_produced == len(
            ch.store_complete
        ):
            self._bulk_ack(core, ch, item, ready)
        return None

    def _obtain_item(self, core, ch: QueueChannel, item: int, t_sync: float):
        """Resolve availability + data access; returns (ready, mix)."""
        cfg = self.machine.config
        layout = ch.layout
        if len(ch.produced) > item:
            status = "ok"
        else:
            deadline = t_sync + cfg.syncopti.partial_line_timeout
            status = yield from self.wait_for_len(
                core, ch.produced, item, deadline=deadline,
                reason="empty", queue_id=ch.queue_id,
            )
        if status == "ok":
            avail = ch.produced[item]
            wait = max(0.0, avail - t_sync)
            core.stats.queue_empty_stall += wait
            res = self.machine.mem.stream_load(
                core.core_id, layout.data_addr(item), max(t_sync, avail)
            )
            mix = res.breakdown
            mix.prel2 += int(wait)
            mix.total += int(wait)
            return res.complete, mix
        # Timeout: elicit a writeback of the partial line from the producer.
        yield from self.wait_for_len(
            core, ch.store_complete, item,
            reason="partial-line", queue_id=ch.queue_id,
        )
        stored = ch.store_complete[item]
        t0 = max(t_sync + cfg.syncopti.partial_line_timeout, stored)
        core.stats.queue_empty_stall += t0 - t_sync
        res = self.machine.mem.stream_load(core.core_id, layout.data_addr(item), t0)
        # This item (and nothing beyond it) is now visible.
        while len(ch.produced) <= item:
            ch.record_produced(res.complete)
        mix = res.breakdown
        mix.prel2 += int(t0 - t_sync)
        mix.total += int(t0 - t_sync)
        return res.complete, mix

    def _bulk_ack(self, core, ch: QueueChannel, item: int, at: float) -> None:
        """One bus message updates the producer's occupancy counters."""
        done = self.machine.mem.control_ack(ch.consumer_core, at)
        missing = (item + 1) - len(ch.freed)
        if missing > 0:
            ch.record_freed_bulk(missing, done)

    # ------------------------------------------------------------------

    def on_streaming_eviction(self, core_id: int, line_addr: int, at: float) -> None:
        """An evicted streaming line flushes its occupancy on the bus."""
        self.machine.mem.control_ack(core_id, at)
