"""Formatting helpers that print results the way the paper's exhibits do."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.stats import geomean

#: Stacked-bar components, bottom-to-top, as in Figures 7/10/11/12.
BAR_COMPONENTS = ("COMPUTE", "PreL2", "L2", "BUS", "L3", "MEM", "PostL2")


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Plain fixed-width table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def normalized_series(
    cycles: Mapping[str, float], baseline_key: str
) -> Dict[str, float]:
    """Normalize a {label: cycles} mapping to one label's value."""
    base = cycles[baseline_key]
    if base <= 0:
        raise ValueError(f"baseline {baseline_key!r} has non-positive cycles")
    return {k: v / base for k, v in cycles.items()}


def with_geomean(series: Mapping[str, float]) -> Dict[str, float]:
    """Append the paper's GeoMean summary entry.

    Raises :class:`ValueError` naming the problem when the series is empty
    or contains non-positive entries, instead of letting :func:`geomean`
    fail with a message that cannot say *which* labels are bad.
    """
    if not series:
        raise ValueError("with_geomean: empty series has no geometric mean")
    bad = sorted(k for k, v in series.items() if v <= 0)
    if bad:
        raise ValueError(
            f"with_geomean: non-positive values for {bad}; "
            "normalize against a positive baseline first"
        )
    out = dict(series)
    out["GeoMean"] = geomean(series.values())
    return out


def breakdown_row(components: Mapping[str, float]) -> List[str]:
    """One stacked bar as fixed-precision cells in BAR_COMPONENTS order."""
    return [f"{components.get(name, 0.0):.2f}" for name in BAR_COMPONENTS]


def format_breakdown_table(
    title: str,
    bars: Mapping[str, Mapping[str, float]],
) -> str:
    """A breakdown figure as text: one row per bar, one column per component.

    ``bars`` maps a bar label (e.g. "wc/HEAVYWT") to its normalized
    component dict.  The Total column is the bar's height — the normalized
    execution time the paper plots.
    """
    headers = ["bar", *BAR_COMPONENTS, "Total"]
    rows = []
    for label, comps in bars.items():
        rows.append(
            [label, *breakdown_row(comps), f"{sum(comps.values()):.2f}"]
        )
    return f"== {title} ==\n" + format_table(headers, rows)
