"""One entry per table and figure of the paper's evaluation.

Every function regenerates one exhibit — same rows, same series, same
normalization conventions — returning an :class:`ExperimentResult` whose
``data`` holds the numbers (for tests/benches to assert on) and whose
``text`` is a printable rendering.  Absolute cycle counts differ from the
paper's Itanium 2 testbed; the *shapes* (orderings, approximate factors,
crossovers) are the reproduction targets recorded in EXPERIMENTS.md.

Resilience: every (benchmark x design point) cell runs through
:func:`~repro.harness.runner.run_benchmark_resilient`, so one deadlocking or
runaway cell cannot abort an exhibit.  Failed cells render as the
:data:`GAP` marker in tables, are excluded from geomeans, and surface as
structured :class:`~repro.harness.runner.FailedRun` records (post-mortem
attached) under ``result.failures`` / ``data["failures"]``.

Parallelism: every figure function (and :func:`run_all`) takes ``jobs``;
``jobs > 1`` dispatches its grid through the campaign runner's worker pool
(:mod:`repro.harness.campaign`) instead of the serial in-process loop.  Both
paths run the same per-cell executor, so a pooled figure's cycle counts and
fingerprints are bit-identical to the serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.design_points import FIGURE7_ORDER, FIGURE12_ORDER
from repro.harness.campaign import CampaignCell, run_cells
from repro.harness.reporting import (
    format_breakdown_table,
    format_table,
    normalized_series,
    with_geomean,
)
from repro.harness.runner import (
    FailedRun,
    RunOutcome,
    run_benchmark_resilient,
)
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.stats import geomean
from repro.workloads.suite import BENCHMARK_ORDER, BENCHMARKS

#: Per-benchmark iteration counts for experiment runs: long-iteration
#: (memory-bound) loops need fewer trips for steady state.
EXPERIMENT_TRIPS: Dict[str, int] = {
    "art": 400,
    "equake": 200,
    "mcf": 150,
    "bzip2": 480,
    "adpcmdec": 400,
    "epicdec": 200,
    "wc": 500,
    "fir": 400,
    "fft2": 200,
}

#: Rendered in place of a failed cell's value: an explicit gap, not a zero.
GAP = "--"


@dataclass
class ExperimentResult:
    """One regenerated exhibit."""

    exhibit: str
    description: str
    data: Dict
    text: str
    #: Structured records for every cell that failed (post-mortem attached):
    #: :class:`FailedRun` diagnoses and, under a campaign watchdog,
    #: :class:`~repro.harness.runner.TimedOutRun` kills.
    failures: List[RunOutcome] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _trips(benchmark: str, scale: float = 1.0) -> int:
    return max(32, int(EXPERIMENT_TRIPS[benchmark] * scale))


# ----------------------------------------------------------------------
# Resilient-grid plumbing
# ----------------------------------------------------------------------


def sweep(
    benchmarks: Iterable[str],
    design_points: Iterable[str],
    trip_count: Optional[int] = None,
    scale: float = 1.0,
    config_for=None,
    overrides: Optional[Dict[str, int]] = None,
    fault_plan_for=None,
    jobs: int = 1,
    kernel: str = "reference",
) -> Dict[str, Dict[str, RunOutcome]]:
    """Run a (benchmark x design point) grid, isolating per-cell failures.

    Args:
        benchmarks: Benchmark names to sweep.
        design_points: Design-point names to sweep.
        trip_count: Fixed iteration count (None = per-benchmark default
            scaled by ``scale``).
        scale: Multiplier on the per-benchmark defaults when ``trip_count``
            is None.
        config_for: Optional ``(benchmark, point) -> Optional[MachineConfig]``
            hook supplying a custom config per cell; returning None uses the
            design point's own config.  Serial-only: configs are closures
            over live objects, so this hook cannot cross the worker-pool
            process boundary — use ``overrides`` / ``fault_plan_for`` with
            ``jobs > 1``.
        overrides: Declarative ``{knob: value}`` config deltas (see
            :data:`repro.core.design_points.OVERRIDE_KNOBS`) applied to
            every cell; works with any ``jobs``.
        fault_plan_for: Optional ``(benchmark, point) -> Optional[FaultPlan]``
            hook attaching a seeded fault plan per cell; plans are plain
            data, so this works with any ``jobs``.
        jobs: ``1`` runs the serial in-process loop (the default fallback);
            ``> 1`` dispatches the grid through the campaign runner's
            worker pool.
        kernel: Simulation kernel every cell runs under
            (:mod:`repro.sim.kernel`); fingerprint-identical across
            kernels, so exhibits are kernel-invariant by construction.

    Returns a nested dict ``grid[benchmark][point]`` of
    :class:`~repro.harness.runner.RunOutcome`: failing cells become
    :class:`FailedRun` records and the rest of the grid still completes.
    """
    if config_for is not None:
        if jobs > 1:
            raise ValueError(
                "config_for is a live-object hook and cannot cross the "
                "worker-pool boundary; express the cell deltas as "
                "overrides=/fault_plan_for= to use jobs > 1"
            )
        grid: Dict[str, Dict[str, RunOutcome]] = {}
        for bench in benchmarks:
            grid[bench] = {}
            trips = trip_count if trip_count is not None else _trips(bench, scale)
            for name in design_points:
                grid[bench][name] = run_benchmark_resilient(
                    bench, name, trips, config=config_for(bench, name), kernel=kernel
                )
        return grid

    layout: List[tuple] = []
    cells: List[CampaignCell] = []
    for bench in benchmarks:
        trips = trip_count if trip_count is not None else _trips(bench, scale)
        for name in design_points:
            cell = CampaignCell(
                benchmark=bench,
                design_point=name,
                trip_count=trips,
                overrides=dict(overrides or {}),
                fault_plan=(
                    fault_plan_for(bench, name) if fault_plan_for is not None else None
                ),
                kernel=kernel,
            )
            layout.append((bench, name, cell.key()))
            cells.append(cell)
    outcomes = run_cells(cells, jobs=jobs)
    grid = {}
    for bench, name, key in layout:
        grid.setdefault(bench, {})[name] = outcomes[key]
    return grid


def _grid_failures(grid: Mapping[str, Mapping[str, RunOutcome]]) -> List[RunOutcome]:
    return [
        cell for runs in grid.values() for cell in runs.values() if not cell.ok
    ]


def _fmt(value: Optional[float]) -> str:
    return GAP if value is None else f"{value:.2f}"


def _partial_geomean(values: Iterable[Optional[float]]) -> Optional[float]:
    """Geomean over the non-gap values; None when every cell is a gap."""
    present = [v for v in values if v is not None]
    if not present:
        return None
    return geomean(present)


def _failure_footer(failures: List[FailedRun]) -> str:
    if not failures:
        return ""
    lines = [f"\n\n{len(failures)} cell(s) failed (rendered as {GAP}):"]
    for f in failures:
        lines.append(f"  {f.benchmark}/{f.design_point}: {f.error_type}: {f.error}")
    return "\n".join(lines)


def _design_point_grid(
    points,
    scale: float,
    overrides: Optional[Dict[str, int]] = None,
    jobs: int = 1,
    kernel: str = "reference",
) -> Dict[str, Dict[str, RunOutcome]]:
    return sweep(
        BENCHMARK_ORDER, points, scale=scale, overrides=overrides, jobs=jobs,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------


def table1() -> ExperimentResult:
    """Table 1: benchmark loop information."""
    rows = [
        (info.name, info.function, info.source, info.pct_exec_time)
        for info in BENCHMARKS.values()
    ]
    text = "== Table 1: Benchmark Loop Information ==\n" + format_table(
        ("Benchmark", "Function", "Source", "% Exec. Time"), rows
    )
    return ExperimentResult(
        exhibit="table1",
        description="Benchmark loop information",
        data={"rows": rows},
        text=text,
    )


def table2() -> ExperimentResult:
    """Table 2: baseline simulator configuration."""
    desc = baseline_config().describe()
    text = "== Table 2: Baseline Simulator ==\n" + format_table(
        ("Parameter", "Value"), desc.items()
    )
    return ExperimentResult(
        exhibit="table2",
        description="Baseline simulator configuration",
        data={"parameters": desc},
        text=text,
    )


# ----------------------------------------------------------------------
# Figure 6: transit-delay tolerance of HEAVYWT
# ----------------------------------------------------------------------


def figure6(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 6: HEAVYWT at 1- vs 10-cycle transit, 32- vs 64-entry queues.

    Paper shape: the 1-cycle and 10-cycle bars are nearly equal for all
    benchmarks except bzip2 (whose outer loop cannot be pipelined, ~33%
    slower at 10 cycles); some benchmarks improve slightly at 10 cycles
    (pipelined transit acts as extra queue storage); the 64-entry queue
    recovers the residual slowdowns.
    """
    variants: Dict[str, Dict[str, int]] = {
        "1c/32q": {"transit_delay": 1, "queue_depth": 32},
        "10c/32q": {"transit_delay": 10, "queue_depth": 32},
        "10c/64q": {"transit_delay": 10, "queue_depth": 64},
    }
    labels = tuple(variants)
    layout: List[tuple] = []
    cells: List[CampaignCell] = []
    for bench in BENCHMARK_ORDER:
        for label, ov in variants.items():
            cell = CampaignCell(
                benchmark=bench,
                design_point="HEAVYWT",
                trip_count=_trips(bench, scale),
                overrides=dict(ov),
                kernel=kernel,
            )
            layout.append((bench, label, cell.key()))
            cells.append(cell)
    outcomes = run_cells(cells, jobs=jobs)
    series: Dict[str, Dict[str, Optional[float]]] = {}
    failures: List[RunOutcome] = []
    for bench in BENCHMARK_ORDER:
        cycles: Dict[str, float] = {}
        for b, label, key in layout:
            if b != bench:
                continue
            outcome = outcomes[key]
            if outcome.ok:
                cycles[label] = outcome.cycles
            else:
                failures.append(outcome)
        if "1c/32q" in cycles:
            normalized = normalized_series(cycles, "1c/32q")
        else:
            normalized = {}
        series[bench] = {label: normalized.get(label) for label in labels}
    rows = [(b, *(_fmt(v[label]) for label in labels)) for b, v in series.items()]
    gms = {
        label: _partial_geomean(v[label] for v in series.values()) for label in labels
    }
    rows.append(("GeoMean", *(_fmt(gms[k]) for k in labels)))
    text = (
        "== Figure 6: Effect of transit delay on streaming codes ==\n"
        + format_table(("Benchmark", "1-cycle/32", "10-cycle/32", "10-cycle/64"), rows)
        + _failure_footer(failures)
    )
    return ExperimentResult(
        exhibit="figure6",
        description="Transit-delay tolerance of pipelined streaming (HEAVYWT)",
        data={"normalized": series, "geomean": gms, "failures": failures},
        text=text,
        failures=failures,
    )


# ----------------------------------------------------------------------
# Figures 7 / 10 / 11: design-point comparison with breakdowns
# ----------------------------------------------------------------------


def _breakdown_figure(
    exhibit: str,
    title: str,
    points,
    scale: float,
    overrides: Optional[Dict[str, int]] = None,
    thread: str = "producer",
    baseline_point: Optional[str] = None,
    jobs: int = 1,
    kernel: str = "reference",
) -> ExperimentResult:
    grid = _design_point_grid(
        points, scale, overrides=overrides, jobs=jobs, kernel=kernel
    )
    baseline_point = baseline_point or points[0]
    failures = _grid_failures(grid)
    normalized: Dict[str, Dict[str, Optional[float]]] = {}
    bars: Dict[str, Mapping[str, float]] = {}
    for bench, runs in grid.items():
        baseline = runs[baseline_point]
        if not baseline.ok:
            # No baseline, no normalization: the whole row is a gap.
            normalized[bench] = {name: None for name in points}
            continue
        base = baseline.cycles
        normalized[bench] = {}
        for name in points:
            cell = runs[name]
            if not cell.ok:
                normalized[bench][name] = None
                continue
            normalized[bench][name] = cell.cycles / base
            stats = cell.producer if thread == "producer" else cell.consumer
            bars[f"{bench}/{name}"] = stats.normalized_components(base)
    gms = {
        name: _partial_geomean(normalized[b][name] for b in normalized)
        for name in points
    }
    text = format_breakdown_table(title, bars) + "\n\nNormalized execution time:\n"
    rows = [(b, *(_fmt(normalized[b][n]) for n in points)) for b in normalized]
    rows.append(("GeoMean", *(_fmt(gms[n]) for n in points)))
    text += format_table(("Benchmark", *points), rows)
    text += _failure_footer(failures)
    return ExperimentResult(
        exhibit=exhibit,
        description=title,
        data={
            "normalized": normalized,
            "geomean": gms,
            "bars": dict(bars),
            "failures": failures,
        },
        text=text,
        failures=failures,
    )


def figure7(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 7: normalized execution times for each design point.

    Paper shape: HEAVYWT best everywhere; SYNCOPTI trails it closely
    (average ~31% behind, worst for wc's very tight loop) and beats
    EXISTING/MEMOPTI by ~1.6x; MEMOPTI is not faster than EXISTING (OzQ
    write-forward recirculation vs prioritized external writebacks).
    """
    return _breakdown_figure(
        "figure7",
        "Figure 7: Normalized execution times for each design point (producer)",
        list(FIGURE7_ORDER),
        scale,
        jobs=jobs,
        kernel=kernel,
    )


def figure10(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 10: 4-CPU-cycle bus latency sensitivity.

    Paper shape: tight loops (adpcmdec, wc, epicdec) hurt most; even larger
    memory-intensive loops (mcf, equake) grow a significant BUS component
    from arbitration backlog (8 bus cycles = 32 CPU cycles per line).
    """
    return _breakdown_figure(
        "figure10",
        "Figure 10: Effect of increased transit delay (bus latency = 4 CPU cycles)",
        list(FIGURE7_ORDER),
        scale,
        overrides={"bus_latency": 4, "transit_delay": 4},
        jobs=jobs,
        kernel=kernel,
    )


def figure11(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 11: 128-byte-wide bus at 4-cycle latency.

    Paper shape: the wide bus (one beat per line) removes the arbitration
    backlog, shrinking the BUS components relative to Figure 10.
    """
    return _breakdown_figure(
        "figure11",
        "Figure 11: Effect of increased interconnect bandwidth "
        "(transit = 4 cycles, bus width = 128 bytes)",
        list(FIGURE7_ORDER),
        scale,
        overrides={"bus_latency": 4, "bus_width": 128, "transit_delay": 4},
        jobs=jobs,
        kernel=kernel,
    )


# ----------------------------------------------------------------------
# Figure 8: communication frequency
# ----------------------------------------------------------------------


def figure8(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 8: dynamic comm-to-application instruction ratios.

    Paper shape: with produce/consume instructions, one communication per
    5-20 application instructions; wc is the extreme (3 consumes per
    iteration of a very tight loop).
    """
    cells = {
        bench: CampaignCell(
            benchmark=bench,
            design_point="HEAVYWT",
            trip_count=_trips(bench, scale),
            kernel=kernel,
        )
        for bench in BENCHMARK_ORDER
    }
    outcomes = run_cells(cells.values(), jobs=jobs)
    ratios: Dict[str, Dict[str, Optional[float]]] = {}
    failures: List[RunOutcome] = []
    for bench in BENCHMARK_ORDER:
        outcome = outcomes[cells[bench].key()]
        if not outcome.ok:
            failures.append(outcome)
            ratios[bench] = {"producer": None, "consumer": None}
            continue
        ratios[bench] = {
            "producer": outcome.producer.comm_to_app_ratio,
            "consumer": outcome.consumer.comm_to_app_ratio,
        }
    gms = {
        side: _partial_geomean(
            max(r[side], 1e-9) if r[side] is not None else None
            for r in ratios.values()
        )
        for side in ("producer", "consumer")
    }
    rows = [
        (b, *(GAP if r[s] is None else f"{r[s]:.3f}" for s in ("producer", "consumer")))
        for b, r in ratios.items()
    ]
    rows.append(
        (
            "GeoMean",
            *(
                GAP if gms[s] is None else f"{gms[s]:.3f}"
                for s in ("producer", "consumer")
            ),
        )
    )
    text = (
        "== Figure 8: comm : application instruction ratio ==\n"
        + format_table(("Benchmark", "Producer", "Consumer"), rows)
        + _failure_footer(failures)
    )
    return ExperimentResult(
        exhibit="figure8",
        description="Dynamic communication to application instruction ratios",
        data={"ratios": ratios, "geomean": gms, "failures": failures},
        text=text,
        failures=failures,
    )


# ----------------------------------------------------------------------
# Figure 9: HEAVYWT speedup over single-threaded
# ----------------------------------------------------------------------


def figure9(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 9: loop speedup of HEAVYWT over single-threaded execution.

    Paper shape: all benchmarks at or above 1.0, geomean ~1.29x — meaning
    the other mechanisms' COMM-OP overheads can erase parallelization gains.
    """
    mt_cells: Dict[str, CampaignCell] = {}
    st_cells: Dict[str, CampaignCell] = {}
    for bench in BENCHMARK_ORDER:
        trips = _trips(bench, scale)
        mt_cells[bench] = CampaignCell(
            benchmark=bench, design_point="HEAVYWT", trip_count=trips, kernel=kernel
        )
        st_cells[bench] = CampaignCell(
            benchmark=bench, kind="single", trip_count=trips, kernel=kernel
        )
    outcomes = run_cells(
        list(mt_cells.values()) + list(st_cells.values()), jobs=jobs
    )
    speedups: Dict[str, Optional[float]] = {}
    failures: List[RunOutcome] = []
    for bench in BENCHMARK_ORDER:
        mt = outcomes[mt_cells[bench].key()]
        st = outcomes[st_cells[bench].key()]
        if not mt.ok:
            failures.append(mt)
        if not st.ok:
            failures.append(st)
        if not (mt.ok and st.ok):
            speedups[bench] = None
            continue
        speedups[bench] = st.cycles / mt.cycles
    present = {b: s for b, s in speedups.items() if s is not None}
    series: Dict[str, Optional[float]] = dict(speedups)
    series["GeoMean"] = (
        with_geomean(present)["GeoMean"] if present else None
    )
    rows = [(b, _fmt(s)) for b, s in series.items()]
    text = (
        "== Figure 9: HEAVYWT loop speedup over single-threaded ==\n"
        + format_table(("Benchmark", "Speedup"), rows)
        + _failure_footer(failures)
    )
    return ExperimentResult(
        exhibit="figure9",
        description="Speedup of optimized loops in HEAVYWT over single-threaded",
        data={"speedups": speedups, "geomean": series["GeoMean"], "failures": failures},
        text=text,
        failures=failures,
    )


# ----------------------------------------------------------------------
# Figure 12: SYNCOPTI optimizations (Q64, SC, SC+Q64)
# ----------------------------------------------------------------------


def figure12(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Figure 12: stream cache and queue size effects on SYNCOPTI.

    Paper shape: Q64 reduces producer stalls, SC cuts consume-to-use
    latency, and SC+Q64 reaches within ~2% of HEAVYWT — a 2x speedup over
    EXISTING/MEMOPTI — at ~1% of the dedicated store's cost.
    """
    points = list(FIGURE12_ORDER)
    grid = _design_point_grid(points, scale, jobs=jobs, kernel=kernel)
    failures = _grid_failures(grid)
    normalized: Dict[str, Dict[str, Optional[float]]] = {}
    producer_bars: Dict[str, Mapping[str, float]] = {}
    consumer_bars: Dict[str, Mapping[str, float]] = {}
    for bench, runs in grid.items():
        baseline = runs["HEAVYWT"]
        if not baseline.ok:
            normalized[bench] = {name: None for name in points}
            continue
        base = baseline.cycles
        normalized[bench] = {}
        for name in points:
            cell = runs[name]
            if not cell.ok:
                normalized[bench][name] = None
                continue
            normalized[bench][name] = cell.cycles / base
            producer_bars[f"{bench}/{name}"] = cell.producer.normalized_components(base)
            consumer_bars[f"{bench}/{name}"] = cell.consumer.normalized_components(base)
    gms = {
        name: _partial_geomean(normalized[b][name] for b in normalized)
        for name in points
    }
    text = (
        format_breakdown_table(
            "Figure 12 (producer): stream cache and queue size effects", producer_bars
        )
        + "\n\n"
        + format_breakdown_table(
            "Figure 12 (consumer): stream cache and queue size effects", consumer_bars
        )
        + "\n\nNormalized execution time:\n"
    )
    rows = [(b, *(_fmt(normalized[b][n]) for n in points)) for b in normalized]
    rows.append(("GeoMean", *(_fmt(gms[n]) for n in points)))
    text += format_table(("Benchmark", *points), rows)
    text += _failure_footer(failures)
    return ExperimentResult(
        exhibit="figure12",
        description="Effect of streaming cache and queue size on SYNCOPTI",
        data={
            "normalized": normalized,
            "geomean": gms,
            "producer_bars": dict(producer_bars),
            "consumer_bars": dict(consumer_bars),
            "failures": failures,
        },
        text=text,
        failures=failures,
    )


def pipeline_scaling(scale: float = 1.0, jobs: int = 1, kernel: str = "reference") -> ExperimentResult:
    """Scalability study: K-stage DSWP pipelines on K-core machines.

    Sweeps stage count over the four design points and reports speedup,
    per-hop COMM-OP delay, and bus utilization.  Expected shape: SYNCOPTI
    and HEAVYWT keep scaling with stage count; EXISTING saturates as its
    software-queue synchronization and shared-bus contention grow with K.
    """
    # Imported lazily: repro.pipeline.scaling needs this module's
    # ExperimentResult, so a top-level import here would cycle.
    from repro.pipeline.scaling import pipeline_scaling as _pipeline_scaling

    return _pipeline_scaling(scale, jobs=jobs, kernel=kernel)


#: All exhibits, in paper order (the scalability study extends the paper).
ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "pipeline_scaling": pipeline_scaling,
}


def run_all(
    scale: float = 1.0, jobs: int = 1, kernel: str = "reference"
) -> List[ExperimentResult]:
    """Regenerate every exhibit (tables take no scale).

    ``jobs > 1`` runs each exhibit's grid on the campaign runner's worker
    pool; ``jobs=1`` keeps the serial in-process default.
    """
    results = []
    for name, fn in ALL_EXPERIMENTS.items():
        if name.startswith("table"):
            results.append(fn())
        else:
            results.append(fn(scale, jobs=jobs, kernel=kernel))
    return results
