"""Single-run driver: (benchmark x design point x overrides) -> RunResult.

Everything the experiment layer needs from one simulation: wall-clock
cycles, per-thread component breakdowns, and communication statistics —
with the benchmark's iteration count scaled down uniformly so the whole
evaluation grid runs in seconds (the paper's *relative* quantities are
iteration-count-invariant once past warm-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.design_points import DesignPoint, get_design_point
from repro.sim.config import MachineConfig
from repro.sim.machine import Machine
from repro.sim.stats import RunStats, ThreadStats
from repro.workloads.suite import (
    benchmark_info,
    build_pipelined,
    build_single_threaded,
)

#: Default iteration count for experiment runs: enough to wash out cold-start
#: transients while keeping the full grid fast.
DEFAULT_TRIP_COUNT = 400


@dataclass
class RunResult:
    """Outcome of one (benchmark, design point) simulation."""

    benchmark: str
    design_point: str
    cycles: int
    stats: RunStats
    machine: Machine = field(repr=False, default=None)

    @property
    def producer(self) -> ThreadStats:
        return self.stats.producer

    @property
    def consumer(self) -> ThreadStats:
        return self.stats.consumer

    def thread_components(self, thread: str, baseline_cycles: float) -> Dict[str, float]:
        """Normalized component bars for 'producer' or 'consumer'."""
        t = self.producer if thread == "producer" else self.consumer
        return t.normalized_components(baseline_cycles)


def run_benchmark(
    benchmark: str,
    design_point: str,
    trip_count: Optional[int] = DEFAULT_TRIP_COUNT,
    config: Optional[MachineConfig] = None,
) -> RunResult:
    """Run one benchmark on one design point.

    Args:
        benchmark: Suite benchmark name (see ``BENCHMARK_ORDER``).
        design_point: Name in ``DESIGN_POINTS``.
        trip_count: Loop iterations (None = the benchmark's default).
        config: Optional pre-built machine configuration (already including
            the design point's deltas); built from the design point if None.
    """
    point = get_design_point(design_point)
    benchmark_info(benchmark)  # validate the name early
    cfg = config if config is not None else point.build_config()
    program = build_pipelined(benchmark, trip_count)
    machine = Machine(cfg, mechanism=point.mechanism)
    stats = machine.run(program)
    return RunResult(
        benchmark=benchmark,
        design_point=design_point,
        cycles=stats.cycles,
        stats=stats,
        machine=machine,
    )


def run_single_threaded(
    benchmark: str,
    trip_count: Optional[int] = DEFAULT_TRIP_COUNT,
    config: Optional[MachineConfig] = None,
) -> RunResult:
    """Run the original (unpartitioned) loop on one core."""
    point = get_design_point("HEAVYWT")  # mechanism is unused without queues
    cfg = config if config is not None else point.build_config()
    program = build_single_threaded(benchmark, trip_count)
    machine = Machine(cfg, mechanism=point.mechanism)
    stats = machine.run(program)
    return RunResult(
        benchmark=benchmark,
        design_point="SINGLE",
        cycles=stats.cycles,
        stats=stats,
        machine=machine,
    )
