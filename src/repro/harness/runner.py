"""Single-run driver: (benchmark x design point x overrides) -> RunResult.

Everything the experiment layer needs from one simulation: wall-clock
cycles, per-thread component breakdowns, and communication statistics —
with the benchmark's iteration count scaled down uniformly so the whole
evaluation grid runs in seconds (the paper's *relative* quantities are
iteration-count-invariant once past warm-up).

Resilience: :func:`run_benchmark_resilient` is the sweep-facing entry
point.  A cell that deadlocks or exhausts its step budget does not abort
the grid — it becomes a structured :class:`FailedRun` carrying the
scheduler's :class:`~repro.sim.forensics.PostMortem`, and the caller
renders the gap explicitly.  A cell that outlives its wall-clock budget
becomes a :class:`TimedOutRun` — the transient sibling the campaign
runner (:mod:`repro.harness.campaign`) retries with backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.design_points import get_design_point
from repro.sim.config import MachineConfig
from repro.sim.cosim import SimulationError, WallClockExceededError
from repro.sim.forensics import PostMortem
from repro.sim.machine import Machine
from repro.sim.stats import RunStats, ThreadStats
from repro.trace.buffer import TraceBuffer, TraceConfig
from repro.workloads.suite import (
    benchmark_info,
    build_pipelined,
    build_single_threaded,
)

#: The ``trace`` knob accepted by the run entry points: ``None``/``False``
#: (off), ``True`` (trace with defaults), or a full :class:`TraceConfig`.
TraceKnob = Union[None, bool, TraceConfig]

#: Default iteration count for experiment runs: enough to wash out cold-start
#: transients while keeping the full grid fast.
DEFAULT_TRIP_COUNT = 400


@dataclass
class RunResult:
    """Outcome of one successful (benchmark, design point) simulation."""

    benchmark: str
    design_point: str
    cycles: int
    stats: RunStats
    machine: Optional[Machine] = field(repr=False, default=None)
    #: The run's :class:`~repro.trace.buffer.TraceBuffer` when tracing was
    #: requested (via the ``trace=`` knob or ``config.trace``), else ``None``.
    trace: Optional[TraceBuffer] = field(repr=False, default=None)
    #: Small derived payloads a campaign worker computed in-process before
    #: the heavyweight ``machine``/``trace`` were stripped at the process
    #: boundary (e.g. the pipeline study's per-hop delays and bus
    #: utilization).  Empty for ordinary in-process runs.
    extras: Dict[str, object] = field(repr=False, default_factory=dict)

    def fingerprint(self) -> str:
        """Stable :meth:`~repro.sim.stats.RunStats.fingerprint` of the run."""
        return self.stats.fingerprint()

    @property
    def ok(self) -> bool:
        return True

    @property
    def producer(self) -> ThreadStats:
        return self.stats.producer

    @property
    def consumer(self) -> ThreadStats:
        return self.stats.consumer

    def thread_components(self, thread: str, baseline_cycles: float) -> Dict[str, float]:
        """Normalized component bars for 'producer' or 'consumer'."""
        t = self.producer if thread == "producer" else self.consumer
        return t.normalized_components(baseline_cycles)


@dataclass
class FailedRun:
    """A (benchmark, design point) cell that failed instead of finishing.

    Produced by :func:`run_benchmark_resilient` when the simulation raises a
    :class:`~repro.sim.cosim.SimulationError` (deadlock or step-limit).  The
    attached post-mortem names the blocked cores and each queue channel's
    produce/consume counts, so a failing sweep cell is a diagnosis, not a
    stack trace.
    """

    benchmark: str
    design_point: str
    error_type: str
    error: str
    post_mortem: Optional[PostMortem] = field(repr=False, default=None)
    #: Full multi-line exception text.  ``error`` keeps only the first line
    #: for table footers and one-line summaries; ledger records and
    #: :meth:`describe` use this so multi-line diagnostics are never lost.
    detail: str = field(repr=False, default="")

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        body = self.detail if self.detail.strip() else self.error
        head = f"{self.benchmark}/{self.design_point}: {self.error_type}: {body}"
        if self.post_mortem is not None and self.post_mortem.render() not in head:
            head += "\n" + self.post_mortem.render()
        return head


@dataclass
class TimedOutRun:
    """A cell killed by the campaign watchdog, not by the simulator.

    Sibling of :class:`FailedRun`: the simulation neither finished nor
    diagnosed itself — it outlived its wall-clock budget and was stopped.
    When the in-process watchdog fired
    (:class:`~repro.sim.cosim.WallClockExceededError`) the attached
    post-mortem is whatever the worker managed to flush before dying; when
    the worker was so wedged the pool had to ``SIGKILL`` it
    (``hard_kill=True``) there is none.

    Wall-clock overruns depend on host load, so they are the canonical
    *transient* failure: the campaign runner retries them with backoff,
    unlike the deterministic :class:`FailedRun` diagnoses.
    """

    benchmark: str
    design_point: str
    #: Wall-clock seconds the cell was allowed.
    budget: float
    #: Wall-clock seconds observed when the run was stopped.
    elapsed: float
    error: str = "wall-clock budget exceeded"
    detail: str = field(repr=False, default="")
    post_mortem: Optional[PostMortem] = field(repr=False, default=None)
    #: True when the pool killed the worker process outright (the in-process
    #: watchdog never got to run — e.g. a hang outside the scheduler loop).
    hard_kill: bool = False

    #: Mirrors ``FailedRun.error_type`` so footers/ledgers render uniformly.
    error_type: str = "WallClockExceededError"

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        how = "killed by pool watchdog" if self.hard_kill else "in-process watchdog"
        head = (
            f"{self.benchmark}/{self.design_point}: timed out after "
            f"{self.elapsed:.2f}s (budget {self.budget:g}s, {how})"
        )
        if self.post_mortem is not None:
            head += "\n" + self.post_mortem.render()
        return head


@dataclass
class PreemptedRun:
    """A cell stopped gracefully by host preemption, with a checkpoint.

    Produced when the worker received SIGTERM while checkpointing was
    enabled: the run snapshotted at the next safe point
    (:class:`~repro.sim.checkpoint.PreemptionRequested`), the worker
    recorded this outcome, and exited cleanly.  Unlike a hard kill, nothing
    is lost — ``snapshot_path`` resumes from ``cycle``, so a preemptible
    fleet pays at most one checkpoint interval per eviction.

    Classified *transient* (the host asked us to stop; the simulation is
    healthy), and never terminal in the ledger: resume re-queues the cell,
    whose next attempt continues from the snapshot.
    """

    benchmark: str
    design_point: str
    #: Simulated cycle of the snapshot taken at preemption.
    cycle: float
    #: Snapshot file the next attempt resumes from (None = in-memory only).
    snapshot_path: Optional[str] = None
    error: str = "preempted: checkpointed and exited on SIGTERM"
    detail: str = field(repr=False, default="")

    #: Mirrors ``FailedRun.error_type`` so footers/ledgers render uniformly.
    error_type: str = "PreemptedRun"

    @property
    def ok(self) -> bool:
        return False

    def describe(self) -> str:
        where = self.snapshot_path or "<memory>"
        return (
            f"{self.benchmark}/{self.design_point}: preempted at cycle "
            f"{self.cycle:.0f} (snapshot {where}); resume continues from there"
        )


#: What one sweep cell yields: a result, a diagnosed failure, a watchdog
#: kill, or a graceful preemption.
RunOutcome = Union[RunResult, FailedRun, TimedOutRun, PreemptedRun]


def _apply_trace(cfg: MachineConfig, trace: TraceKnob) -> MachineConfig:
    """Resolve the ``trace`` knob into a config (copied if it changes)."""
    if trace is None or trace is False:
        return cfg
    tc = TraceConfig() if trace is True else trace
    return cfg.copy(trace=tc)


def run_benchmark(
    benchmark: str,
    design_point: str,
    trip_count: Optional[int] = DEFAULT_TRIP_COUNT,
    config: Optional[MachineConfig] = None,
    trace: TraceKnob = None,
    wall_clock_budget: Optional[float] = None,
    checkpoint=None,
    kernel: Optional[str] = None,
) -> RunResult:
    """Run one benchmark on one design point.

    Args:
        benchmark: Suite benchmark name (see ``BENCHMARK_ORDER``).
        design_point: Name in ``DESIGN_POINTS``.
        trip_count: Loop iterations (None = the benchmark's default).
        config: Optional pre-built machine configuration.  Must be derived
            from this design point's ``build_config()`` — sensitivity
            overrides (bus, queue depth, transit delay, fault plans) are
            fine, but mechanism-identity knobs are checked via
            :meth:`DesignPoint.validate_config` and a mismatch (e.g. a
            stream-cache config under plain SYNCOPTI) raises
            :class:`~repro.core.design_points.DesignPointConfigError`.
        trace: ``True`` to record an event trace with default settings, a
            :class:`TraceConfig` for capacity/category control, or ``None``
            to leave tracing off (or governed by ``config.trace``).  The
            recorded buffer is returned as ``RunResult.trace``.
        wall_clock_budget: Host seconds the simulation may consume (None =
            unbounded); overruns raise
            :class:`~repro.sim.cosim.WallClockExceededError`.
        checkpoint: Optional :class:`~repro.sim.checkpoint.Checkpointer`
            snapshotting the machine every ``every`` cycles; ``None`` (the
            default) adds zero overhead and changes nothing.
        kernel: Stepping-engine name (:mod:`repro.sim.kernel`); ``None``
            defers to ``config.kernel``.  Bit-identical simulated outcome
            either way — only ``RunStats.host_seconds`` changes.
    """
    point = get_design_point(design_point)
    benchmark_info(benchmark)  # validate the name early
    if config is not None:
        point.validate_config(config)
        cfg = config
    else:
        cfg = point.build_config()
    cfg = _apply_trace(cfg, trace)
    program = build_pipelined(benchmark, trip_count)
    machine = Machine(cfg, mechanism=point.mechanism)
    stats = machine.run(
        program,
        wall_clock_budget=wall_clock_budget,
        checkpoint=checkpoint,
        kernel=kernel,
    )
    return RunResult(
        benchmark=benchmark,
        design_point=design_point,
        cycles=stats.cycles,
        stats=stats,
        machine=machine,
        trace=machine.trace,
    )


def run_benchmark_resilient(
    benchmark: str,
    design_point: str,
    trip_count: Optional[int] = DEFAULT_TRIP_COUNT,
    config: Optional[MachineConfig] = None,
    trace: TraceKnob = None,
    wall_clock_budget: Optional[float] = None,
    kernel: Optional[str] = None,
) -> RunOutcome:
    """Like :func:`run_benchmark`, but a failing simulation becomes data.

    Only simulation failures (deadlock, step-limit, wall-clock overrun) are
    absorbed; genuine usage errors — unknown names, config mismatches —
    still raise, because silently skipping those would hide bugs, not
    hardware behavior.  A wall-clock overrun becomes a
    :class:`TimedOutRun` (transient — retried by the campaign runner); other
    simulation failures become deterministic :class:`FailedRun` diagnoses.
    """
    try:
        return run_benchmark(
            benchmark,
            design_point,
            trip_count,
            config=config,
            trace=trace,
            wall_clock_budget=wall_clock_budget,
            kernel=kernel,
        )
    except WallClockExceededError as exc:
        return TimedOutRun(
            benchmark=benchmark,
            design_point=design_point,
            budget=exc.budget,
            elapsed=exc.elapsed,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )
    except SimulationError as exc:
        return FailedRun(
            benchmark=benchmark,
            design_point=design_point,
            error_type=type(exc).__name__,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )


def run_single_threaded(
    benchmark: str,
    trip_count: Optional[int] = DEFAULT_TRIP_COUNT,
    config: Optional[MachineConfig] = None,
    trace: TraceKnob = None,
    wall_clock_budget: Optional[float] = None,
    checkpoint=None,
    kernel: Optional[str] = None,
) -> RunResult:
    """Run the original (unpartitioned) loop on one core."""
    point = get_design_point("HEAVYWT")  # mechanism is unused without queues
    cfg = config if config is not None else point.build_config()
    cfg = _apply_trace(cfg, trace)
    program = build_single_threaded(benchmark, trip_count)
    machine = Machine(cfg, mechanism=point.mechanism)
    stats = machine.run(
        program,
        wall_clock_budget=wall_clock_budget,
        checkpoint=checkpoint,
        kernel=kernel,
    )
    return RunResult(
        benchmark=benchmark,
        design_point="SINGLE",
        cycles=stats.cycles,
        stats=stats,
        machine=machine,
        trace=machine.trace,
    )
