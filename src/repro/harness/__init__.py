"""Experiment harness: single runs, resilient sweeps, and campaigns.

Three layers, each building on the one below:

* :mod:`repro.harness.runner` — one simulation per call.
  :func:`run_benchmark` raises on failure; :func:`run_benchmark_resilient`
  converts simulation failures into structured :class:`FailedRun` /
  :class:`TimedOutRun` records instead.
* :mod:`repro.harness.experiments` — one function per table/figure of the
  paper, each a resilient grid over (benchmark x design point) cells.
* :mod:`repro.harness.campaign` — the resilient campaign runner: a worker
  pool with per-cell wall-clock watchdogs, seeded retry backoff for
  transient failures, a crash-safe JSONL resume ledger, and determinism
  fingerprints as a golden-regression store.
"""

from repro.harness.campaign import (
    CampaignCell,
    CampaignLedger,
    CampaignPolicy,
    CampaignReport,
    CellHistory,
    campaign_status,
    execute_cell,
    run_campaign,
    run_cells,
)
from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    run_all,
    sweep,
)
from repro.harness.runner import (
    DEFAULT_TRIP_COUNT,
    FailedRun,
    RunOutcome,
    RunResult,
    TimedOutRun,
    run_benchmark,
    run_benchmark_resilient,
    run_single_threaded,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "CampaignCell",
    "CampaignLedger",
    "CampaignPolicy",
    "CampaignReport",
    "CellHistory",
    "DEFAULT_TRIP_COUNT",
    "ExperimentResult",
    "FailedRun",
    "RunOutcome",
    "RunResult",
    "TimedOutRun",
    "campaign_status",
    "execute_cell",
    "run_all",
    "run_benchmark",
    "run_benchmark_resilient",
    "run_campaign",
    "run_cells",
    "run_single_threaded",
    "sweep",
]
