"""Resilient parallel experiment campaigns: pool, watchdog, retries, ledger.

The paper's evaluation is a large grid — benchmarks x design points x
sensitivity knobs, multiplied by the pipeline study's stage counts — and a
serial in-process sweep has two failure amplifiers: one wedged simulation
(exactly the hang mode a seeded ``QUEUE_SLOT_STALL`` fault can inject into
the EXISTING spin loop) stalls every cell behind it, and one crash throws
away every cell already computed.  This module makes each cell a *bounded,
retryable, durably-recorded unit of work*:

* **Cells** (:class:`CampaignCell`) are declarative: benchmark, design
  point, trip count, a ``{knob: value}`` overrides dict (see
  :data:`repro.core.design_points.OVERRIDE_KNOBS`), and an optional seeded
  :class:`~repro.faults.plan.FaultPlan`.  A cell's identity is a stable
  hash of that spec, so the same grid built twice names the same cells.

* **Worker pool**: up to ``jobs`` worker processes run cells concurrently
  (:func:`run_campaign`).  Workers are single-use — one process per cell
  attempt — so a kill can never poison a sibling cell's interpreter state.

* **Watchdog**: every attempt gets a wall-clock budget, enforced twice.
  The *soft* layer runs inside the worker — the scheduler's own
  :class:`~repro.sim.cosim.WallClockExceededError` check — so a timed-out
  run still flushes its post-mortem and trace tail into a structured
  :class:`~repro.harness.runner.TimedOutRun`.  The *hard* layer runs in the
  pool: a worker that outlives budget + grace (wedged outside the scheduler
  loop) is ``SIGKILL``-ed and recorded as a ``TimedOutRun(hard_kill=True)``.

* **Retries**: transient failures (timeouts, dead workers — host-side
  interference, per :mod:`repro.faults.classify`) are retried up to
  ``max_attempts`` with seeded exponential backoff; deterministic failures
  (deadlock/step-limit diagnoses, config errors) fail fast, because the
  seeded simulator guarantees a retry would fail identically.

* **Ledger**: every attempt appends one JSON record to an append-only JSONL
  file (single ``write`` + ``fsync`` per record, so a crash can tear at
  most the final line, which replay ignores).  ``campaign resume`` replays
  the ledger, skips cells with a terminal record, and re-queues cells that
  were in flight when the process died.

* **Fingerprints**: each completed cell records
  :meth:`~repro.sim.stats.RunStats.fingerprint`.  Re-running a recorded
  cell (``recheck=True``) must reproduce the fingerprint byte for byte —
  the simulator's determinism guarantee as a checked invariant, and a
  golden-regression store for CI.

* **Checkpoints** (``CampaignPolicy.checkpoint_every``): workers snapshot
  the whole machine every N simulated cycles
  (:mod:`repro.sim.checkpoint`), journal each snapshot to the parent as a
  :class:`CheckpointNote` (a ``cell-ckpt`` ledger event), and resume a
  killed or preempted cell from its latest valid snapshot instead of cycle
  0 — with the resumed fingerprint bit-identical to an uninterrupted run.
  SIGTERM becomes graceful preemption: the worker checkpoints at the next
  safe point, records a :class:`~repro.harness.runner.PreemptedRun`
  (transient, never terminal, never consuming a retry attempt), and exits
  cleanly.  Corrupt snapshots are quarantined and recovery falls back to
  the previous generation or a cold start — never silently loaded.

The serial in-process path (:func:`execute_cell` cell by cell) remains the
default everywhere — :mod:`repro.harness.experiments` only dispatches
through the pool when asked for ``jobs > 1`` — so existing entry points and
tests are untouched by the campaign machinery.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing
import os
import random
import signal
import time
import traceback
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.design_points import apply_overrides, get_design_point, with_n_cores
from repro.faults.classify import FailureClass, classify_outcome
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.harness.runner import (
    FailedRun,
    PreemptedRun,
    RunOutcome,
    RunResult,
    TimedOutRun,
)
from repro.obs import runtime as _obs
from repro.obs.events import new_cid
from repro.obs.spans import span as _span
from repro.sim.checkpoint import (
    Checkpointer,
    MachineSnapshot,
    PreemptionRequested,
    SnapshotError,
    recover_snapshot,
    resume_run,
)
from repro.sim.cosim import SimulationError, WallClockExceededError
from repro.sim.machine import Machine
from repro.sim.program import Program
from repro.sim.stats import RunStats

__all__ = [
    "CampaignCell",
    "CampaignLedger",
    "CampaignPolicy",
    "CampaignReport",
    "CellHistory",
    "CheckpointNote",
    "LEDGER_SCHEMA_VERSION",
    "campaign_status",
    "cell_checkpoint_path",
    "execute_cell",
    "fault_plan_from_spec",
    "render_status",
    "run_campaign",
    "run_cells",
]

#: Ledger records cap multi-line diagnostics at this many characters so one
#: post-mortem cannot balloon the campaign's append-only log.
LEDGER_DETAIL_LIMIT = 8000

#: Schema version of ledger records *and* of the cell-spec dialect inside
#: them.  v1 (implicit, pre-kernel) specs had no ``kernel`` field; v2 specs
#: always carry one.  ``campaign-start`` and ``cell-start`` records stamp
#: this version on write, and :meth:`CampaignCell.from_spec` warns (once
#: per process) when upgrading a legacy record — the content-addressed
#: result store hashes this version into every digest, so two dialects of
#: "the same" spec can never alias one store entry.
LEDGER_SCHEMA_VERSION = 2

#: Cell kinds the worker-side executor understands.
CELL_KINDS = ("benchmark", "single", "pipeline")


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------


#: One-shot latch for the legacy-spec upgrade warning (warn once per
#: process, not once per record — an old ledger has hundreds).
_warned_legacy_spec = False


def _fault_plan_spec(plan: Optional[FaultPlan]) -> Optional[Dict[str, object]]:
    """JSON-able identity of a fault plan (seed + rules), or None."""
    if plan is None:
        return None
    rules = []
    for rule in plan.rules:
        rules.append(
            {
                "kind": rule.kind.value,
                "magnitude": rule.magnitude,
                "probability": rule.probability,
                "queue_id": rule.queue_id,
                "core_id": rule.core_id,
                "after": rule.after,
                "count": rule.count,
            }
        )
    return {"seed": plan.seed, "rules": rules}


def fault_plan_from_spec(spec: Optional[Dict[str, object]]) -> Optional[FaultPlan]:
    """Rebuild a :class:`FaultPlan` from :func:`_fault_plan_spec` output."""
    if spec is None:
        return None
    rules = tuple(
        FaultRule(
            kind=FaultKind(r["kind"]),
            magnitude=float(r["magnitude"]),
            probability=float(r["probability"]),
            queue_id=r["queue_id"],
            core_id=r["core_id"],
            after=int(r["after"]),
            count=r["count"],
        )
        for r in spec["rules"]
    )
    return FaultPlan(seed=int(spec["seed"]), rules=rules).validate()


@dataclass
class CampaignCell:
    """One bounded, retryable unit of campaign work.

    Everything a worker needs to reproduce the run is plain data: cells
    cross process boundaries by pickling and enter the ledger as JSON, and
    two cells with the same spec always share the same :meth:`key` — the
    property resume and fingerprint checking are built on.

    Kinds:

    * ``"benchmark"`` — the standard two-stage (benchmark, design point)
      cell of the paper's grids, via :func:`run_benchmark_resilient`.
    * ``"single"`` — the unpartitioned single-core baseline
      (:func:`run_single_threaded`), used by Figure 9 and the scaling study.
    * ``"pipeline"`` — a K-stage pipeline on K cores (``stages=K``) with
      the scaling study's comm-trace instrumentation; per-hop delays and
      bus utilization come back in ``RunResult.extras``.
    """

    benchmark: str
    design_point: str = "HEAVYWT"
    kind: str = "benchmark"
    trip_count: Optional[int] = None
    #: Declarative config deltas, applied via OVERRIDE_KNOBS in fixed order.
    overrides: Dict[str, int] = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = field(default=None, repr=False)
    #: Pipeline depth for ``kind="pipeline"`` cells.
    stages: Optional[int] = None
    #: Simulation kernel the cell runs under (:mod:`repro.sim.kernel`).
    #: Part of the spec — and therefore the key — even though kernels are
    #: fingerprint-identical: the ledger must record *how* a result was
    #: produced for the perf trajectory, and a recheck across kernels is
    #: exactly the differential test the campaign layer gets for free.
    kernel: str = "reference"

    def validate(self) -> "CampaignCell":
        if self.kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; known: {CELL_KINDS}")
        if self.kind == "pipeline" and (self.stages is None or self.stages < 2):
            raise ValueError("pipeline cells need stages >= 2")
        if self.trip_count is not None and self.trip_count <= 0:
            raise ValueError("trip_count must be positive (or None for default)")
        from repro.sim.kernel import available_kernels

        if self.kernel not in available_kernels():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"known: {', '.join(available_kernels())}"
            )
        return self

    def spec(self) -> Dict[str, object]:
        """Canonical plain-data identity (what :meth:`key` hashes)."""
        return {
            "benchmark": self.benchmark,
            "design_point": self.design_point,
            "kind": self.kind,
            "trip_count": self.trip_count,
            "overrides": dict(sorted(self.overrides.items())),
            "fault_plan": _fault_plan_spec(self.fault_plan),
            "stages": self.stages,
            "kernel": self.kernel,
        }

    def key(self) -> str:
        """Stable human-scannable id: ``bench/point[...]#spec-digest``."""
        digest = hashlib.sha256(
            json.dumps(self.spec(), sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()[:8]
        label = f"{self.benchmark}/{self.design_point}"
        if self.kind == "single":
            label = f"{self.benchmark}/SINGLE"
        elif self.kind == "pipeline":
            label = f"{self.benchmark}/{self.design_point}/K{self.stages}"
        return f"{label}#{digest}"

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "CampaignCell":
        """Rebuild a cell from a ledger ``spec`` record.

        Legacy (schema v1, pre-kernel) records carry no ``kernel`` field;
        they upgrade to an explicit ``kernel="reference"`` — the only
        kernel that existed when they were written — with a one-time
        :class:`UserWarning`, so a resume against an old ledger announces
        the dialect upgrade instead of silently defaulting.
        """
        global _warned_legacy_spec
        if "kernel" not in spec and not _warned_legacy_spec:
            _warned_legacy_spec = True
            warnings.warn(
                "ledger spec predates the kernel field (schema v1); "
                "upgrading to kernel='reference' — the only kernel that "
                f"existed then.  Current ledgers are schema "
                f"v{LEDGER_SCHEMA_VERSION}.",
                UserWarning,
                stacklevel=2,
            )
        return cls(
            benchmark=spec["benchmark"],
            design_point=spec["design_point"],
            kind=spec.get("kind", "benchmark"),
            trip_count=spec.get("trip_count"),
            overrides=dict(spec.get("overrides") or {}),
            fault_plan=fault_plan_from_spec(spec.get("fault_plan")),
            stages=spec.get("stages"),
            kernel=spec.get("kernel", "reference"),  # pre-kernel ledgers
        ).validate()


# ----------------------------------------------------------------------
# In-process cell execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------


def _build_config(cell: CampaignCell):
    """The cell's machine config, or None to use the design point's own."""
    if not cell.overrides and cell.fault_plan is None:
        return None
    cfg = get_design_point(cell.design_point).build_config()
    cfg = apply_overrides(cfg, cell.overrides)
    if cell.fault_plan is not None:
        cfg.faults = cell.fault_plan
    return cfg.validate()


@dataclass
class CellPlan:
    """Everything needed to run — or *resume* — one cell, precomputed.

    The three cell kinds used to carry three bespoke executors; checkpoint
    resume needs their common denominator made explicit: a machine config,
    a mechanism, a deterministic program builder (called again on resume to
    replay instruction streams up to the snapshot cursors), and a ``finish``
    hook deriving the cell's :class:`RunResult` (the pipeline kind computes
    per-hop delays from the restored trace buffer there).
    """

    #: Design-point label used in failure records (e.g. ``EXISTING/K=4``).
    design_label: str
    config: object
    mechanism: str
    build_program: Callable[[], Program]
    finish: Callable[[Machine, RunStats], RunResult]


def _plan_benchmark(cell: CampaignCell) -> CellPlan:
    from repro.workloads.suite import benchmark_info, build_pipelined

    point = get_design_point(cell.design_point)
    benchmark_info(cell.benchmark)  # validate the name early
    cfg = _build_config(cell)
    if cfg is not None:
        point.validate_config(cfg)
    else:
        cfg = point.build_config()
    cfg.kernel = cell.kernel

    def finish(machine: Machine, stats: RunStats) -> RunResult:
        return RunResult(
            benchmark=cell.benchmark,
            design_point=cell.design_point,
            cycles=stats.cycles,
            stats=stats,
            machine=machine,
            trace=machine.trace,
        )

    return CellPlan(
        design_label=cell.design_point,
        config=cfg,
        mechanism=point.mechanism,
        build_program=lambda: build_pipelined(cell.benchmark, cell.trip_count),
        finish=finish,
    )


def _plan_single(cell: CampaignCell) -> CellPlan:
    from repro.workloads.suite import build_single_threaded

    point = get_design_point("HEAVYWT")  # mechanism is unused without queues

    def finish(machine: Machine, stats: RunStats) -> RunResult:
        return RunResult(
            benchmark=cell.benchmark,
            design_point="SINGLE",
            cycles=stats.cycles,
            stats=stats,
            machine=machine,
            trace=machine.trace,
        )

    return CellPlan(
        design_label="SINGLE",
        config=point.build_config().copy(kernel=cell.kernel),
        mechanism=point.mechanism,
        build_program=lambda: build_single_threaded(
            cell.benchmark, cell.trip_count
        ),
        finish=finish,
    )


def _plan_pipeline(cell: CampaignCell) -> CellPlan:
    # Imported lazily: repro.pipeline.scaling reaches back into the harness,
    # and the pipeline modules are only needed for pipeline-kind cells.
    from repro.pipeline.codegen import lower_pipeline, plan_queue_hops
    from repro.pipeline.scaling import _per_hop_delay, build_pipeline_partition
    from repro.trace.buffer import TraceConfig

    partition = build_pipeline_partition(cell.benchmark, cell.stages, cell.trip_count)
    dp = get_design_point(cell.design_point)
    cfg = with_n_cores(dp.build_config(), cell.stages).copy(
        trace=TraceConfig(capacity=1 << 20, categories=("comm",)),
        kernel=cell.kernel,
    )
    if cell.fault_plan is not None:
        cfg.faults = cell.fault_plan
        cfg.validate()
    hop_of_queue = {qid: src for (_, src), qid in plan_queue_hops(partition).items()}

    def finish(machine: Machine, stats: RunStats) -> RunResult:
        return RunResult(
            benchmark=cell.benchmark,
            design_point=cell.design_point,
            cycles=stats.cycles,
            stats=stats,
            machine=machine,
            trace=machine.trace,
            extras={
                "stages": cell.stages,
                "hop_delays": _per_hop_delay(machine.trace, hop_of_queue),
                "bus_utilization": machine.mem.bus.utilization(stats.cycles),
            },
        )

    return CellPlan(
        design_label=f"{cell.design_point}/K={cell.stages}",
        config=cfg,
        mechanism=dp.mechanism,
        build_program=lambda: lower_pipeline(partition),
        finish=finish,
    )


def _plan_cell(cell: CampaignCell):
    """Build the cell's :class:`CellPlan`, or a :class:`FailedRun`.

    Only *expected, deterministic* planning failures (an unpartitionable
    loop) become data here; usage errors still raise — the worker's
    catch-all turns those into diagnoses with a full traceback.
    """
    from repro.dswp.partition import PartitionError

    if cell.kind == "single":
        return _plan_single(cell)
    if cell.kind == "pipeline":
        try:
            return _plan_pipeline(cell)
        except PartitionError as exc:
            return FailedRun(
                benchmark=cell.benchmark,
                design_point=f"{cell.design_point}/K={cell.stages}",
                error_type=type(exc).__name__,
                error=str(exc).splitlines()[0],
                detail=str(exc),
            )
    return _plan_benchmark(cell)


def execute_cell(
    cell: CampaignCell,
    wall_clock_budget: Optional[float] = None,
    checkpoint: Optional[Checkpointer] = None,
    resume_from: Optional[MachineSnapshot] = None,
    abort: Optional[Callable[[], Optional[str]]] = None,
) -> RunOutcome:
    """Run one cell in this process; the single executor both paths share.

    The serial fallback calls this directly; pool workers call it inside
    :func:`_cell_worker`.  One code path is what makes the pooled campaign's
    cycle counts and fingerprints bit-identical to the serial sweep's.

    ``checkpoint`` snapshots the machine periodically; ``resume_from``
    continues a previously snapshotted run instead of starting at cycle 0
    (the worker recovers the snapshot from the cell's checkpoint file).
    Either way the outcome — stats, fingerprint, trace — is identical to an
    uninterrupted run.  A SIGTERM-driven preemption surfaces as a
    :class:`~repro.harness.runner.PreemptedRun`.

    ``abort`` is an external-cancellation probe (returns a reason string to
    stop, ``None`` to keep going) checked at the kernel's wall-clock
    cadence; queue workers pass their heartbeat fence here so a zombie
    stops simulating soon after losing its lease.
    """
    cell.validate()
    plan = _plan_cell(cell)
    if isinstance(plan, FailedRun):
        return plan
    try:
        program = plan.build_program()
        if resume_from is not None:
            machine = resume_from.machine
            stats = resume_run(
                resume_from,
                program,
                wall_clock_budget=wall_clock_budget,
                checkpoint=checkpoint,
                abort=abort,
            )
        else:
            machine = Machine(plan.config, mechanism=plan.mechanism)
            stats = machine.run(
                program,
                wall_clock_budget=wall_clock_budget,
                checkpoint=checkpoint,
                abort=abort,
            )
    except PreemptionRequested as exc:
        return PreemptedRun(
            benchmark=cell.benchmark,
            design_point=plan.design_label,
            cycle=exc.cycle,
            snapshot_path=exc.path,
        )
    except WallClockExceededError as exc:
        return TimedOutRun(
            benchmark=cell.benchmark,
            design_point=plan.design_label,
            budget=exc.budget,
            elapsed=exc.elapsed,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )
    except SimulationError as exc:
        return FailedRun(
            benchmark=cell.benchmark,
            design_point=plan.design_label,
            error_type=type(exc).__name__,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )
    result = plan.finish(machine, stats)
    if resume_from is not None:
        result.extras["resumed_from_cycle"] = resume_from.cycle
    if checkpoint is not None:
        result.extras["checkpoints_taken"] = checkpoint.snapshots_taken
    return result


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


@dataclass
class CheckpointNote:
    """Mid-run journal message a worker sends after persisting a snapshot.

    Flows over the same pipe as the final outcome; the parent drains notes
    into ``cell-ckpt`` ledger events (never mistaking one for the attempt's
    outcome), which is how ``campaign status`` knows each in-flight cell's
    latest checkpointed cycle even after the worker is SIGKILLed.
    """

    cell: str
    attempt: int
    cycle: float
    path: Optional[str]
    #: Snapshots persisted so far in this attempt.
    count: int = 0


def cell_checkpoint_path(checkpoint_dir: str, cell: CampaignCell) -> str:
    """The cell's snapshot file under the campaign's checkpoint directory.

    Keys embed ``/`` (``bench/point#digest``); flatten to one filename so
    the directory stays a flat, listable set of ``<cell>.ckpt`` files (plus
    their ``.prev`` and ``.quarantined`` siblings).
    """
    return os.path.join(checkpoint_dir, cell.key().replace("/", "_") + ".ckpt")


def _strip_for_transport(outcome: RunOutcome) -> RunOutcome:
    """Drop the heavyweight machine/trace before crossing the pipe."""
    if isinstance(outcome, RunResult):
        outcome.machine = None
        outcome.trace = None
    return outcome


def _discard_snapshots(path: Optional[str]) -> None:
    """Best-effort removal of a cell's snapshot generations after success."""
    if path is None:
        return
    for candidate in (path, path + ".prev"):
        try:
            os.unlink(candidate)
        except OSError:
            pass


def _cell_worker(
    conn,
    cell: CampaignCell,
    soft_budget: Optional[float],
    checkpoint_every: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    attempt: int = 1,
    allow_resume: bool = True,
    obs_ctx: Optional[Tuple[str, bool, Optional[str]]] = None,
) -> None:
    """Process entry point: run one cell attempt, send one outcome.

    Usage errors (unknown names, config mismatches) intentionally raise out
    of :func:`execute_cell`; here they are converted into *data* — a
    :class:`FailedRun` with the full traceback — because an exception that
    merely kills the worker would be indistinguishable from host-side
    interference and get retried, hiding a deterministic bug.

    With checkpointing enabled the worker additionally: recovers the cell's
    latest valid snapshot and resumes from it (``allow_resume``; recheck
    attempts always start cold so the determinism check covers the whole
    run); journals a :class:`CheckpointNote` to the parent after each
    persisted snapshot; converts SIGTERM into a graceful
    checkpoint-and-exit (:class:`~repro.harness.runner.PreemptedRun`); and
    deletes the cell's snapshots once the run completes, so stale state can
    never leak into a later campaign.
    """
    checkpointer: Optional[Checkpointer] = None
    # Join the campaign's shared event log so the kernel.run events and
    # sim.run spans this attempt produces carry the cell's correlation id.
    obs_cid: Optional[str] = None
    if obs_ctx is not None:
        try:
            obs_log_path, obs_sync, obs_cid = obs_ctx
            _obs.configure(log_path=obs_log_path, sync=obs_sync)
            if obs_cid is not None:
                _obs.set_cid(obs_cid)
        except Exception:
            obs_cid = None
    try:
        resume_from = None
        resumed_note = ""
        if checkpoint_every is not None:
            if checkpoint_path is not None and allow_resume:
                recovered = recover_snapshot(checkpoint_path)
                if recovered is not None:
                    resume_from = recovered.snapshot
                    if recovered.quarantined:
                        resumed_note = (
                            f"quarantined corrupt snapshot(s) "
                            f"{recovered.quarantined}; "
                        )
            elif checkpoint_path is not None:
                _discard_snapshots(checkpoint_path)  # recheck runs start cold
            checkpointer = Checkpointer(
                every=checkpoint_every,
                path=checkpoint_path,
                on_snapshot=lambda snap, path: conn.send(
                    CheckpointNote(
                        cell=cell.key(),
                        attempt=attempt,
                        cycle=snap.cycle,
                        path=path,
                        count=checkpointer.snapshots_taken,
                    )
                ),
                on_write_error=lambda exc: None,  # ENOSPC etc.: skip, not die
            )
            signal.signal(
                signal.SIGTERM, lambda signum, frame: checkpointer.request_preempt()
            )
        with _span(
            "sim.run",
            cid=obs_cid,
            kernel=cell.kernel,
            benchmark=cell.benchmark,
            attempt=attempt,
            worker="campaign",
        ) as sp:
            try:
                outcome = execute_cell(
                    cell,
                    wall_clock_budget=soft_budget,
                    checkpoint=checkpointer,
                    resume_from=resume_from,
                )
            except SnapshotError:
                # The snapshot did not fit this cell (stale file from an
                # older grid, version skew): fall back to cycle 0 rather
                # than failing the attempt — losing a checkpoint must never
                # lose the cell.
                _discard_snapshots(checkpoint_path)
                outcome = execute_cell(
                    cell, wall_clock_budget=soft_budget, checkpoint=checkpointer
                )
            sp.note(ok=outcome.ok, outcome=type(outcome).__name__)
        if resumed_note and not outcome.ok:
            outcome.detail = resumed_note + (outcome.detail or "")
        if isinstance(outcome, RunResult):
            _discard_snapshots(checkpoint_path)
    except BaseException as exc:
        outcome = FailedRun(
            benchmark=cell.benchmark,
            design_point=cell.design_point,
            error_type=type(exc).__name__,
            error=(str(exc).splitlines() or [type(exc).__name__])[0],
            detail=traceback.format_exc(),
        )
    try:
        conn.send(_strip_for_transport(outcome))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------


@dataclass
class CellHistory:
    """Replayed per-cell state of one ledger."""

    key: str
    attempts: int = 0
    in_flight: bool = False
    terminal: bool = False
    status: Optional[str] = None
    cycles: Optional[int] = None
    fingerprint: Optional[str] = None
    spec: Optional[Dict[str, object]] = None
    #: Latest checkpointed simulated cycle (``cell-ckpt`` events and
    #: preemption records), or None when the cell never snapshotted.
    checkpoint_cycle: Optional[float] = None
    #: Snapshot file of the latest checkpoint, when one was persisted.
    checkpoint_path: Optional[str] = None
    #: Wall-clock time of the latest checkpoint record.
    checkpoint_time: Optional[float] = None
    #: Total snapshots journalled for this cell across attempts.
    checkpoints: int = 0


class LedgerWriteError(OSError):
    """A ledger append failed even after bounded retries.

    Subclasses :class:`OSError` and is classified *transient* by
    :mod:`repro.faults.classify`: the disk, not the campaign, is sick.
    """


#: Bounded retry schedule for ledger/checkpoint appends hitting host I/O
#: errors (ENOSPC, EIO): attempts sleep ``LEDGER_RETRY_BASE * 2**i``.
LEDGER_RETRIES = 5
LEDGER_RETRY_BASE = 0.05


class CampaignLedger:
    """Append-only JSONL record of every cell attempt of a campaign.

    Crash safety: each record is one ``os.write`` of one full line to an
    ``O_APPEND`` descriptor followed by ``fsync``, so a crash (or SIGKILL)
    can lose at most the record being written — and a torn final line is
    skipped by :meth:`read`, never mistaken for a terminal outcome.

    ``sleep`` injects the backoff delay function used by :meth:`append`'s
    ENOSPC/EIO retry loop (default :func:`time.sleep`).  Tests replace it
    with a recorder, so the retry path — schedule, fragment termination,
    eventual :class:`LedgerWriteError` — is exercised without real delays.

    ``fs`` is the OS facade from :mod:`repro.store.io` (default: the real
    filesystem); the chaos harness injects here to tear appends and drop
    fsyncs under its crash models.
    """

    def __init__(
        self,
        path: str,
        sleep: Optional[Callable[[float], None]] = None,
        fs=None,
    ) -> None:
        # Imported lazily: repro.store.__init__ pulls in dispatch, which
        # imports this module — a top-level import here would re-enter that
        # cycle while repro.harness.campaign is still half-initialised.
        from repro.store.io import resolve_fs

        self.path = str(path)
        self.fs = resolve_fs(fs)
        self._fd: Optional[int] = None
        self._sleep: Callable[[float], None] = sleep if sleep is not None else time.sleep

    def open(self) -> "CampaignLedger":
        if self._fd is None:
            self._fd = self.fs.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self

    def close(self) -> None:
        if self._fd is not None:
            self.fs.close(self._fd)
            self._fd = None

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record, riding out transient host I/O errors.

        A full or flaky disk (``ENOSPC``, ``EIO``) gets
        :data:`LEDGER_RETRIES` attempts with exponential backoff before the
        append surfaces as a :class:`LedgerWriteError` — an :class:`OSError`
        subclass the failure classifier treats as transient, so one bad
        write degrades a single cell attempt instead of crashing the
        campaign loop.
        """
        if self._fd is None:
            self.open()
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        last: Optional[OSError] = None
        for i in range(LEDGER_RETRIES):
            try:
                self.fs.write(self._fd, line)
                self.fs.fsync(self._fd)
                return
            except OSError as exc:
                last = exc
                # Terminate any partially-written fragment so the retried
                # record starts on its own line; replay skips the fragment.
                try:
                    self.fs.write(self._fd, b"\n")
                except OSError:
                    pass
                self._sleep(LEDGER_RETRY_BASE * (2**i))
        raise LedgerWriteError(
            f"ledger append to {self.path} failed after "
            f"{LEDGER_RETRIES} attempts: {last}"
        ) from last

    # -- replay ---------------------------------------------------------

    @staticmethod
    def read(path: str) -> List[Dict[str, object]]:
        """Parse every intact record; torn lines are dropped.

        A torn line is either the crash tail (process died mid-append) or
        an interior fragment left by an append that hit a partial write
        (``ENOSPC``) and was retried — the retry re-wrote the full record on
        its own line, so skipping the fragment loses nothing.
        """
        records: List[Dict[str, object]] = []
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lines = text.split("\n")
        if lines and lines[-1]:
            # No trailing newline: the final line's append never finished.
            # A record only exists once its newline landed — even if the
            # truncation happens to leave parseable JSON.
            lines.pop()
        for line in lines:
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records

    @staticmethod
    def replay(path: str) -> Dict[str, CellHistory]:
        """Fold a ledger into per-cell state keyed by cell key."""
        histories: Dict[str, CellHistory] = {}
        for rec in CampaignLedger.read(path):
            event = rec.get("event")
            if event not in ("cell-start", "cell-end", "cell-ckpt"):
                continue
            key = rec["cell"]
            hist = histories.setdefault(key, CellHistory(key=key))
            if event == "cell-ckpt":
                hist.checkpoints += 1
                hist.checkpoint_cycle = rec.get("cycle")
                hist.checkpoint_path = rec.get("path")
                hist.checkpoint_time = rec.get("time")
                continue
            hist.attempts = max(hist.attempts, int(rec.get("attempt", 0)))
            if event == "cell-start":
                hist.in_flight = True
                if rec.get("spec"):
                    hist.spec = rec["spec"]
            else:
                hist.in_flight = False
                if rec.get("status") == "preempted":
                    # A preemption is the host's doing, not the cell's: give
                    # the attempt back so routine evictions on preemptible
                    # fleets can never exhaust a cell's retry budget.
                    hist.attempts = max(0, int(rec.get("attempt", 1)) - 1)
                    if rec.get("cycle") is not None:
                        hist.checkpoint_cycle = rec.get("cycle")
                        hist.checkpoint_time = rec.get("time")
                    if rec.get("snapshot_path"):
                        hist.checkpoint_path = rec.get("snapshot_path")
                if rec.get("terminal"):
                    hist.terminal = True
                    hist.status = rec.get("status")
                if rec.get("status") == "done":
                    hist.cycles = rec.get("cycles")
                    # Keep the FIRST recorded fingerprint: it is the golden
                    # value later re-runs are checked against.
                    if hist.fingerprint is None:
                        hist.fingerprint = rec.get("fingerprint")
        return histories


def _outcome_record(
    cell: CampaignCell,
    attempt: int,
    outcome: RunOutcome,
    terminal: bool,
    elapsed: float,
) -> Dict[str, object]:
    rec: Dict[str, object] = {
        "event": "cell-end",
        "cell": cell.key(),
        "attempt": attempt,
        "time": time.time(),
        "elapsed": round(elapsed, 4),
        "terminal": terminal,
    }
    if isinstance(outcome, RunResult):
        rec.update(
            status="done",
            cycles=outcome.cycles,
            fingerprint=outcome.fingerprint(),
            kernel=cell.kernel,
        )
        # Perf-trajectory fields (host-side observability; never part of
        # the fingerprint, so recheck ignores them by construction).
        if outcome.stats.host_seconds > 0:
            rec["host_seconds"] = round(outcome.stats.host_seconds, 4)
            rec["simulated_cycles_per_sec"] = round(
                outcome.stats.simulated_cycles_per_sec, 1
            )
        if outcome.extras.get("resumed_from_cycle") is not None:
            rec["resumed_from_cycle"] = outcome.extras["resumed_from_cycle"]
        if outcome.extras.get("checkpoints_taken"):
            rec["checkpoints_taken"] = outcome.extras["checkpoints_taken"]
    elif isinstance(outcome, PreemptedRun):
        rec.update(
            status="preempted",
            transient=True,
            error_type=outcome.error_type,
            error=outcome.error,
            cycle=outcome.cycle,
            snapshot_path=outcome.snapshot_path,
        )
    elif isinstance(outcome, TimedOutRun):
        rec.update(
            status="timeout",
            transient=True,
            error_type=outcome.error_type,
            error=outcome.error,
            budget=outcome.budget,
            hard_kill=outcome.hard_kill,
            detail=outcome.detail[:LEDGER_DETAIL_LIMIT],
        )
    else:
        transient = classify_outcome(outcome) is FailureClass.TRANSIENT
        rec.update(
            status="worker-died" if outcome.error_type == "WorkerDiedError" else "failed",
            transient=transient,
            error_type=outcome.error_type,
            error=outcome.error,
            detail=outcome.detail[:LEDGER_DETAIL_LIMIT],
        )
    return rec


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


@dataclass
class CampaignPolicy:
    """Execution policy of one campaign."""

    #: Maximum concurrently running worker processes.
    jobs: int = 1
    #: Wall-clock seconds one cell attempt may take (None = no watchdog).
    wall_clock_budget: Optional[float] = None
    #: Total attempts per cell (1 = no retries); only transient failures
    #: consume extra attempts.
    max_attempts: int = 3
    #: First-retry backoff in seconds; doubles per subsequent attempt.
    backoff_base: float = 0.25
    #: Seed of the deterministic backoff jitter.
    backoff_seed: int = 0
    #: Extra seconds past the soft budget before the pool SIGKILLs a worker.
    kill_grace: float = 5.0
    #: Re-run cells already recorded done and verify their fingerprints
    #: instead of skipping them (golden-regression mode).
    recheck: bool = False
    #: Simulated cycles between worker checkpoints (None = checkpointing
    #: off).  With it on, a killed or preempted cell resumes from its latest
    #: valid snapshot instead of cycle 0 — bit-identically, per the
    #: checkpoint module's differential invariant.
    checkpoint_every: Optional[int] = None
    #: Directory for per-cell snapshot files.  ``None`` derives
    #: ``<ledger>.ckpt/`` next to the campaign ledger (checkpointing without
    #: a ledger then requires an explicit directory).
    checkpoint_dir: Optional[str] = None

    def validate(self) -> "CampaignPolicy":
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.wall_clock_budget is not None and self.wall_clock_budget <= 0:
            raise ValueError("wall_clock_budget must be positive (or None)")
        if self.backoff_base < 0 or self.kill_grace < 0:
            raise ValueError("backoff_base and kill_grace must be non-negative")
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive (or None)")
        return self

    def resolve_checkpoint_dir(self, ledger_path: Optional[str]) -> Optional[str]:
        """Effective snapshot directory for this campaign, or ``None``."""
        if self.checkpoint_every is None:
            return None
        if self.checkpoint_dir is not None:
            return self.checkpoint_dir
        if ledger_path is not None:
            return str(ledger_path) + ".ckpt"
        return None

    def backoff(self, cell_key: str, attempt: int) -> float:
        """Seeded exponential backoff before retry number ``attempt``."""
        rng = random.Random(
            f"{self.backoff_seed}:{cell_key}:{attempt}".encode("utf-8")
        )
        return self.backoff_base * (2 ** (attempt - 1)) * (0.75 + 0.5 * rng.random())


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` call produced."""

    #: Terminal outcome per cell key for every cell run in this call.
    outcomes: Dict[str, RunOutcome] = field(default_factory=dict)
    #: Cells skipped because the ledger already held a terminal record.
    skipped: Dict[str, CellHistory] = field(default_factory=dict)
    #: Attempts consumed per cell key in this call.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Cell keys whose recheck fingerprint did not match the golden value.
    mismatches: List[str] = field(default_factory=list)
    #: Cell keys answered from the result store without running a worker.
    store_hits: List[str] = field(default_factory=list)
    retries: int = 0

    @property
    def n_done(self) -> int:
        done = sum(1 for o in self.outcomes.values() if o.ok)
        done += sum(1 for h in self.skipped.values() if h.status == "done")
        return done

    @property
    def n_failed(self) -> int:
        failed = sum(1 for o in self.outcomes.values() if not o.ok)
        failed += sum(1 for h in self.skipped.values() if h.status != "done")
        return failed

    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes.values() if not o.ok]

    def summary(self) -> str:
        parts = [
            f"{self.n_done} done",
            f"{self.n_failed} failed",
            f"{len(self.skipped)} skipped (already recorded)",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
        ]
        if self.store_hits:
            parts.insert(1, f"{len(self.store_hits)} from store")
        if self.mismatches:
            parts.append(f"{len(self.mismatches)} FINGERPRINT MISMATCH(ES)")
        return ", ".join(parts)


@dataclass
class _Running:
    process: multiprocessing.Process
    conn: object
    cell: CampaignCell
    attempt: int
    started_at: float
    budget: Optional[float]
    hard_deadline: Optional[float]


def _spawn(
    cell: CampaignCell,
    policy: CampaignPolicy,
    attempt: int,
    checkpoint_dir: Optional[str] = None,
    allow_resume: bool = True,
    obs_ctx: Optional[Tuple[str, bool, Optional[str]]] = None,
) -> _Running:
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    ckpt_path = (
        cell_checkpoint_path(checkpoint_dir, cell)
        if checkpoint_dir is not None
        else None
    )
    proc = ctx.Process(
        target=_cell_worker,
        args=(
            child_conn,
            cell,
            policy.wall_clock_budget,
            policy.checkpoint_every,
            ckpt_path,
            attempt,
            allow_resume,
            obs_ctx,
        ),
        daemon=True,
        name=f"campaign-{cell.key()}",
    )
    proc.start()
    child_conn.close()
    now = time.monotonic()
    deadline = (
        now + policy.wall_clock_budget + policy.kill_grace
        if policy.wall_clock_budget is not None
        else None
    )
    return _Running(
        process=proc,
        conn=parent_conn,
        cell=cell,
        attempt=attempt,
        started_at=now,
        budget=policy.wall_clock_budget,
        hard_deadline=deadline,
    )


def _drain(
    running: _Running, on_note: Callable[[_Running, CheckpointNote], None]
) -> Optional[RunOutcome]:
    """Consume buffered pipe messages: notes to ``on_note``, outcome back.

    A worker interleaves :class:`CheckpointNote` journal messages with (at
    most) one final outcome on the same pipe; draining notes here is what
    keeps the pool from mistaking a mid-run checkpoint for the attempt's
    result.  Returns the outcome if it arrived, else ``None``.
    """
    try:
        while running.conn.poll():
            msg = running.conn.recv()
            if isinstance(msg, CheckpointNote):
                on_note(running, msg)
            else:
                return msg
    except (EOFError, OSError):
        pass
    return None


def _reap(running: _Running, outcome: Optional[RunOutcome] = None) -> RunOutcome:
    """Collect the outcome of a finished (or dead) worker."""
    if outcome is None:
        try:
            while running.conn.poll():
                msg = running.conn.recv()
                if not isinstance(msg, CheckpointNote):
                    outcome = msg
                    break
        except (EOFError, OSError):
            outcome = None
    running.conn.close()
    running.process.join()
    if outcome is None:
        code = running.process.exitcode
        outcome = FailedRun(
            benchmark=running.cell.benchmark,
            design_point=running.cell.design_point,
            error_type="WorkerDiedError",
            error=f"worker exited with code {code} before reporting an outcome",
        )
    return outcome


def _kill(running: _Running) -> TimedOutRun:
    """Hard watchdog: SIGKILL a worker that outlived budget + grace."""
    running.process.kill()
    running.process.join()
    running.conn.close()
    elapsed = time.monotonic() - running.started_at
    return TimedOutRun(
        benchmark=running.cell.benchmark,
        design_point=running.cell.design_point,
        budget=running.budget or 0.0,
        elapsed=elapsed,
        error="worker SIGKILLed by the pool watchdog",
        hard_kill=True,
    )


def run_campaign(
    cells: Iterable[CampaignCell],
    policy: Optional[CampaignPolicy] = None,
    ledger_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    store=None,
    campaign_id: Optional[str] = None,
) -> CampaignReport:
    """Execute a campaign of cells on the worker pool.

    Args:
        cells: The declarative grid.  Cell keys must be unique.
        policy: Pool size, watchdog budget, retry policy (default: serial
            single-job pool, no watchdog, 3 attempts).
        ledger_path: JSONL ledger location.  ``None`` runs entirely
            in-memory (used by the figure functions' ``jobs=`` path).
        resume: Replay the ledger first: cells with a terminal record are
            skipped (or re-verified under ``policy.recheck``), in-flight
            cells are re-queued with their attempt counter preserved.
            Without ``resume``, an existing non-empty ledger is an error —
            refusing to silently interleave two campaigns in one file.
        progress: Optional line sink for human-readable progress.
        store: Optional :class:`~repro.store.ResultStore` (or a path to
            one).  Store-first scheduling: a cell whose digest is already
            stored is answered from the store — recorded ``done`` in the
            ledger with ``store_hit``, never simulated — and every freshly
            completed cell is published back, so a second campaign over
            the same grid performs zero re-simulations.  Under
            ``policy.recheck`` stored fingerprints join the ledger's as
            golden values and every cell re-runs.
        campaign_id: Provenance label stamped into store entries this
            campaign publishes (default: the ledger path or ``adhoc``).

    Returns a :class:`CampaignReport`; raises nothing for cell failures —
    they are data (``report.outcomes``) — but propagates KeyboardInterrupt
    after killing the pool, leaving the ledger resumable.
    """
    policy = (policy or CampaignPolicy()).validate()
    if store is not None and not hasattr(store, "get"):
        from repro.store.store import ResultStore

        store = ResultStore(str(store))
    if campaign_id is None:
        campaign_id = str(ledger_path) if ledger_path is not None else "adhoc"
    cells = [c.validate() for c in cells]
    keys = [c.key() for c in cells]
    dup = {k for k in keys if keys.count(k) > 1}
    if dup:
        raise ValueError(f"duplicate campaign cell key(s): {sorted(dup)}")

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    # Observability (repro.obs): one correlation id per cell — stable
    # across retries, so every attempt of a cell chains under one cid —
    # plus campaign.* events and retry/attempt counters.  Every helper
    # no-ops unless obs is configured in this process.
    cell_cids: Dict[str, str] = {}

    def cell_cid(key: str) -> Optional[str]:
        if not _obs.active():
            return None
        cid = cell_cids.get(key)
        if cid is None:
            cid = cell_cids[key] = new_cid()
        return cid

    def obs_ctx_for(key: str) -> Optional[Tuple[str, bool, Optional[str]]]:
        state = _obs.get_state()
        if state is None or state.log is None:
            return None
        return (state.log.path, state.log.sync, cell_cid(key))

    def bump(name: str, amount: int = 1, **labels: str) -> None:
        state = _obs.get_state()
        if state is not None:
            state.registry.counter(name, **labels).inc(amount)

    report = CampaignReport()
    histories: Dict[str, CellHistory] = {}
    ledger: Optional[CampaignLedger] = None
    if ledger_path is not None:
        exists = os.path.exists(ledger_path) and os.path.getsize(ledger_path) > 0
        if exists and not resume:
            raise FileExistsError(
                f"ledger {ledger_path!r} already has records; use resume "
                "(or point the campaign at a fresh ledger)"
            )
        if resume and exists:
            histories = CampaignLedger.replay(ledger_path)
        ledger = CampaignLedger(ledger_path).open()
    checkpoint_dir = policy.resolve_checkpoint_dir(ledger_path)
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)

    # Seed the run queue: skip terminally-recorded cells, answer store hits
    # without running, and re-queue the rest (in-flight cells keep their
    # attempt counter so retries stay bounded across crashes).
    heap: List[Tuple[float, int, CampaignCell, int]] = []
    golden: Dict[str, Optional[str]] = {}
    store_hit_records: List[Tuple[CampaignCell, object]] = []
    digests: Dict[str, str] = {}
    now = time.monotonic()
    for seq, cell in enumerate(cells):
        key = cell.key()
        hist = histories.get(key)
        if hist is not None and hist.terminal:
            if policy.recheck and hist.status == "done":
                golden[key] = hist.fingerprint
            else:
                report.skipped[key] = hist
                continue
        if store is not None:
            from repro.store.store import cell_digest, result_from_entry

            digests[key] = cell_digest(cell)
            entry = store.get(digests[key])
            if entry is not None:
                if policy.recheck:
                    # Stored fingerprints are golden values too: the re-run
                    # below must reproduce them byte for byte.
                    golden.setdefault(key, entry.fingerprint)
                else:
                    report.outcomes[key] = result_from_entry(entry)
                    report.store_hits.append(key)
                    store_hit_records.append((cell, entry))
                    continue
        attempt = (hist.attempts if hist is not None else 0) + 1
        heapq.heappush(heap, (now, seq, cell, attempt))
    seq_counter = len(cells)

    if ledger is not None:
        ledger.append(
            {
                "event": "campaign-start",
                "schema": LEDGER_SCHEMA_VERSION,
                "time": time.time(),
                "resume": resume,
                "n_cells": len(cells),
                "n_skipped": len(report.skipped),
                "n_store_hits": len(report.store_hits),
                "store": getattr(store, "root", None),
                "policy": {
                    "jobs": policy.jobs,
                    "wall_clock_budget": policy.wall_clock_budget,
                    "max_attempts": policy.max_attempts,
                    "recheck": policy.recheck,
                },
            }
        )
        for cell, entry in store_hit_records:
            # One terminal record per store hit: resume and status see the
            # cell as done, and the record says it was never simulated.
            ledger.append(
                {
                    "event": "cell-end",
                    "cell": cell.key(),
                    "attempt": 0,
                    "time": time.time(),
                    "elapsed": 0.0,
                    "terminal": True,
                    "status": "done",
                    "cycles": entry.cycles,
                    "fingerprint": entry.fingerprint,
                    "kernel": cell.kernel,
                    "store_hit": True,
                    "store_digest": entry.digest,
                }
            )

    if _obs.active():
        _obs.emit(
            "campaign.start",
            campaign=campaign_id,
            n_cells=len(cells),
            n_skipped=len(report.skipped),
            n_store_hits=len(report.store_hits),
        )
        for cell, entry in store_hit_records:
            bump("repro_campaign_store_hits_total")
            _obs.emit(
                "store.hit",
                cid=cell_cid(cell.key()),
                cell=cell.key(),
                digest=entry.digest,
                fingerprint=entry.fingerprint,
                campaign=campaign_id,
            )

    running: List[_Running] = []
    draining = False

    def handle_note(r: _Running, msg: CheckpointNote) -> None:
        """Journal one worker checkpoint into the ledger (``cell-ckpt``)."""
        if ledger is not None:
            ledger.append(
                {
                    "event": "cell-ckpt",
                    "cell": msg.cell,
                    "attempt": msg.attempt,
                    "cycle": msg.cycle,
                    "path": msg.path,
                    "count": msg.count,
                    "time": time.time(),
                }
            )

    def record_outcome(cell: CampaignCell, attempt: int, outcome: RunOutcome) -> None:
        nonlocal seq_counter
        key = cell.key()
        report.attempts[key] = attempt
        # Fingerprint invariant: a re-run of a recorded-done cell must
        # reproduce the golden fingerprint byte for byte.
        if (
            isinstance(outcome, RunResult)
            and golden.get(key) is not None
            and outcome.fingerprint() != golden[key]
        ):
            outcome = FailedRun(
                benchmark=cell.benchmark,
                design_point=cell.design_point,
                error_type="FingerprintMismatchError",
                error=(
                    f"recorded fingerprint {golden[key]} but re-run produced "
                    f"{outcome.fingerprint()} — determinism violated"
                ),
            )
            report.mismatches.append(key)
        verdict = classify_outcome(outcome)
        # Preemptions are the host's doing: they stay resumable however many
        # attempts the cell has consumed, and retrying one repeats the SAME
        # attempt number so evictions never exhaust a retry budget.
        preempted = isinstance(outcome, PreemptedRun)
        resumable = verdict is FailureClass.TRANSIENT and (
            preempted or attempt < policy.max_attempts
        )
        elapsed = time.monotonic() - start_times.pop(key, now)
        published: Optional[str] = None
        if store is not None and isinstance(outcome, RunResult):
            from repro.store.store import StoreError

            try:
                entry, _created = store.put(
                    cell,
                    outcome,
                    provenance={"campaign": campaign_id, "attempt": attempt},
                )
                published = entry.digest
                if _obs.active():
                    _obs.emit(
                        "store.publish",
                        cid=cell_cids.get(key),
                        digest=entry.digest,
                        created=_created,
                        fingerprint=entry.fingerprint,
                        campaign=campaign_id,
                    )
            except StoreError as exc:
                # A fingerprint conflict with an existing entry is a
                # determinism violation — surface it like a recheck
                # mismatch instead of silently keeping either value.
                note(f"  STORE CONFLICT {key}: {exc}")
                report.mismatches.append(key)
        if ledger is not None:
            rec = _outcome_record(cell, attempt, outcome, not resumable, elapsed)
            if report.mismatches and report.mismatches[-1] == key:
                rec["status"] = "fingerprint-mismatch"
            if published is not None:
                rec["store_digest"] = published
            ledger.append(rec)
        if resumable and not draining:
            delay = policy.backoff(key, attempt)
            report.retries += 1
            bump("repro_campaign_retries_total")
            note(
                f"  retry {key} (attempt {attempt} {outcome.error_type}; "
                f"backoff {delay:.2f}s)"
            )
            heapq.heappush(
                heap,
                (
                    time.monotonic() + delay,
                    seq_counter,
                    cell,
                    attempt if preempted else attempt + 1,
                ),
            )
            seq_counter += 1
        else:
            report.outcomes[key] = outcome
            state = "done" if outcome.ok else f"FAILED ({outcome.error_type})"
            if preempted:
                state = f"preempted at cycle {outcome.cycle:.0f} (resumable)"
            note(f"  {key} {state} [{elapsed:.2f}s, attempt {attempt}]")
        if _obs.active():
            terminal = not (resumable and not draining)
            status = "retry" if not terminal else ("done" if outcome.ok else "failed")
            if terminal:
                bump("repro_campaign_cells_total", status=status)
            _obs.emit(
                "campaign.cell.end",
                cid=cell_cids.get(key),
                cell=key,
                attempt=attempt,
                status=status,
                error_type=getattr(outcome, "error_type", None),
                elapsed_s=round(elapsed, 6),
            )

    start_times: Dict[str, float] = {}
    try:
        while heap or running:
            now = time.monotonic()
            # Launch everything ready while there is pool capacity.
            while heap and len(running) < policy.jobs and heap[0][0] <= now:
                _, _, cell, attempt = heapq.heappop(heap)
                start_times[cell.key()] = time.monotonic()
                if _obs.active():
                    bump("repro_campaign_attempts_total")
                    _obs.emit(
                        "campaign.cell.start",
                        cid=cell_cid(cell.key()),
                        cell=cell.key(),
                        attempt=attempt,
                        kernel=cell.kernel,
                    )
                if ledger is not None:
                    ledger.append(
                        {
                            "event": "cell-start",
                            "cell": cell.key(),
                            "attempt": attempt,
                            "time": time.time(),
                            "schema": LEDGER_SCHEMA_VERSION,
                            "spec": cell.spec(),
                        }
                    )
                running.append(
                    _spawn(
                        cell,
                        policy,
                        attempt,
                        checkpoint_dir=checkpoint_dir,
                        # Recheck re-runs must cover the whole run from
                        # cycle 0 — resuming would verify only the tail.
                        allow_resume=cell.key() not in golden,
                        obs_ctx=obs_ctx_for(cell.key()),
                    )
                )

            if not running:
                # Pool idle but a backoff delay is pending: sleep it off.
                if heap:
                    time.sleep(max(0.0, heap[0][0] - time.monotonic()))
                continue

            # Wait for the first of: a worker reporting, a worker dying, a
            # hard deadline, or a queued retry becoming ready.
            timeout = 0.5
            deadlines = [r.hard_deadline for r in running if r.hard_deadline]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - time.monotonic()))
            if heap:
                timeout = min(timeout, max(0.0, heap[0][0] - time.monotonic()))
            waitables = [r.conn for r in running] + [
                r.process.sentinel for r in running
            ]
            _connection_wait(waitables, timeout=timeout)

            still_running: List[_Running] = []
            for r in running:
                now = time.monotonic()
                outcome = _drain(r, handle_note)
                if outcome is not None or not r.process.is_alive():
                    record_outcome(r.cell, r.attempt, _reap(r, outcome))
                elif r.hard_deadline is not None and now >= r.hard_deadline:
                    record_outcome(r.cell, r.attempt, _kill(r))
                else:
                    still_running.append(r)
            running = still_running
    finally:
        draining = True
        # Graceful preemption: SIGTERM first, so checkpoint-enabled workers
        # snapshot at the next safe point and report a PreemptedRun before
        # exiting; anything still alive after the grace window is killed
        # (its cell-start stays unmatched, so resume re-queues it).
        for r in running:
            r.process.terminate()
        grace_deadline = time.monotonic() + max(policy.kill_grace, 0.1)
        for r in running:
            outcome = None
            while time.monotonic() < grace_deadline:
                outcome = _drain(r, handle_note)
                if outcome is not None or not r.process.is_alive():
                    break
                time.sleep(0.02)
            if outcome is None:
                outcome = _drain(r, handle_note)
            if outcome is not None:
                record_outcome(r.cell, r.attempt, _reap(r, outcome))
            else:
                r.process.kill()
                r.process.join()
                r.conn.close()
        if ledger is not None:
            ledger.append(
                {
                    "event": "campaign-end",
                    "time": time.time(),
                    "complete": not heap and not running,
                    "n_done": report.n_done,
                    "n_failed": report.n_failed,
                    "retries": report.retries,
                }
            )
            ledger.close()
        if _obs.active():
            _obs.emit(
                "campaign.end",
                campaign=campaign_id,
                complete=not heap and not running,
                n_done=report.n_done,
                n_failed=report.n_failed,
                retries=report.retries,
            )
    return report


def run_cells(
    cells: Iterable[CampaignCell],
    jobs: int = 1,
    policy: Optional[CampaignPolicy] = None,
    ledger_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, RunOutcome]:
    """Run cells and return ``{cell key: outcome}`` — the figure-facing API.

    ``jobs == 1`` (the default) executes serially in-process via
    :func:`execute_cell`, with no pool, no ledger, and no retry machinery —
    the exact fallback the figure functions always had.  ``jobs > 1``
    dispatches through :func:`run_campaign`.  Both paths run the same
    executor, so cycles and fingerprints are identical either way.
    """
    cells = list(cells)
    if jobs <= 1 and ledger_path is None:
        return {cell.key(): execute_cell(cell) for cell in cells}
    pool_policy = policy or CampaignPolicy()
    pool_policy.jobs = max(1, jobs)
    report = run_campaign(
        cells, pool_policy, ledger_path=ledger_path, progress=progress
    )
    return report.outcomes


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------


def _checkpoint_entry(hist: CellHistory, now: float) -> Optional[Dict[str, object]]:
    """Per-cell checkpoint progress: cycle, snapshot path validity, and age.

    Age prefers the snapshot file's mtime (survives ledger truncation and
    reflects the atomic rename, not the journal note); the ledger record
    time is the fallback when the file is gone.
    """
    if hist.checkpoint_cycle is None and hist.checkpoints == 0:
        return None
    entry: Dict[str, object] = {
        "cycle": hist.checkpoint_cycle,
        "count": hist.checkpoints,
        "path": hist.checkpoint_path,
        "on_disk": False,
        "age": None,
    }
    if hist.checkpoint_path is not None and os.path.exists(hist.checkpoint_path):
        entry["on_disk"] = True
        try:
            entry["age"] = max(0.0, now - os.path.getmtime(hist.checkpoint_path))
        except OSError:
            entry["age"] = None
    elif hist.checkpoint_time is not None:
        entry["age"] = max(0.0, now - hist.checkpoint_time)
    return entry


def campaign_status(ledger_path: str) -> Dict[str, object]:
    """Summarize a ledger: counts by status, in-flight cells, fingerprints.

    Returns a plain dict (CLI-renderable and test-assertable):
    ``{"cells": N, "by_status": {...}, "in_flight": [...], "complete": bool,
    "attempts": total, "fingerprints": {key: fp},
    "checkpoints": {key: {"cycle", "count", "path", "on_disk", "age"}}}``.
    The ``checkpoints`` map holds every cell that journalled a snapshot —
    the recovery story of each in-flight or preempted cell at a glance:
    which cycle it would resume from and how stale that snapshot is.
    """
    histories = CampaignLedger.replay(ledger_path)
    by_status: Dict[str, int] = {}
    in_flight: List[str] = []
    fingerprints: Dict[str, str] = {}
    checkpoints: Dict[str, Dict[str, object]] = {}
    attempts = 0
    now = time.time()
    for hist in histories.values():
        attempts += hist.attempts
        if hist.in_flight:
            in_flight.append(hist.key)
        if hist.terminal:
            by_status[hist.status or "?"] = by_status.get(hist.status or "?", 0) + 1
        elif not hist.in_flight:
            by_status["interrupted"] = by_status.get("interrupted", 0) + 1
        if hist.fingerprint is not None:
            fingerprints[hist.key] = hist.fingerprint
        # Checkpoint progress matters for cells that may still resume; a
        # successfully-done cell's snapshots were already discarded.
        if not (hist.terminal and hist.status == "done"):
            ckpt = _checkpoint_entry(hist, now)
            if ckpt is not None:
                checkpoints[hist.key] = ckpt
    return {
        "cells": len(histories),
        "by_status": by_status,
        "in_flight": sorted(in_flight),
        "complete": not in_flight
        and all(h.terminal for h in histories.values())
        and bool(histories),
        "attempts": attempts,
        "fingerprints": fingerprints,
        "checkpoints": checkpoints,
    }


def _render_age(age: Optional[float]) -> str:
    if age is None:
        return "age unknown"
    if age < 120:
        return f"{age:.0f}s old"
    if age < 7200:
        return f"{age / 60:.1f}min old"
    return f"{age / 3600:.1f}h old"


def render_status(status: Dict[str, object]) -> str:
    """Human-readable one-screen rendering of :func:`campaign_status`."""
    checkpoints: Dict[str, Dict[str, object]] = status.get("checkpoints", {})

    def ckpt_suffix(key: str) -> str:
        entry = checkpoints.get(key)
        if entry is None:
            return ""
        cycle = entry.get("cycle")
        where = "on disk" if entry.get("on_disk") else "journalled"
        return (
            f" [ckpt cycle {cycle:.0f}, {where}, {_render_age(entry.get('age'))}]"
            if cycle is not None
            else ""
        )

    lines = [f"cells recorded : {status['cells']}"]
    for name, count in sorted(status["by_status"].items()):
        lines.append(f"  {name:<20s} {count}")
    lines.append(f"attempts       : {status['attempts']}")
    lines.append(f"in flight      : {len(status['in_flight'])}")
    for key in status["in_flight"]:
        lines.append(f"  {key} (re-queued on resume){ckpt_suffix(key)}")
    resumable = [k for k in sorted(checkpoints) if k not in status["in_flight"]]
    if resumable:
        lines.append(f"checkpointed   : {len(resumable)}")
        for key in resumable:
            lines.append(f"  {key}{ckpt_suffix(key)}")
    lines.append(f"complete       : {'yes' if status['complete'] else 'no'}")
    return "\n".join(lines)
