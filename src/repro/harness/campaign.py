"""Resilient parallel experiment campaigns: pool, watchdog, retries, ledger.

The paper's evaluation is a large grid — benchmarks x design points x
sensitivity knobs, multiplied by the pipeline study's stage counts — and a
serial in-process sweep has two failure amplifiers: one wedged simulation
(exactly the hang mode a seeded ``QUEUE_SLOT_STALL`` fault can inject into
the EXISTING spin loop) stalls every cell behind it, and one crash throws
away every cell already computed.  This module makes each cell a *bounded,
retryable, durably-recorded unit of work*:

* **Cells** (:class:`CampaignCell`) are declarative: benchmark, design
  point, trip count, a ``{knob: value}`` overrides dict (see
  :data:`repro.core.design_points.OVERRIDE_KNOBS`), and an optional seeded
  :class:`~repro.faults.plan.FaultPlan`.  A cell's identity is a stable
  hash of that spec, so the same grid built twice names the same cells.

* **Worker pool**: up to ``jobs`` worker processes run cells concurrently
  (:func:`run_campaign`).  Workers are single-use — one process per cell
  attempt — so a kill can never poison a sibling cell's interpreter state.

* **Watchdog**: every attempt gets a wall-clock budget, enforced twice.
  The *soft* layer runs inside the worker — the scheduler's own
  :class:`~repro.sim.cosim.WallClockExceededError` check — so a timed-out
  run still flushes its post-mortem and trace tail into a structured
  :class:`~repro.harness.runner.TimedOutRun`.  The *hard* layer runs in the
  pool: a worker that outlives budget + grace (wedged outside the scheduler
  loop) is ``SIGKILL``-ed and recorded as a ``TimedOutRun(hard_kill=True)``.

* **Retries**: transient failures (timeouts, dead workers — host-side
  interference, per :mod:`repro.faults.classify`) are retried up to
  ``max_attempts`` with seeded exponential backoff; deterministic failures
  (deadlock/step-limit diagnoses, config errors) fail fast, because the
  seeded simulator guarantees a retry would fail identically.

* **Ledger**: every attempt appends one JSON record to an append-only JSONL
  file (single ``write`` + ``fsync`` per record, so a crash can tear at
  most the final line, which replay ignores).  ``campaign resume`` replays
  the ledger, skips cells with a terminal record, and re-queues cells that
  were in flight when the process died.

* **Fingerprints**: each completed cell records
  :meth:`~repro.sim.stats.RunStats.fingerprint`.  Re-running a recorded
  cell (``recheck=True``) must reproduce the fingerprint byte for byte —
  the simulator's determinism guarantee as a checked invariant, and a
  golden-regression store for CI.

The serial in-process path (:func:`execute_cell` cell by cell) remains the
default everywhere — :mod:`repro.harness.experiments` only dispatches
through the pool when asked for ``jobs > 1`` — so existing entry points and
tests are untouched by the campaign machinery.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing
import os
import random
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.design_points import apply_overrides, get_design_point, with_n_cores
from repro.faults.classify import FailureClass, classify_outcome
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.harness.runner import (
    FailedRun,
    RunOutcome,
    RunResult,
    TimedOutRun,
    run_benchmark_resilient,
    run_single_threaded,
)
from repro.sim.cosim import SimulationError, WallClockExceededError

__all__ = [
    "CampaignCell",
    "CampaignLedger",
    "CampaignPolicy",
    "CampaignReport",
    "CellHistory",
    "campaign_status",
    "execute_cell",
    "fault_plan_from_spec",
    "render_status",
    "run_campaign",
    "run_cells",
]

#: Ledger records cap multi-line diagnostics at this many characters so one
#: post-mortem cannot balloon the campaign's append-only log.
LEDGER_DETAIL_LIMIT = 8000

#: Cell kinds the worker-side executor understands.
CELL_KINDS = ("benchmark", "single", "pipeline")


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------


def _fault_plan_spec(plan: Optional[FaultPlan]) -> Optional[Dict[str, object]]:
    """JSON-able identity of a fault plan (seed + rules), or None."""
    if plan is None:
        return None
    rules = []
    for rule in plan.rules:
        rules.append(
            {
                "kind": rule.kind.value,
                "magnitude": rule.magnitude,
                "probability": rule.probability,
                "queue_id": rule.queue_id,
                "core_id": rule.core_id,
                "after": rule.after,
                "count": rule.count,
            }
        )
    return {"seed": plan.seed, "rules": rules}


def fault_plan_from_spec(spec: Optional[Dict[str, object]]) -> Optional[FaultPlan]:
    """Rebuild a :class:`FaultPlan` from :func:`_fault_plan_spec` output."""
    if spec is None:
        return None
    rules = tuple(
        FaultRule(
            kind=FaultKind(r["kind"]),
            magnitude=float(r["magnitude"]),
            probability=float(r["probability"]),
            queue_id=r["queue_id"],
            core_id=r["core_id"],
            after=int(r["after"]),
            count=r["count"],
        )
        for r in spec["rules"]
    )
    return FaultPlan(seed=int(spec["seed"]), rules=rules).validate()


@dataclass
class CampaignCell:
    """One bounded, retryable unit of campaign work.

    Everything a worker needs to reproduce the run is plain data: cells
    cross process boundaries by pickling and enter the ledger as JSON, and
    two cells with the same spec always share the same :meth:`key` — the
    property resume and fingerprint checking are built on.

    Kinds:

    * ``"benchmark"`` — the standard two-stage (benchmark, design point)
      cell of the paper's grids, via :func:`run_benchmark_resilient`.
    * ``"single"`` — the unpartitioned single-core baseline
      (:func:`run_single_threaded`), used by Figure 9 and the scaling study.
    * ``"pipeline"`` — a K-stage pipeline on K cores (``stages=K``) with
      the scaling study's comm-trace instrumentation; per-hop delays and
      bus utilization come back in ``RunResult.extras``.
    """

    benchmark: str
    design_point: str = "HEAVYWT"
    kind: str = "benchmark"
    trip_count: Optional[int] = None
    #: Declarative config deltas, applied via OVERRIDE_KNOBS in fixed order.
    overrides: Dict[str, int] = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = field(default=None, repr=False)
    #: Pipeline depth for ``kind="pipeline"`` cells.
    stages: Optional[int] = None

    def validate(self) -> "CampaignCell":
        if self.kind not in CELL_KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}; known: {CELL_KINDS}")
        if self.kind == "pipeline" and (self.stages is None or self.stages < 2):
            raise ValueError("pipeline cells need stages >= 2")
        if self.trip_count is not None and self.trip_count <= 0:
            raise ValueError("trip_count must be positive (or None for default)")
        return self

    def spec(self) -> Dict[str, object]:
        """Canonical plain-data identity (what :meth:`key` hashes)."""
        return {
            "benchmark": self.benchmark,
            "design_point": self.design_point,
            "kind": self.kind,
            "trip_count": self.trip_count,
            "overrides": dict(sorted(self.overrides.items())),
            "fault_plan": _fault_plan_spec(self.fault_plan),
            "stages": self.stages,
        }

    def key(self) -> str:
        """Stable human-scannable id: ``bench/point[...]#spec-digest``."""
        digest = hashlib.sha256(
            json.dumps(self.spec(), sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()[:8]
        label = f"{self.benchmark}/{self.design_point}"
        if self.kind == "single":
            label = f"{self.benchmark}/SINGLE"
        elif self.kind == "pipeline":
            label = f"{self.benchmark}/{self.design_point}/K{self.stages}"
        return f"{label}#{digest}"

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "CampaignCell":
        """Rebuild a cell from a ledger ``spec`` record."""
        return cls(
            benchmark=spec["benchmark"],
            design_point=spec["design_point"],
            kind=spec.get("kind", "benchmark"),
            trip_count=spec.get("trip_count"),
            overrides=dict(spec.get("overrides") or {}),
            fault_plan=fault_plan_from_spec(spec.get("fault_plan")),
            stages=spec.get("stages"),
        ).validate()


# ----------------------------------------------------------------------
# In-process cell execution (shared by the serial path and the workers)
# ----------------------------------------------------------------------


def _build_config(cell: CampaignCell):
    """The cell's machine config, or None to use the design point's own."""
    if not cell.overrides and cell.fault_plan is None:
        return None
    cfg = get_design_point(cell.design_point).build_config()
    cfg = apply_overrides(cfg, cell.overrides)
    if cell.fault_plan is not None:
        cfg.faults = cell.fault_plan
    return cfg.validate()


def _execute_single(cell: CampaignCell, budget: Optional[float]) -> RunOutcome:
    try:
        return run_single_threaded(
            cell.benchmark, cell.trip_count, wall_clock_budget=budget
        )
    except WallClockExceededError as exc:
        return TimedOutRun(
            benchmark=cell.benchmark,
            design_point="SINGLE",
            budget=exc.budget,
            elapsed=exc.elapsed,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )
    except SimulationError as exc:
        return FailedRun(
            benchmark=cell.benchmark,
            design_point="SINGLE",
            error_type=type(exc).__name__,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )


def _execute_pipeline(cell: CampaignCell, budget: Optional[float]) -> RunOutcome:
    # Imported lazily: repro.pipeline.scaling reaches back into the harness,
    # and the pipeline modules are only needed for pipeline-kind cells.
    from repro.dswp.partition import PartitionError
    from repro.pipeline.codegen import lower_pipeline, plan_queue_hops
    from repro.pipeline.scaling import _per_hop_delay, build_pipeline_partition
    from repro.sim.machine import Machine
    from repro.trace.buffer import TraceConfig

    point_label = f"{cell.design_point}/K={cell.stages}"
    try:
        partition = build_pipeline_partition(
            cell.benchmark, cell.stages, cell.trip_count
        )
    except PartitionError as exc:
        return FailedRun(
            benchmark=cell.benchmark,
            design_point=point_label,
            error_type=type(exc).__name__,
            error=str(exc).splitlines()[0],
            detail=str(exc),
        )
    program = lower_pipeline(partition)
    dp = get_design_point(cell.design_point)
    cfg = with_n_cores(dp.build_config(), cell.stages).copy(
        trace=TraceConfig(capacity=1 << 20, categories=("comm",))
    )
    if cell.fault_plan is not None:
        cfg.faults = cell.fault_plan
        cfg.validate()
    machine = Machine(cfg, mechanism=dp.mechanism)
    try:
        stats = machine.run(program, wall_clock_budget=budget)
    except WallClockExceededError as exc:
        return TimedOutRun(
            benchmark=cell.benchmark,
            design_point=point_label,
            budget=exc.budget,
            elapsed=exc.elapsed,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )
    except SimulationError as exc:
        return FailedRun(
            benchmark=cell.benchmark,
            design_point=point_label,
            error_type=type(exc).__name__,
            error=str(exc).splitlines()[0],
            detail=str(exc),
            post_mortem=exc.post_mortem,
        )
    hop_of_queue = {qid: src for (_, src), qid in plan_queue_hops(partition).items()}
    return RunResult(
        benchmark=cell.benchmark,
        design_point=cell.design_point,
        cycles=stats.cycles,
        stats=stats,
        machine=machine,
        trace=machine.trace,
        extras={
            "stages": cell.stages,
            "hop_delays": _per_hop_delay(machine.trace, hop_of_queue),
            "bus_utilization": machine.mem.bus.utilization(stats.cycles),
        },
    )


def execute_cell(
    cell: CampaignCell, wall_clock_budget: Optional[float] = None
) -> RunOutcome:
    """Run one cell in this process; the single executor both paths share.

    The serial fallback calls this directly; pool workers call it inside
    :func:`_cell_worker`.  One code path is what makes the pooled campaign's
    cycle counts and fingerprints bit-identical to the serial sweep's.
    """
    cell.validate()
    if cell.kind == "single":
        return _execute_single(cell, wall_clock_budget)
    if cell.kind == "pipeline":
        return _execute_pipeline(cell, wall_clock_budget)
    return run_benchmark_resilient(
        cell.benchmark,
        cell.design_point,
        cell.trip_count,
        config=_build_config(cell),
        wall_clock_budget=wall_clock_budget,
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _strip_for_transport(outcome: RunOutcome) -> RunOutcome:
    """Drop the heavyweight machine/trace before crossing the pipe."""
    if isinstance(outcome, RunResult):
        outcome.machine = None
        outcome.trace = None
    return outcome


def _cell_worker(conn, cell: CampaignCell, soft_budget: Optional[float]) -> None:
    """Process entry point: run one cell attempt, send one outcome.

    Usage errors (unknown names, config mismatches) intentionally raise out
    of :func:`execute_cell`; here they are converted into *data* — a
    :class:`FailedRun` with the full traceback — because an exception that
    merely kills the worker would be indistinguishable from host-side
    interference and get retried, hiding a deterministic bug.
    """
    try:
        outcome = execute_cell(cell, wall_clock_budget=soft_budget)
    except BaseException as exc:
        outcome = FailedRun(
            benchmark=cell.benchmark,
            design_point=cell.design_point,
            error_type=type(exc).__name__,
            error=(str(exc).splitlines() or [type(exc).__name__])[0],
            detail=traceback.format_exc(),
        )
    try:
        conn.send(_strip_for_transport(outcome))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------


@dataclass
class CellHistory:
    """Replayed per-cell state of one ledger."""

    key: str
    attempts: int = 0
    in_flight: bool = False
    terminal: bool = False
    status: Optional[str] = None
    cycles: Optional[int] = None
    fingerprint: Optional[str] = None
    spec: Optional[Dict[str, object]] = None


class CampaignLedger:
    """Append-only JSONL record of every cell attempt of a campaign.

    Crash safety: each record is one ``os.write`` of one full line to an
    ``O_APPEND`` descriptor followed by ``fsync``, so a crash (or SIGKILL)
    can lose at most the record being written — and a torn final line is
    skipped by :meth:`read`, never mistaken for a terminal outcome.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fd: Optional[int] = None

    def open(self) -> "CampaignLedger":
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def append(self, record: Dict[str, object]) -> None:
        if self._fd is None:
            self.open()
        line = json.dumps(record, sort_keys=True) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        os.fsync(self._fd)

    # -- replay ---------------------------------------------------------

    @staticmethod
    def read(path: str) -> List[Dict[str, object]]:
        """Parse every intact record; a torn final line is dropped."""
        records: List[Dict[str, object]] = []
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().split("\n")
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if i == len(lines) - 1 or not lines[i + 1 :]:
                    break  # torn tail from a crash mid-append
                raise
        return records

    @staticmethod
    def replay(path: str) -> Dict[str, CellHistory]:
        """Fold a ledger into per-cell state keyed by cell key."""
        histories: Dict[str, CellHistory] = {}
        for rec in CampaignLedger.read(path):
            event = rec.get("event")
            if event not in ("cell-start", "cell-end"):
                continue
            key = rec["cell"]
            hist = histories.setdefault(key, CellHistory(key=key))
            hist.attempts = max(hist.attempts, int(rec.get("attempt", 0)))
            if event == "cell-start":
                hist.in_flight = True
                if rec.get("spec"):
                    hist.spec = rec["spec"]
            else:
                hist.in_flight = False
                if rec.get("terminal"):
                    hist.terminal = True
                    hist.status = rec.get("status")
                if rec.get("status") == "done":
                    hist.cycles = rec.get("cycles")
                    # Keep the FIRST recorded fingerprint: it is the golden
                    # value later re-runs are checked against.
                    if hist.fingerprint is None:
                        hist.fingerprint = rec.get("fingerprint")
        return histories


def _outcome_record(
    cell: CampaignCell,
    attempt: int,
    outcome: RunOutcome,
    terminal: bool,
    elapsed: float,
) -> Dict[str, object]:
    rec: Dict[str, object] = {
        "event": "cell-end",
        "cell": cell.key(),
        "attempt": attempt,
        "time": time.time(),
        "elapsed": round(elapsed, 4),
        "terminal": terminal,
    }
    if isinstance(outcome, RunResult):
        rec.update(
            status="done",
            cycles=outcome.cycles,
            fingerprint=outcome.fingerprint(),
        )
    elif isinstance(outcome, TimedOutRun):
        rec.update(
            status="timeout",
            transient=True,
            error_type=outcome.error_type,
            error=outcome.error,
            budget=outcome.budget,
            hard_kill=outcome.hard_kill,
            detail=outcome.detail[:LEDGER_DETAIL_LIMIT],
        )
    else:
        transient = classify_outcome(outcome) is FailureClass.TRANSIENT
        rec.update(
            status="worker-died" if outcome.error_type == "WorkerDiedError" else "failed",
            transient=transient,
            error_type=outcome.error_type,
            error=outcome.error,
            detail=outcome.detail[:LEDGER_DETAIL_LIMIT],
        )
    return rec


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------


@dataclass
class CampaignPolicy:
    """Execution policy of one campaign."""

    #: Maximum concurrently running worker processes.
    jobs: int = 1
    #: Wall-clock seconds one cell attempt may take (None = no watchdog).
    wall_clock_budget: Optional[float] = None
    #: Total attempts per cell (1 = no retries); only transient failures
    #: consume extra attempts.
    max_attempts: int = 3
    #: First-retry backoff in seconds; doubles per subsequent attempt.
    backoff_base: float = 0.25
    #: Seed of the deterministic backoff jitter.
    backoff_seed: int = 0
    #: Extra seconds past the soft budget before the pool SIGKILLs a worker.
    kill_grace: float = 5.0
    #: Re-run cells already recorded done and verify their fingerprints
    #: instead of skipping them (golden-regression mode).
    recheck: bool = False

    def validate(self) -> "CampaignPolicy":
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.wall_clock_budget is not None and self.wall_clock_budget <= 0:
            raise ValueError("wall_clock_budget must be positive (or None)")
        if self.backoff_base < 0 or self.kill_grace < 0:
            raise ValueError("backoff_base and kill_grace must be non-negative")
        return self

    def backoff(self, cell_key: str, attempt: int) -> float:
        """Seeded exponential backoff before retry number ``attempt``."""
        rng = random.Random(
            f"{self.backoff_seed}:{cell_key}:{attempt}".encode("utf-8")
        )
        return self.backoff_base * (2 ** (attempt - 1)) * (0.75 + 0.5 * rng.random())


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` call produced."""

    #: Terminal outcome per cell key for every cell run in this call.
    outcomes: Dict[str, RunOutcome] = field(default_factory=dict)
    #: Cells skipped because the ledger already held a terminal record.
    skipped: Dict[str, CellHistory] = field(default_factory=dict)
    #: Attempts consumed per cell key in this call.
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Cell keys whose recheck fingerprint did not match the golden value.
    mismatches: List[str] = field(default_factory=list)
    retries: int = 0

    @property
    def n_done(self) -> int:
        done = sum(1 for o in self.outcomes.values() if o.ok)
        done += sum(1 for h in self.skipped.values() if h.status == "done")
        return done

    @property
    def n_failed(self) -> int:
        failed = sum(1 for o in self.outcomes.values() if not o.ok)
        failed += sum(1 for h in self.skipped.values() if h.status != "done")
        return failed

    def failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes.values() if not o.ok]

    def summary(self) -> str:
        parts = [
            f"{self.n_done} done",
            f"{self.n_failed} failed",
            f"{len(self.skipped)} skipped (already recorded)",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
        ]
        if self.mismatches:
            parts.append(f"{len(self.mismatches)} FINGERPRINT MISMATCH(ES)")
        return ", ".join(parts)


@dataclass
class _Running:
    process: multiprocessing.Process
    conn: object
    cell: CampaignCell
    attempt: int
    started_at: float
    budget: Optional[float]
    hard_deadline: Optional[float]


def _spawn(cell: CampaignCell, policy: CampaignPolicy, attempt: int) -> _Running:
    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_cell_worker,
        args=(child_conn, cell, policy.wall_clock_budget),
        daemon=True,
        name=f"campaign-{cell.key()}",
    )
    proc.start()
    child_conn.close()
    now = time.monotonic()
    deadline = (
        now + policy.wall_clock_budget + policy.kill_grace
        if policy.wall_clock_budget is not None
        else None
    )
    return _Running(
        process=proc,
        conn=parent_conn,
        cell=cell,
        attempt=attempt,
        started_at=now,
        budget=policy.wall_clock_budget,
        hard_deadline=deadline,
    )


def _reap(running: _Running) -> RunOutcome:
    """Collect the outcome of a finished (or dead) worker."""
    outcome: Optional[RunOutcome] = None
    try:
        if running.conn.poll():
            outcome = running.conn.recv()
    except (EOFError, OSError):
        outcome = None
    running.conn.close()
    running.process.join()
    if outcome is None:
        code = running.process.exitcode
        outcome = FailedRun(
            benchmark=running.cell.benchmark,
            design_point=running.cell.design_point,
            error_type="WorkerDiedError",
            error=f"worker exited with code {code} before reporting an outcome",
        )
    return outcome


def _kill(running: _Running) -> TimedOutRun:
    """Hard watchdog: SIGKILL a worker that outlived budget + grace."""
    running.process.kill()
    running.process.join()
    running.conn.close()
    elapsed = time.monotonic() - running.started_at
    return TimedOutRun(
        benchmark=running.cell.benchmark,
        design_point=running.cell.design_point,
        budget=running.budget or 0.0,
        elapsed=elapsed,
        error="worker SIGKILLed by the pool watchdog",
        hard_kill=True,
    )


def run_campaign(
    cells: Iterable[CampaignCell],
    policy: Optional[CampaignPolicy] = None,
    ledger_path: Optional[str] = None,
    resume: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Execute a campaign of cells on the worker pool.

    Args:
        cells: The declarative grid.  Cell keys must be unique.
        policy: Pool size, watchdog budget, retry policy (default: serial
            single-job pool, no watchdog, 3 attempts).
        ledger_path: JSONL ledger location.  ``None`` runs entirely
            in-memory (used by the figure functions' ``jobs=`` path).
        resume: Replay the ledger first: cells with a terminal record are
            skipped (or re-verified under ``policy.recheck``), in-flight
            cells are re-queued with their attempt counter preserved.
            Without ``resume``, an existing non-empty ledger is an error —
            refusing to silently interleave two campaigns in one file.
        progress: Optional line sink for human-readable progress.

    Returns a :class:`CampaignReport`; raises nothing for cell failures —
    they are data (``report.outcomes``) — but propagates KeyboardInterrupt
    after killing the pool, leaving the ledger resumable.
    """
    policy = (policy or CampaignPolicy()).validate()
    cells = [c.validate() for c in cells]
    keys = [c.key() for c in cells]
    dup = {k for k in keys if keys.count(k) > 1}
    if dup:
        raise ValueError(f"duplicate campaign cell key(s): {sorted(dup)}")

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    report = CampaignReport()
    histories: Dict[str, CellHistory] = {}
    ledger: Optional[CampaignLedger] = None
    if ledger_path is not None:
        exists = os.path.exists(ledger_path) and os.path.getsize(ledger_path) > 0
        if exists and not resume:
            raise FileExistsError(
                f"ledger {ledger_path!r} already has records; use resume "
                "(or point the campaign at a fresh ledger)"
            )
        if resume and exists:
            histories = CampaignLedger.replay(ledger_path)
        ledger = CampaignLedger(ledger_path).open()

    # Seed the run queue: skip terminally-recorded cells, re-queue the rest
    # (in-flight cells keep their attempt counter so retries stay bounded
    # across crashes).
    heap: List[Tuple[float, int, CampaignCell, int]] = []
    golden: Dict[str, Optional[str]] = {}
    now = time.monotonic()
    for seq, cell in enumerate(cells):
        key = cell.key()
        hist = histories.get(key)
        if hist is not None and hist.terminal:
            if policy.recheck and hist.status == "done":
                golden[key] = hist.fingerprint
            else:
                report.skipped[key] = hist
                continue
        attempt = (hist.attempts if hist is not None else 0) + 1
        heapq.heappush(heap, (now, seq, cell, attempt))
    seq_counter = len(cells)

    if ledger is not None:
        ledger.append(
            {
                "event": "campaign-start",
                "time": time.time(),
                "resume": resume,
                "n_cells": len(cells),
                "n_skipped": len(report.skipped),
                "policy": {
                    "jobs": policy.jobs,
                    "wall_clock_budget": policy.wall_clock_budget,
                    "max_attempts": policy.max_attempts,
                    "recheck": policy.recheck,
                },
            }
        )

    running: List[_Running] = []

    def record_outcome(cell: CampaignCell, attempt: int, outcome: RunOutcome) -> None:
        nonlocal seq_counter
        key = cell.key()
        report.attempts[key] = attempt
        # Fingerprint invariant: a re-run of a recorded-done cell must
        # reproduce the golden fingerprint byte for byte.
        if (
            isinstance(outcome, RunResult)
            and golden.get(key) is not None
            and outcome.fingerprint() != golden[key]
        ):
            outcome = FailedRun(
                benchmark=cell.benchmark,
                design_point=cell.design_point,
                error_type="FingerprintMismatchError",
                error=(
                    f"recorded fingerprint {golden[key]} but re-run produced "
                    f"{outcome.fingerprint()} — determinism violated"
                ),
            )
            report.mismatches.append(key)
        verdict = classify_outcome(outcome)
        retryable = (
            verdict is FailureClass.TRANSIENT and attempt < policy.max_attempts
        )
        elapsed = time.monotonic() - start_times.pop(key, now)
        if ledger is not None:
            rec = _outcome_record(cell, attempt, outcome, not retryable, elapsed)
            if report.mismatches and report.mismatches[-1] == key:
                rec["status"] = "fingerprint-mismatch"
            ledger.append(rec)
        if retryable:
            delay = policy.backoff(key, attempt)
            report.retries += 1
            note(
                f"  retry {key} (attempt {attempt} {outcome.error_type}; "
                f"backoff {delay:.2f}s)"
            )
            heapq.heappush(
                heap, (time.monotonic() + delay, seq_counter, cell, attempt + 1)
            )
            seq_counter += 1
        else:
            report.outcomes[key] = outcome
            state = "done" if outcome.ok else f"FAILED ({outcome.error_type})"
            note(f"  {key} {state} [{elapsed:.2f}s, attempt {attempt}]")

    start_times: Dict[str, float] = {}
    try:
        while heap or running:
            now = time.monotonic()
            # Launch everything ready while there is pool capacity.
            while heap and len(running) < policy.jobs and heap[0][0] <= now:
                _, _, cell, attempt = heapq.heappop(heap)
                start_times[cell.key()] = time.monotonic()
                if ledger is not None:
                    ledger.append(
                        {
                            "event": "cell-start",
                            "cell": cell.key(),
                            "attempt": attempt,
                            "time": time.time(),
                            "spec": cell.spec(),
                        }
                    )
                running.append(_spawn(cell, policy, attempt))

            if not running:
                # Pool idle but a backoff delay is pending: sleep it off.
                if heap:
                    time.sleep(max(0.0, heap[0][0] - time.monotonic()))
                continue

            # Wait for the first of: a worker reporting, a worker dying, a
            # hard deadline, or a queued retry becoming ready.
            timeout = 0.5
            deadlines = [r.hard_deadline for r in running if r.hard_deadline]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - time.monotonic()))
            if heap:
                timeout = min(timeout, max(0.0, heap[0][0] - time.monotonic()))
            waitables = [r.conn for r in running] + [
                r.process.sentinel for r in running
            ]
            _connection_wait(waitables, timeout=timeout)

            still_running: List[_Running] = []
            for r in running:
                now = time.monotonic()
                if r.conn.poll() or not r.process.is_alive():
                    record_outcome(r.cell, r.attempt, _reap(r))
                elif r.hard_deadline is not None and now >= r.hard_deadline:
                    record_outcome(r.cell, r.attempt, _kill(r))
                else:
                    still_running.append(r)
            running = still_running
    finally:
        for r in running:
            r.process.kill()
            r.process.join()
            r.conn.close()
        if ledger is not None:
            ledger.append(
                {
                    "event": "campaign-end",
                    "time": time.time(),
                    "complete": not heap and not running,
                    "n_done": report.n_done,
                    "n_failed": report.n_failed,
                    "retries": report.retries,
                }
            )
            ledger.close()
    return report


def run_cells(
    cells: Iterable[CampaignCell],
    jobs: int = 1,
    policy: Optional[CampaignPolicy] = None,
    ledger_path: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, RunOutcome]:
    """Run cells and return ``{cell key: outcome}`` — the figure-facing API.

    ``jobs == 1`` (the default) executes serially in-process via
    :func:`execute_cell`, with no pool, no ledger, and no retry machinery —
    the exact fallback the figure functions always had.  ``jobs > 1``
    dispatches through :func:`run_campaign`.  Both paths run the same
    executor, so cycles and fingerprints are identical either way.
    """
    cells = list(cells)
    if jobs <= 1 and ledger_path is None:
        return {cell.key(): execute_cell(cell) for cell in cells}
    pool_policy = policy or CampaignPolicy()
    pool_policy.jobs = max(1, jobs)
    report = run_campaign(
        cells, pool_policy, ledger_path=ledger_path, progress=progress
    )
    return report.outcomes


# ----------------------------------------------------------------------
# Status
# ----------------------------------------------------------------------


def campaign_status(ledger_path: str) -> Dict[str, object]:
    """Summarize a ledger: counts by status, in-flight cells, fingerprints.

    Returns a plain dict (CLI-renderable and test-assertable):
    ``{"cells": N, "by_status": {...}, "in_flight": [...], "complete": bool,
    "attempts": total, "fingerprints": {key: fp}}``.
    """
    histories = CampaignLedger.replay(ledger_path)
    by_status: Dict[str, int] = {}
    in_flight: List[str] = []
    fingerprints: Dict[str, str] = {}
    attempts = 0
    for hist in histories.values():
        attempts += hist.attempts
        if hist.in_flight:
            in_flight.append(hist.key)
        if hist.terminal:
            by_status[hist.status or "?"] = by_status.get(hist.status or "?", 0) + 1
        elif not hist.in_flight:
            by_status["interrupted"] = by_status.get("interrupted", 0) + 1
        if hist.fingerprint is not None:
            fingerprints[hist.key] = hist.fingerprint
    return {
        "cells": len(histories),
        "by_status": by_status,
        "in_flight": sorted(in_flight),
        "complete": not in_flight
        and all(h.terminal for h in histories.values())
        and bool(histories),
        "attempts": attempts,
        "fingerprints": fingerprints,
    }


def render_status(status: Dict[str, object]) -> str:
    """Human-readable one-screen rendering of :func:`campaign_status`."""
    lines = [f"cells recorded : {status['cells']}"]
    for name, count in sorted(status["by_status"].items()):
        lines.append(f"  {name:<20s} {count}")
    lines.append(f"attempts       : {status['attempts']}")
    lines.append(f"in flight      : {len(status['in_flight'])}")
    for key in status["in_flight"]:
        lines.append(f"  {key} (re-queued on resume)")
    lines.append(f"complete       : {'yes' if status['complete'] else 'no'}")
    return "\n".join(lines)
