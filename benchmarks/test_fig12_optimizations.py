"""Figure 12: stream cache and queue size effects on SYNCOPTI.

Paper shape: Q64 reduces producer stalls, SC cuts consume-to-use latency,
SC+Q64 approaches HEAVYWT (paper: within 2%; our simplified model keeps a
larger residual gap, see EXPERIMENTS.md) at ~1% of its storage.
"""

from repro.harness.experiments import figure12


def test_figure12(benchmark, scale):
    result = benchmark.pedantic(figure12, args=(scale,), iterations=1, rounds=1)
    print("\n" + result.text)
    gms = result.data["geomean"]
    assert gms["SYNCOPTI_SC_Q64"] <= gms["SYNCOPTI"]      # optimizations help
    assert gms["SYNCOPTI_SC"] <= gms["SYNCOPTI"] * 1.02   # SC alone helps
    assert gms["SYNCOPTI_SC_Q64"] < 1.4                   # close to HEAVYWT
