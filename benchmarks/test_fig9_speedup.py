"""Figure 9: speedup of HEAVYWT-optimized loops over single-threaded.

Paper shape: all benchmarks speed up; geomean ~1.29x — so mechanisms with
high COMM-OP delay can erase parallelization gains entirely.
"""

from repro.harness.experiments import figure9


def test_figure9(benchmark, scale):
    result = benchmark.pedantic(figure9, args=(scale,), iterations=1, rounds=1)
    print("\n" + result.text)
    assert result.data["geomean"] > 1.05  # paper: 1.29
    assert all(s > 0.85 for s in result.data["speedups"].values())
