"""Figure 8: dynamic communication to application instruction ratios.

Paper shape: one communication per 5-20 dynamic application instructions;
wc is the extreme (three consumes per very tight iteration).
"""

from repro.harness.experiments import figure8


def test_figure8(benchmark, scale):
    result = benchmark.pedantic(figure8, args=(scale,), iterations=1, rounds=1)
    print("\n" + result.text)
    ratios = result.data["ratios"]
    for bench, r in ratios.items():
        assert 0.03 <= r["producer"] <= 0.8, bench
        assert 0.03 <= r["consumer"] <= 0.8, bench
    assert ratios["wc"]["producer"] == max(r["producer"] for r in ratios.values())
