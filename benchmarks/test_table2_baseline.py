"""Table 2: baseline simulator configuration."""

from repro.harness.experiments import table2


def test_table2(benchmark):
    result = benchmark(table2)
    print("\n" + result.text)
    assert "Core" in result.data["parameters"]
