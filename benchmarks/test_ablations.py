"""Ablation benches for the design choices DESIGN.md calls out.

Not a paper exhibit: isolates the contribution of individual SYNCOPTI /
model ingredients so downstream users can see what each mechanism ingredient
buys (write-forwarding, the stream cache, queue depth, OzQ capacity).
"""

import dataclasses

from repro.core.design_points import get_design_point, with_queue_depth
from repro.harness.runner import run_benchmark
from repro.sim.stats import geomean

BENCHES = ("wc", "adpcmdec", "fir")
TRIPS = {"wc": 400, "adpcmdec": 300, "fir": 300}


def _gm(point, config_of=None):
    vals = []
    for b in BENCHES:
        cfg = None if config_of is None else config_of()
        vals.append(run_benchmark(b, point, TRIPS[b], config=cfg).cycles)
    return geomean(vals)


def test_queue_depth_ablation(benchmark):
    """Deeper queues monotonically help (more decoupling slack)."""

    def sweep():
        out = {}
        for depth in (8, 16, 32, 64):
            point = get_design_point("HEAVYWT")
            cfg = with_queue_depth(point.build_config(), depth)
            out[depth] = geomean(
                run_benchmark(b, "HEAVYWT", TRIPS[b], config=cfg).cycles
                for b in BENCHES
            )
        return out

    out = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nHEAVYWT geomean cycles by queue depth:", {k: round(v) for k, v in out.items()})
    assert out[8] >= out[32] * 0.99  # shallow queues never faster

def test_stream_cache_size_ablation(benchmark):
    """A tiny SC loses hits; the 1 KB default captures nearly all of them."""

    def sweep():
        out = {}
        for size in (64, 256, 1024):
            point = get_design_point("SYNCOPTI_SC")
            cfg = point.build_config()
            cfg.stream_cache = dataclasses.replace(cfg.stream_cache, size_bytes=size)
            out[size] = geomean(
                run_benchmark(b, "SYNCOPTI_SC", TRIPS[b], config=cfg.validate()).cycles
                for b in BENCHES
            )
        return out

    out = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nSYNCOPTI_SC geomean cycles by SC size:", {k: round(v) for k, v in out.items()})
    assert out[1024] <= out[64] * 1.02


def test_ozq_depth_ablation(benchmark):
    """Fewer outstanding transactions throttles the memory-backed designs."""

    def sweep():
        out = {}
        for depth in (4, 16):
            point = get_design_point("SYNCOPTI")
            cfg = point.build_config().copy(ozq_depth=depth)
            out[depth] = geomean(
                run_benchmark(b, "SYNCOPTI", TRIPS[b], config=cfg.validate()).cycles
                for b in BENCHES
            )
        return out

    out = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\nSYNCOPTI geomean cycles by OzQ depth:", {k: round(v) for k, v in out.items()})
    assert out[4] >= out[16] * 0.99
