"""Figure 10: effect of a 4-CPU-cycle bus on the design points.

Paper shape: tight loops (adpcmdec, wc, epicdec) hurt most; the BUS
component grows even for the memory-intensive mcf/equake (line transfers
take 32 CPU cycles, backing up arbitration).
"""

from repro.harness.experiments import figure7, figure10


def test_figure10(benchmark, scale):
    slow = benchmark.pedantic(figure10, args=(scale,), iterations=1, rounds=1)
    print("\n" + slow.text)
    base = figure7(scale)
    # The EXISTING/HEAVYWT gap does not shrink with a slower bus.
    assert slow.data["geomean"]["EXISTING"] >= base.data["geomean"]["EXISTING"] * 0.9
    # BUS components grow for the memory-backed design points.
    slow_bus = sum(
        bars["BUS"] for key, bars in slow.data["bars"].items() if "EXISTING" in key
    )
    base_bus = sum(
        bars["BUS"] for key, bars in base.data["bars"].items() if "EXISTING" in key
    )
    assert slow_bus > base_bus
