"""Figure 11: a 128-byte-wide bus at 4-cycle latency.

Paper shape: matching the bus width to the line size removes the
arbitration backlog of Figure 10 — BUS components shrink substantially.
"""

from repro.harness.experiments import figure10, figure11


def test_figure11(benchmark, scale):
    wide = benchmark.pedantic(figure11, args=(scale,), iterations=1, rounds=1)
    print("\n" + wide.text)
    narrow = figure10(scale)
    wide_bus = sum(bars["BUS"] for bars in wide.data["bars"].values())
    narrow_bus = sum(bars["BUS"] for bars in narrow.data["bars"].values())
    assert wide_bus < narrow_bus  # bandwidth relieves contention
