"""Figure 6: effect of transit delay on streaming codes (HEAVYWT).

Paper shape: 1-cycle vs 10-cycle interconnect bars nearly equal everywhere
except bzip2 (outer-loop decoupling); the 64-entry queue recovers residual
slowdowns and helps benchmarks where pipelined transit acts as storage.
"""

from repro.harness.experiments import figure6


def test_figure6(benchmark, scale):
    result = benchmark.pedantic(figure6, args=(scale,), iterations=1, rounds=1)
    print("\n" + result.text)
    norm = result.data["normalized"]
    # Transit delay is tolerated: no benchmark other than bzip2 slows > 10%.
    for bench, series in norm.items():
        if bench != "bzip2":
            assert series["10c/32q"] < 1.12, bench
    # bzip2 is the largest 10-cycle slowdown in the suite.
    worst = max(norm, key=lambda b: norm[b]["10c/32q"])
    assert worst == "bzip2"
    # The 64-entry queue recovers bzip2's slowdown.
    assert norm["bzip2"]["10c/64q"] <= norm["bzip2"]["10c/32q"]
