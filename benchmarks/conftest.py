"""Benchmark-harness configuration.

Each ``test_*`` file regenerates one exhibit of the paper under
pytest-benchmark, printing the regenerated rows/series so a run of
``pytest benchmarks/ --benchmark-only`` reproduces the full evaluation.
``--repro-scale`` shrinks iteration counts for quick runs.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        type=float,
        default=1.0,
        help="Iteration-count multiplier for experiment runs (default 1.0)",
    )


@pytest.fixture(scope="session")
def scale(request):
    return request.config.getoption("--repro-scale")
