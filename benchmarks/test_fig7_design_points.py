"""Figure 7: normalized execution times for each design point.

Paper shape: HEAVYWT < SYNCOPTI < {EXISTING, MEMOPTI}; SYNCOPTI ~1.6x
faster than software queues and ~31% behind HEAVYWT on average.
"""

from repro.harness.experiments import figure7


def test_figure7(benchmark, scale):
    result = benchmark.pedantic(figure7, args=(scale,), iterations=1, rounds=1)
    print("\n" + result.text)
    gms = result.data["geomean"]
    assert gms["HEAVYWT"] == 1.0
    assert 1.1 < gms["SYNCOPTI"] < 2.2        # paper: 1.31
    assert gms["EXISTING"] > gms["SYNCOPTI"]  # paper: 1.6x apart
    assert gms["EXISTING"] / gms["SYNCOPTI"] > 1.3
    assert gms["MEMOPTI"] >= gms["EXISTING"] * 0.95  # MEMOPTI no better
