"""Table 1: benchmark loop information."""

from repro.harness.experiments import table1


def test_table1(benchmark):
    result = benchmark(table1)
    print("\n" + result.text)
    assert len(result.data["rows"]) == 9
