"""Unit tests for the OzQ outstanding-transaction queue."""

import pytest

from repro.mem.ozq import OzQ


def make_ozq(depth=4, ports=2, interval=4):
    return OzQ(depth, ports, interval)


class TestEntries:
    def test_allocation_within_depth_is_immediate(self):
        q = make_ozq(depth=4)
        for _ in range(4):
            assert q.allocate(0.0, hold=100.0) == 0.0
        assert q.backpressure_events == 0

    def test_backpressure_when_full(self):
        q = make_ozq(depth=2)
        q.allocate(0.0, hold=50.0)
        q.allocate(0.0, hold=50.0)
        grant = q.allocate(0.0, hold=10.0)
        assert grant == 50.0
        assert q.backpressure_events == 1
        assert q.backpressure_cycles == pytest.approx(50.0)

    def test_two_phase_entry(self):
        q = make_ozq(depth=1)
        g = q.begin_entry(0.0)
        q.end_entry(g, 30.0)
        assert q.begin_entry(0.0) == 30.0
        assert q.backpressure_events == 1

    def test_entry_wait_probe(self):
        q = make_ozq(depth=1)
        q.allocate(0.0, hold=20.0)
        assert q.entry_wait(5.0) == pytest.approx(15.0)
        assert q.entry_wait(25.0) == 0.0


class TestRecirculation:
    def test_attempt_count(self):
        q = make_ozq(interval=4)
        assert q.recirculate(0.0, 16.0) == 4
        assert q.recirculations == 4

    def test_empty_window(self):
        q = make_ozq()
        assert q.recirculate(10.0, 10.0) == 0
        assert q.recirculate(10.0, 5.0) == 0

    def test_recirculation_occupies_ports(self):
        q = make_ozq(ports=1, interval=4)
        q.recirculate(0.0, 40.0)
        # 10 attempts x 1 busy cycle on the single port.
        assert q.ports.busy_cycles == pytest.approx(10.0)

    def test_port_contention_with_demand_traffic(self):
        q = make_ozq(ports=1, interval=2)
        q.recirculate(0.0, 10.0)  # books the port at 0,2,4,6,8
        grant = q.acquire_port(0.0)
        assert grant >= 1.0  # pushed behind a recirculation slot


class TestValidation:
    def test_bad_depth(self):
        with pytest.raises(ValueError):
            OzQ(0, 2, 4)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            OzQ(4, 2, 0)
