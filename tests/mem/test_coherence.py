"""Unit + property tests for the MESI protocol tables."""


import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import LineState
from repro.mem.coherence import (
    BusEvent,
    LocalEvent,
    local_transition,
    snoop_transition,
    writeback_required,
)

STATES = list(LineState)
VALID = [s for s in STATES if s is not LineState.INVALID]


class TestLocalTransitions:
    def test_read_miss_fetches_exclusive(self):
        assert local_transition(LineState.INVALID, LocalEvent.READ) == (
            LineState.EXCLUSIVE,
            BusEvent.BUS_RD,
        )

    def test_write_miss_rfo(self):
        assert local_transition(LineState.INVALID, LocalEvent.WRITE) == (
            LineState.MODIFIED,
            BusEvent.BUS_RDX,
        )

    def test_shared_write_upgrades(self):
        state, event = local_transition(LineState.SHARED, LocalEvent.WRITE)
        assert state is LineState.MODIFIED
        assert event is BusEvent.BUS_UPGR

    def test_exclusive_write_silent(self):
        state, event = local_transition(LineState.EXCLUSIVE, LocalEvent.WRITE)
        assert state is LineState.MODIFIED
        assert event is None

    def test_hits_are_silent(self):
        for s in (LineState.SHARED, LineState.EXCLUSIVE, LineState.MODIFIED):
            _, event = local_transition(s, LocalEvent.READ)
            assert event is None

    def test_evict_goes_invalid(self):
        for s in VALID:
            state, _ = local_transition(s, LocalEvent.EVICT)
            assert state is LineState.INVALID

    def test_invalid_evict_undefined(self):
        with pytest.raises(KeyError):
            local_transition(LineState.INVALID, LocalEvent.EVICT)


class TestSnoopTransitions:
    def test_modified_supplies_data_on_busrd(self):
        state, supplies = snoop_transition(LineState.MODIFIED, BusEvent.BUS_RD)
        assert state is LineState.SHARED
        assert supplies

    def test_modified_invalidated_on_rdx(self):
        state, supplies = snoop_transition(LineState.MODIFIED, BusEvent.BUS_RDX)
        assert state is LineState.INVALID
        assert supplies

    def test_shared_dies_on_upgrade(self):
        state, supplies = snoop_transition(LineState.SHARED, BusEvent.BUS_UPGR)
        assert state is LineState.INVALID
        assert not supplies

    def test_invalid_ignores_everything(self):
        for event in (BusEvent.BUS_RD, BusEvent.BUS_RDX, BusEvent.BUS_UPGR):
            state, supplies = snoop_transition(LineState.INVALID, event)
            assert state is LineState.INVALID
            assert not supplies


class TestProtocolInvariants:
    def test_writeback_only_from_modified_evict(self):
        for s in VALID:
            expected = s is LineState.MODIFIED
            assert writeback_required(s, LocalEvent.EVICT) == expected

    def test_no_snoop_leaves_modified(self):
        """After any snooped bus event, at most one M copy can exist."""
        for s in STATES:
            for event in (BusEvent.BUS_RD, BusEvent.BUS_RDX, BusEvent.BUS_UPGR):
                try:
                    next_state, _ = snoop_transition(s, event)
                except KeyError:
                    continue
                if event in (BusEvent.BUS_RDX, BusEvent.BUS_UPGR):
                    assert next_state is LineState.INVALID

    def test_single_writer_invariant(self):
        """A local WRITE that keeps/creates M always invalidates remotes."""
        for s in STATES:
            next_state, bus_event = local_transition(s, LocalEvent.WRITE)
            assert next_state is LineState.MODIFIED
            if s in (LineState.INVALID, LineState.SHARED):
                # Other caches might hold the line: a bus event is required.
                assert bus_event is not None

    @given(
        st.lists(
            st.sampled_from(
                [
                    ("local", LocalEvent.READ),
                    ("local", LocalEvent.WRITE),
                    ("snoop", BusEvent.BUS_RD),
                    ("snoop", BusEvent.BUS_RDX),
                    ("snoop", BusEvent.BUS_UPGR),
                ]
            ),
            max_size=30,
        )
    )
    def test_transitions_closed_over_event_sequences(self, events):
        """Any event sequence keeps the state machine inside MESI."""
        state = LineState.INVALID
        for kind, event in events:
            if kind == "local":
                state, _ = local_transition(state, event)
            else:
                state, _ = snoop_transition(state, event)
            assert state in STATES

    def test_two_cache_simulation_never_double_modified(self):
        """Drive two caches with interleaved reads/writes to one line.

        Models the bus's *shared wire*: a read miss installs SHARED when the
        other cache holds a valid copy, EXCLUSIVE otherwise (the choice the
        pure transition table delegates to the controller).
        """
        states = [LineState.INVALID, LineState.INVALID]
        for step in range(64):
            actor = step % 2
            other = 1 - actor
            event = LocalEvent.WRITE if step % 3 else LocalEvent.READ
            next_state, bus_event = local_transition(states[actor], event)
            if bus_event is not None:
                states[other], _ = snoop_transition(states[other], bus_event)
            if (
                event is LocalEvent.READ
                and next_state is LineState.EXCLUSIVE
                and states[other] is not LineState.INVALID
            ):
                next_state = LineState.SHARED  # shared wire asserted
            states[actor] = next_state
            assert (
                sum(1 for s in states if s is LineState.MODIFIED) <= 1
            ), f"double-M after step {step}"
            if states[actor] is LineState.MODIFIED:
                assert states[other] is LineState.INVALID
