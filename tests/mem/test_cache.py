"""Unit + property tests for the set-associative cache arrays."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import CacheArray, LineState
from repro.sim.config import CacheConfig


def small_cache(n_sets=4, assoc=2, line=64):
    return CacheArray(
        CacheConfig(size_bytes=n_sets * assoc * line, assoc=assoc, line_bytes=line, latency=1)
    )


class TestBasics:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(5) is None
        c.install(5, LineState.EXCLUSIVE)
        assert c.lookup(5) is not None
        assert c.hits == 1 and c.misses == 1

    def test_line_addr(self):
        c = small_cache(line=64)
        assert c.line_addr(0) == 0
        assert c.line_addr(63) == 0
        assert c.line_addr(64) == 1

    def test_install_refreshes_existing(self):
        c = small_cache()
        c.install(5, LineState.SHARED)
        victim = c.install(5, LineState.MODIFIED)
        assert victim is None
        assert c.probe(5).state is LineState.MODIFIED

    def test_invalid_install_rejected(self):
        with pytest.raises(ValueError):
            small_cache().install(1, LineState.INVALID)

    def test_invalidate_returns_line(self):
        c = small_cache()
        c.install(5, LineState.MODIFIED)
        line = c.invalidate(5)
        assert line is not None and line.dirty
        assert c.probe(5) is None

    def test_invalidate_absent_is_none(self):
        assert small_cache().invalidate(9) is None

    def test_downgrade(self):
        c = small_cache()
        c.install(5, LineState.MODIFIED)
        c.downgrade(5)
        assert c.probe(5).state is LineState.SHARED

    def test_set_state_missing_raises(self):
        with pytest.raises(KeyError):
            small_cache().set_state(1, LineState.SHARED)

    def test_ready_at_monotone_on_refresh(self):
        c = small_cache()
        c.install(5, LineState.SHARED, ready_at=10.0)
        c.install(5, LineState.SHARED, ready_at=3.0)
        assert c.probe(5).ready_at == 10.0

    def test_streaming_flag_sticky(self):
        c = small_cache()
        c.install(5, LineState.SHARED, streaming=True)
        c.install(5, LineState.SHARED, streaming=False)
        assert c.probe(5).streaming


class TestReplacement:
    def test_lru_eviction(self):
        c = small_cache(n_sets=1, assoc=2)
        c.install(0, LineState.SHARED)
        c.install(1, LineState.SHARED)
        c.lookup(0)  # touch 0: 1 becomes LRU
        victim = c.install(2, LineState.SHARED)
        assert victim.line_addr == 1

    def test_dirty_victim_counts_writeback(self):
        c = small_cache(n_sets=1, assoc=1)
        c.install(0, LineState.MODIFIED)
        victim = c.install(1, LineState.SHARED)
        assert victim.dirty
        assert c.writebacks == 1

    def test_set_isolation(self):
        c = small_cache(n_sets=4, assoc=1)
        # Lines 0..3 map to distinct sets: no evictions.
        for line in range(4):
            assert c.install(line, LineState.SHARED) is None
        assert c.occupancy() == 4

    def test_probe_does_not_touch_lru(self):
        c = small_cache(n_sets=1, assoc=2)
        c.install(0, LineState.SHARED)
        c.install(1, LineState.SHARED)
        c.probe(0)  # must NOT move 0 to MRU
        victim = c.install(2, LineState.SHARED)
        assert victim.line_addr == 0

    def test_capacity_lines(self):
        assert small_cache(n_sets=4, assoc=2).capacity_lines == 8

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, lines):
        c = small_cache(n_sets=4, assoc=2)
        for line in lines:
            c.lookup(line) or c.install(line, LineState.SHARED)
            assert c.occupancy() <= c.capacity_lines

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
    def test_installed_line_immediately_present(self, lines):
        c = small_cache(n_sets=4, assoc=2)
        for line in lines:
            c.install(line, LineState.EXCLUSIVE)
            assert c.probe(line) is not None

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=50))
    def test_hit_rate_bounds(self, lines):
        c = small_cache(n_sets=2, assoc=4)  # all 8 lines fit
        for line in lines:
            if c.lookup(line) is None:
                c.install(line, LineState.SHARED)
        assert 0.0 <= c.hit_rate() <= 1.0
        # With everything fitting, misses == distinct lines.
        assert c.misses == len(set(lines))
