"""Unit tests for the DRAM model."""

import pytest

from repro.mem.memory import MainMemory


class TestMainMemory:
    def test_fixed_latency(self):
        dram = MainMemory(latency=141)
        assert dram.access(0, 0.0) == 141.0

    def test_bank_conflict_queues(self):
        dram = MainMemory(latency=100, n_banks=2, bank_busy=20)
        dram.access(0, 0.0)
        # Same bank (line 2 % 2 == 0): waits out the bank busy time.
        assert dram.access(2, 0.0) == 120.0

    def test_different_banks_parallel(self):
        dram = MainMemory(latency=100, n_banks=2, bank_busy=20)
        dram.access(0, 0.0)
        assert dram.access(1, 0.0) == 100.0

    def test_queueing_delay_probe(self):
        dram = MainMemory(latency=100, n_banks=2, bank_busy=20)
        dram.access(0, 0.0)
        assert dram.queueing_delay(0, 0.0) == pytest.approx(20.0)
        assert dram.queueing_delay(1, 0.0) == 0.0

    def test_access_counter(self):
        dram = MainMemory(latency=10)
        dram.access(0, 0.0)
        dram.access(1, 0.0)
        assert dram.accesses == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MainMemory(latency=0)
        with pytest.raises(ValueError):
            MainMemory(latency=10, n_banks=0)
