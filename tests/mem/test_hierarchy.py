"""Unit tests for the full memory hierarchy (coherence + timing)."""

import pytest

from repro.mem.cache import LineState
from repro.mem.hierarchy import MemorySystem


@pytest.fixture
def mem(config):
    return MemorySystem(config)


class TestLoadPath:
    def test_cold_load_goes_to_memory(self, mem, config):
        r = mem.load(0, 0x1000, 0.0)
        assert r.level == "MEM"
        assert r.complete > config.main_memory_latency

    def test_l1_hit_after_fill(self, mem):
        mem.load(0, 0x1000, 0.0)
        r = mem.load(0, 0x1000, 1000.0)
        assert r.level == "L1"
        assert r.complete == 1001.0

    def test_l2_hit_after_l1_invalidation(self, mem):
        mem.load(0, 0x1000, 0.0)
        mem._invalidate_l1(0, mem.l2_line(0x1000))
        r = mem.load(0, 0x1000, 1000.0)
        assert r.level == "L2"

    def test_l3_hit_after_remote_fetch(self, mem):
        mem.load(0, 0x1000, 0.0)  # installs in L3 too
        # Evict from core 0's L2 (and the inclusive L1) so the next fetch
        # comes from the shared L3.
        mem.l2[0].invalidate(mem.l2_line(0x1000))
        mem._invalidate_l1(0, mem.l2_line(0x1000))
        r = mem.load(0, 0x1000, 1000.0)
        assert r.level == "L3"
        assert r.breakdown.l3 > 0

    def test_cache_to_cache_on_remote_dirty(self, mem):
        mem.store(0, 0x1000, 0.0)
        r = mem.load(1, 0x1000, 1000.0)
        assert r.level == "remote-L2"
        assert mem.cache_to_cache_transfers == 1
        # Supplier downgraded to SHARED.
        assert mem.l2[0].probe(mem.l2_line(0x1000)).state is LineState.SHARED

    def test_breakdown_totals_cover_components(self, mem):
        r = mem.load(0, 0x2000, 0.0)
        bd = r.breakdown
        assert bd.total >= bd.l2 + bd.bus + bd.l3 + bd.mem - 3  # rounding

    def test_streaming_load_skips_l1(self, mem):
        r = mem.stream_load(0, 0x3000, 0.0)
        assert r.level in ("MEM", "L3")
        l1_line = mem.l1d[0].line_addr(0x3000)
        assert mem.l1d[0].probe(l1_line) is None


class TestStorePath:
    def test_cold_store_rfo(self, mem):
        r = mem.store(0, 0x1000, 0.0)
        assert mem.l2[0].probe(mem.l2_line(0x1000)).state is LineState.MODIFIED

    def test_store_hit_modified_is_fast(self, mem, config):
        mem.store(0, 0x1000, 0.0)
        r = mem.store(0, 0x1008, 1000.0)
        assert r.level == "L2"
        assert r.complete - 1000.0 <= config.l2.latency + 3

    def test_shared_store_upgrades(self, mem):
        mem.load(0, 0x1000, 0.0)
        mem.load(1, 0x1000, 500.0)
        upgrades_before = mem.upgrades
        # core 0 holds SHARED (downgraded by core 1's read of its E line? no:
        # E->S only when the owner supplies; cold load installed E at core 0,
        # then core 1's read downgraded it).
        r = mem.store(0, 0x1000, 1000.0)
        assert mem.upgrades == upgrades_before + 1
        assert mem.l2[1].probe(mem.l2_line(0x1000)) is None  # invalidated

    def test_rfo_invalidates_remote_modified(self, mem):
        mem.store(0, 0x1000, 0.0)
        mem.store(1, 0x1000, 1000.0)
        assert mem.l2[0].probe(mem.l2_line(0x1000)) is None
        assert mem.l2[1].probe(mem.l2_line(0x1000)).state is LineState.MODIFIED

    def test_store_ordering_before_visibility(self, mem):
        r = mem.store(0, 0x9000, 0.0)
        assert r.ordered <= r.complete

    def test_ping_pong_counts(self, mem):
        """Alternating writers: every store RFOs the other core's copy."""
        for i in range(6):
            mem.store(i % 2, 0x1000, float(i * 1000))
        assert mem.cache_to_cache_transfers >= 5


class TestWriteForwarding:
    def test_forward_installs_at_destination(self, mem):
        mem.store(0, 0x8000_0000, 0.0)
        arrival = mem.forward_line(0, 1, 0x8000_0000, 500.0, release_src=False)
        line = mem.l2_line(0x8000_0000)
        dst = mem.l2[1].probe(line)
        assert dst is not None
        assert dst.ready_at == arrival
        assert dst.streaming

    def test_forward_never_fills_l1(self, mem):
        mem.store(0, 0x8000_0000, 0.0)
        mem.forward_line(0, 1, 0x8000_0000, 500.0)
        l1_line = mem.l1d[1].line_addr(0x8000_0000)
        assert mem.l1d[1].probe(l1_line) is None

    def test_release_src_invalidates_producer(self, mem):
        mem.store(0, 0x8000_0000, 0.0)
        mem.forward_line(0, 1, 0x8000_0000, 500.0, release_src=True)
        assert mem.l2[0].probe(mem.l2_line(0x8000_0000)) is None

    def test_memopti_keeps_shared_copy(self, mem):
        mem.store(0, 0x8000_0000, 0.0)
        mem.forward_line(0, 1, 0x8000_0000, 500.0, release_src=False)
        src = mem.l2[0].probe(mem.l2_line(0x8000_0000))
        assert src is not None and src.state is LineState.SHARED

    def test_consumer_load_waits_for_inflight_forward(self, mem, config):
        mem.store(0, 0x8000_0000, 0.0)
        arrival = mem.forward_line(0, 1, 0x8000_0000, 500.0, release_src=True)
        r = mem.stream_load(1, 0x8000_0000, 400.0)
        assert r.complete >= arrival

    def test_forward_contention_recirculates(self, mem):
        """Port-contended forwards churn the producer's L2 ports."""
        # Saturate the bus so the forward has to wait.
        for i in range(6):
            mem.bus.transfer(500.0, 128)
        before = mem.ozq[0].recirculations
        mem.store(0, 0x8000_0000, 0.0)
        mem.forward_line(0, 1, 0x8000_0000, 500.0, contend_ports=True)
        assert mem.ozq[0].recirculations >= before

    def test_observe_update_installs_shared(self, mem):
        mem.store(0, 0x8000_0000, 0.0)
        done = mem.observe_update(1, 0x8000_0000, 100.0)
        line = mem.l2[1].probe(mem.l2_line(0x8000_0000))
        assert line is not None and line.state is LineState.SHARED
        assert line.ready_at == done


class TestEvictionHooks:
    def test_streaming_eviction_callback(self, config):
        mem = MemorySystem(config)
        events = []
        mem.on_streaming_eviction = lambda core, line, at: events.append((core, line))
        line_bytes = config.l2.line_bytes
        base = 0x8000_0000
        mem.store(0, base, 0.0, streaming=True)
        # Force eviction by filling the set: same set index needs
        # n_sets * line_bytes stride.
        stride = config.l2.n_sets * line_bytes
        for i in range(1, config.l2.assoc + 1):
            mem.load(0, base + i * stride, float(i * 2000))
        assert events, "streaming line eviction should fire the hook"

    def test_control_ack_returns_done_time(self, mem):
        done = mem.control_ack(0, 10.0)
        assert done > 10.0
