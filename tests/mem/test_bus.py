"""Unit + property tests for the split-transaction shared bus."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.bus import SharedBus
from repro.sim.config import BusConfig


def make_bus(width=16, latency=1, stages=3, pipelined=True):
    return SharedBus(
        BusConfig(
            width_bytes=width, cycle_latency=latency, stages=stages, pipelined=pipelined
        )
    )


class TestTiming:
    def test_line_transfer_beats(self):
        bus = make_bus()
        tx = bus.transfer(0.0, 128)
        # 3 stages + 8 beats - 1 = 10 cycles end-to-end.
        assert tx.done_time == 10.0

    def test_control_message_latency(self):
        bus = make_bus()
        tx = bus.control_message(0.0)
        assert tx.done_time == 3.0  # stages only

    def test_pipelined_back_to_back(self):
        bus = make_bus()
        t1 = bus.transfer(0.0, 128)
        t2 = bus.transfer(0.0, 128)
        # Pipelined: second transaction starts after the 8 injection beats.
        assert t2.grant_time == 8.0

    def test_non_pipelined_holds_full_duration(self):
        bus = make_bus(pipelined=False)
        bus.transfer(0.0, 128)
        t2 = bus.transfer(0.0, 128)
        assert t2.grant_time == 10.0

    def test_bus_cycle_latency_multiplies(self):
        bus = make_bus(latency=4)
        tx = bus.transfer(0.0, 128)
        # (3 + 8 - 1) bus cycles x 4 CPU cycles = 40.
        assert tx.done_time == 40.0

    def test_wide_bus_single_beat(self):
        bus = make_bus(width=128)
        tx = bus.transfer(0.0, 128)
        assert tx.done_time == 3.0

    def test_wait_accounts_queueing(self):
        bus = make_bus()
        bus.transfer(0.0, 128)
        tx = bus.transfer(0.0, 128)
        assert tx.wait == pytest.approx(8.0)

    def test_transaction_total(self):
        bus = make_bus()
        tx = bus.transfer(5.0, 16)
        assert tx.total == tx.done_time - 5.0


class TestGapFilling:
    """A split-transaction bus interleaves traffic into idle windows."""

    def test_future_booking_does_not_block_earlier_traffic(self):
        bus = make_bus()
        # A data phase booked far in the future (waiting on DRAM)...
        late = bus.transfer(500.0, 128)
        # ...must not delay a request at time 0.
        early = bus.transfer(0.0, 8)
        assert early.grant_time == 0.0
        assert late.grant_time == 500.0

    def test_gap_between_bookings_used(self):
        bus = make_bus()
        bus.transfer(0.0, 128)  # busy [0, 8)
        bus.transfer(100.0, 128)  # busy [100, 108)
        mid = bus.transfer(50.0, 128)
        assert mid.grant_time == 50.0

    def test_too_small_gap_skipped(self):
        bus = make_bus()
        bus.transfer(0.0, 128)  # busy [0, 8)
        bus.transfer(10.0, 128)  # busy [10, 18)
        # A line transfer (8 beats) does not fit in the [8, 10) gap.
        tx = bus.transfer(8.0, 128)
        assert tx.grant_time == 18.0

    def test_control_fits_in_small_gap(self):
        bus = make_bus()
        bus.transfer(0.0, 128)  # busy [0, 8)
        bus.transfer(10.0, 128)  # busy [10, 18)
        tx = bus.control_message(8.0)  # 1 beat fits [8, 10)
        assert tx.grant_time == 8.0

    @given(
        st.lists(
            st.tuples(st.floats(0, 1000), st.sampled_from([8, 16, 64, 128])),
            min_size=1,
            max_size=60,
        )
    )
    def test_no_overlapping_grants(self, requests):
        bus = make_bus()
        intervals = []
        for at, payload in requests:
            tx = bus.transfer(at, payload)
            hold = bus.occupancy_cycles(payload)
            assert tx.grant_time >= at
            intervals.append((tx.grant_time, tx.grant_time + hold))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9


class TestAccounting:
    def test_transaction_counter(self):
        bus = make_bus()
        bus.transfer(0.0, 16)
        bus.control_message(0.0)
        assert bus.transactions == 2

    def test_per_requester_grants(self):
        bus = make_bus()
        bus.transfer(0.0, 16, requester=0)
        bus.transfer(0.0, 16, requester=1)
        bus.transfer(0.0, 16, requester=1)
        assert bus.grants_by_requester == {0: 1, 1: 2}

    def test_utilization(self):
        bus = make_bus()
        bus.transfer(0.0, 128)  # 8 busy cycles
        assert bus.utilization(16.0) == pytest.approx(0.5)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            make_bus().transfer(0.0, -1)
