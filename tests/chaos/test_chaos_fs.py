"""Unit tests for the chaos shim itself (``repro.chaos.fs``).

The shim is test infrastructure, which is exactly why it gets its own
tests: a fault injector that lies about its faults proves nothing about
the code under it.  Covered here: rule-based and probabilistic error
injection, seed determinism, enumerated crash points (plain and torn),
the two loss models (kill vs power), clock skew, and short reads.
"""

import errno
import os
import time

import pytest

from repro.chaos import ChaosFS, ChaosPlan, FaultRule, SimulatedCrash
from repro.store.io import write_atomic


def _write_file(chaos: ChaosFS, path: str, data: bytes) -> None:
    """open/write/fsync/close through the facade (no rename)."""
    fd = chaos.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC)
    try:
        chaos.write(fd, data)
        chaos.fsync(fd)
    finally:
        chaos.close(fd)


class TestFaultRules:
    def test_rule_fires_as_a_burst(self, tmp_path):
        chaos = ChaosFS(
            ChaosPlan(
                rules=[
                    FaultRule(op="write", error=errno.ENOSPC, after=1, count=2)
                ]
            )
        )
        path = str(tmp_path / "f")
        fd = chaos.open(path, os.O_WRONLY | os.O_CREAT)
        outcomes = []
        for _ in range(4):
            try:
                chaos.write(fd, b"x")
                outcomes.append("ok")
            except OSError as exc:
                outcomes.append(exc.errno)
        chaos.close(fd)
        assert outcomes == ["ok", errno.ENOSPC, errno.ENOSPC, "ok"]

    def test_rule_matches_path_substring(self, tmp_path):
        chaos = ChaosFS(
            ChaosPlan(rules=[FaultRule(op="unlink", path_substr=".lease")])
        )
        victim = tmp_path / "w.lease"
        bystander = tmp_path / "w.entry"
        victim.write_bytes(b"")
        bystander.write_bytes(b"")
        chaos.unlink(str(bystander))  # no match: passes through
        with pytest.raises(OSError):
            chaos.unlink(str(victim))

    def test_probabilistic_errors_are_seed_deterministic(self, tmp_path):
        def schedule(seed):
            chaos = ChaosFS(ChaosPlan(seed=seed, p_io_error=0.3))
            path = str(tmp_path / f"s{seed}")
            out = []
            for i in range(30):
                try:
                    _write_file(chaos, path, b"payload")
                    out.append("ok")
                except OSError:
                    out.append("err")
            return out, dict(chaos.injected)

        first = schedule(7)
        tmp_path.joinpath("s7").unlink(missing_ok=True)
        second = schedule(7)
        assert first == second
        assert first != schedule(8)


class TestCrashPoints:
    def test_crash_at_counts_mutating_calls(self, tmp_path):
        chaos = ChaosFS(ChaosPlan(crash_at=2))
        with pytest.raises(SimulatedCrash) as exc_info:
            write_atomic(str(tmp_path / "f"), b"hello", fs=chaos)
        # write_atomic's mutation order: open(0), write(1), fsync(2).
        assert exc_info.value.index == 2
        assert exc_info.value.op == "fsync"
        chaos.close_leaked()

    def test_simulated_crash_is_not_an_exception(self):
        # Production retry loops catch Exception; a simulated SIGKILL must
        # sail through them the way a real one would.
        assert issubclass(SimulatedCrash, BaseException)
        assert not issubclass(SimulatedCrash, Exception)

    def test_torn_crash_persists_a_strict_prefix(self, tmp_path):
        data = b"0123456789abcdef"
        chaos = ChaosFS(ChaosPlan(crash_at=1, crash_torn=True))
        path = str(tmp_path / "f")
        with pytest.raises(SimulatedCrash) as exc_info:
            write_atomic(path, data, fs=chaos)
        assert exc_info.value.torn
        chaos.close_leaked()
        # The tear lands on the writer-private tmp file, pre-rename.
        (torn,) = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        content = (tmp_path / torn).read_bytes()
        assert len(content) < len(data)
        assert data.startswith(content)

    def test_close_leaked_reclaims_descriptors(self, tmp_path):
        # A crash between open and close (no finally in the victim code)
        # abandons the descriptor; close_leaked reclaims it.
        chaos = ChaosFS(ChaosPlan())
        fd = chaos.open(str(tmp_path / "f"), os.O_WRONLY | os.O_CREAT)
        assert chaos._fd_path
        chaos.close_leaked()
        assert not chaos._fd_path
        with pytest.raises(OSError):
            os.fstat(fd)

    def test_mutation_sites_enumerates_only_mutations(self, tmp_path):
        chaos = ChaosFS(ChaosPlan())
        path = str(tmp_path / "f")
        write_atomic(path, b"x", fs=chaos)
        chaos.read_bytes(path)  # non-mutating: not a crash point
        sites = chaos.mutation_sites()
        assert [s.op for s in sites] == [
            "open", "write", "fsync", "close", "replace", "fsync_dir",
        ]
        assert [s.index for s in sites] == list(range(6))


class TestPowerLossModel:
    def test_synced_write_atomic_survives(self, tmp_path):
        path = str(tmp_path / "f")
        chaos = ChaosFS(ChaosPlan())
        write_atomic(path, b"hello", fs=chaos, dir_sync=True)
        chaos.apply_crash_loss()
        assert open(path, "rb").read() == b"hello"

    def test_unsynced_rename_reverts(self, tmp_path):
        path = str(tmp_path / "f")
        chaos = ChaosFS(ChaosPlan())
        write_atomic(path, b"hello", fs=chaos, dir_sync=False)
        chaos.apply_crash_loss()
        assert not os.path.exists(path)

    def test_lost_fsync_rolls_content_back(self, tmp_path):
        path = str(tmp_path / "f")
        stable = ChaosFS(ChaosPlan())
        _write_file(stable, path, b"old")
        # Every fsync from here on lies.
        chaos = ChaosFS(ChaosPlan(p_lost_fsync=1.0))
        _write_file(chaos, path, b"new")
        assert open(path, "rb").read() == b"new"  # the process's view
        chaos.apply_crash_loss()
        assert open(path, "rb").read() == b"old"  # the platter's view

    def test_dropped_rename_is_permanently_volatile(self, tmp_path):
        path = str(tmp_path / "f")
        chaos = ChaosFS(ChaosPlan(p_dropped_rename=1.0))
        # Even with dir_sync=True: the drop models a firmware-grade lie
        # that no directory fsync can commit.
        write_atomic(path, b"hello", fs=chaos, dir_sync=True)
        assert os.path.exists(path)
        chaos.apply_crash_loss()
        assert not os.path.exists(path)
        assert chaos.injected.get("dropped_rename") == 1

    def test_kill_model_loses_nothing_completed(self, tmp_path):
        # A process kill (no apply_crash_loss) keeps every applied call.
        path = str(tmp_path / "f")
        chaos = ChaosFS(ChaosPlan(p_lost_fsync=1.0))
        write_atomic(path, b"hello", fs=chaos, dir_sync=False)
        assert open(path, "rb").read() == b"hello"


class TestReadAndClock:
    def test_short_read_returns_strict_prefix(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"0123456789")
        chaos = ChaosFS(ChaosPlan(p_short_read=1.0))
        data = chaos.read_bytes(str(path))
        assert len(data) < 10
        assert b"0123456789".startswith(data)
        # The file itself is untouched: the glitch is in the read.
        assert path.read_bytes() == b"0123456789"

    def test_clock_skew(self):
        chaos = ChaosFS(ChaosPlan(clock_skew=3600.0))
        assert abs(chaos.clock() - time.time() - 3600.0) < 5.0
