"""Tests for the crash-point explorer (``repro.chaos.explorer``).

Two kinds of assurance: the standard fleet operations pass the full
drill (the regression surface), and — the meta-capability — a
deliberately broken durable-write protocol IS caught.  An explorer that
can only ever say "ok" proves nothing; the broken-op test keeps it
honest.
"""

import os

from repro.chaos import (
    CRASH_MODES,
    ChaosOperation,
    explore,
    standard_operations,
)


class TestStandardDrill:
    def test_full_drill_passes(self, tmp_path):
        report = explore(root=str(tmp_path))
        assert report.ok, report.render()
        names = [op.name for op in report.operations]
        assert names == [
            "store-publish",
            "worker-commit",
            "lease-claim",
            "lease-reclaim",
            "ledger-append",
            "snapshot-rotate",
        ]
        for op in report.operations:
            # Every operation has crash points and every trial crashed
            # (the golden pass is separate from the trials).
            assert len(op.sites) > 0
            assert op.trials > 0
            assert op.crashes == op.trials
        assert "DRILL PASSED" in report.render()

    def test_mode_subset(self, tmp_path):
        report = explore(
            operations=[standard_operations()[2]],  # lease-claim: cheapest
            root=str(tmp_path),
            modes=("kill",),
        )
        assert report.ok, report.render()
        (op,) = report.operations
        # kill-only: one trial per site.
        assert op.trials == len(op.sites)

    def test_progress_callback(self, tmp_path):
        lines = []
        explore(
            operations=[standard_operations()[2]],
            root=str(tmp_path),
            modes=("kill",),
            progress=lines.append,
        )
        assert any("lease-claim" in line for line in lines)


class TestMetaCapability:
    """The explorer must catch protocols that skip the durability steps."""

    def test_missing_fsync_is_caught_by_the_power_model(self, tmp_path):
        # A "ledger" that appends without fsync, acknowledges, then does
        # unrelated durable work.  A power crash during the later work
        # reverts the unsynced append — an acknowledged-record loss the
        # explorer must flag.
        def setup(h):
            pass

        def run(h):
            path = h.ledger_path()
            fd = h.fs.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
            h.fs.write(fd, b"record\n")
            h.fs.close(fd)  # no fsync, no dir fsync
            h.notes["acked"] = True
            # Later durable work gives the crash somewhere to land
            # after the premature acknowledgement.
            other = os.path.join(h.root, "other")
            fd = h.fs.open(other, os.O_WRONLY | os.O_CREAT)
            h.fs.write(fd, b"x")
            h.fs.fsync(fd)
            h.fs.close(fd)

        def check(h):
            if not h.notes.get("acked"):
                return []
            try:
                with open(h.ledger_path(), "rb") as fh:
                    data = fh.read()
            except FileNotFoundError:
                data = b""
            if data != b"record\n":
                return ["acknowledged record lost after restart"]
            return []

        broken = ChaosOperation(
            name="broken-append", setup=setup, run=run, check=check
        )
        report = explore(
            operations=[broken], root=str(tmp_path), modes=("power",)
        )
        assert not report.ok
        assert any(
            "acknowledged record lost" in v.message
            for v in report.violations
        )

    def test_correct_protocol_passes_the_same_gauntlet(self, tmp_path):
        # The fixed version of the same protocol — fsync before the ack —
        # survives every crash model.  Pairing the two pins the blame on
        # the missing fsync, not on an over-eager explorer.
        def setup(h):
            pass

        def run(h):
            path = h.ledger_path()
            fd = h.fs.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
            h.fs.write(fd, b"record\n")
            h.fs.fsync(fd)
            h.fs.close(fd)
            h.notes["acked"] = True
            other = os.path.join(h.root, "other")
            fd = h.fs.open(other, os.O_WRONLY | os.O_CREAT)
            h.fs.write(fd, b"x")
            h.fs.fsync(fd)
            h.fs.close(fd)

        def check(h):
            if not h.notes.get("acked"):
                return []
            with open(h.ledger_path(), "rb") as fh:
                if fh.read() != b"record\n":
                    return ["acknowledged record lost after restart"]
            return []

        fixed = ChaosOperation(
            name="fixed-append", setup=setup, run=run, check=check
        )
        report = explore(
            operations=[fixed], root=str(tmp_path), modes=CRASH_MODES
        )
        assert report.ok, report.render()
