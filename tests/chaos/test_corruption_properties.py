"""Property tests: arbitrary corruption is contained, never half-applied.

For each durable artifact — a store entry, the campaign ledger's tail,
a checkpoint snapshot — hypothesis drives prefix truncation and byte
flips at arbitrary offsets and asserts the reader's trichotomy: the
artifact is read back intact, or it is quarantined/skipped and the
protocol recovers, but a corrupted version is NEVER served as valid.
"""

import functools
import os

from hypothesis import given, settings, strategies as st

from repro.harness.campaign import CampaignCell, CampaignLedger, execute_cell
from repro.harness.runner import RunResult
from repro.sim.checkpoint import (
    read_snapshot,
    recover_snapshot,
    write_snapshot,
)
from repro.store.store import ResultStore, cell_digest


@functools.lru_cache(maxsize=1)
def _golden():
    """One simulated cell, executed once for the whole module."""
    cell = CampaignCell(benchmark="wc", design_point="HEAVYWT", trip_count=48)
    outcome = execute_cell(cell)
    assert isinstance(outcome, RunResult)
    return cell, outcome, outcome.fingerprint()


def _corrupt(data: bytes, kind: str, offset: int) -> bytes:
    """Apply one corruption at ``offset`` (scaled into range)."""
    if not data:
        return data
    offset = offset % len(data)
    if kind == "truncate":
        return data[:offset]
    flipped = bytes([data[offset] ^ 0xFF])
    return data[:offset] + flipped + data[offset + 1 :]


class TestStoreEntryCorruption:
    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(["truncate", "flip"]),
        offset=st.integers(min_value=0, max_value=2**20),
    )
    def test_entry_is_valid_or_quarantined_never_garbage(
        self, tmp_path_factory, kind, offset
    ):
        cell, outcome, fingerprint = _golden()
        root = str(tmp_path_factory.mktemp("store"))
        store = ResultStore(root)
        store.put(cell, outcome, provenance={"campaign": "prop"})
        digest = cell_digest(cell)
        path = store.entry_path(digest)
        pristine = open(path, "rb").read()
        mutated = _corrupt(pristine, kind, offset)
        with open(path, "wb") as fh:
            fh.write(mutated)

        fresh = ResultStore(root)
        entry = fresh.get(digest)
        if entry is not None:
            # Served == bit-identically the golden result (the flip either
            # missed nothing or was caught; identity is the only pass).
            assert entry.fingerprint == fingerprint
            assert entry.digest == digest
        else:
            # Quarantined: the evidence exists and a re-publish converges.
            quarantined = [
                n
                for n in os.listdir(os.path.dirname(path))
                if ".quarantined" in n
            ]
            assert quarantined, "corrupt entry vanished without evidence"
            fresh.put(cell, outcome, provenance={"campaign": "prop"})
            recovered = fresh.get(digest)
            assert recovered is not None
            assert recovered.fingerprint == fingerprint


class TestLedgerTailCorruption:
    @settings(max_examples=40, deadline=None)
    @given(cut=st.integers(min_value=0, max_value=2**20))
    def test_truncated_tail_replays_an_intact_prefix(self, tmp_path_factory, cut):
        path = str(tmp_path_factory.mktemp("ledger") / "ledger.jsonl")
        records = [
            {"cell": f"c{i}", "attempt": 1, "status": "done", "i": i}
            for i in range(6)
        ]
        ledger = CampaignLedger(path)
        for record in records:
            ledger.append(record)
        ledger.close()

        data = open(path, "rb").read()
        cut = cut % (len(data) + 1)
        with open(path, "wb") as fh:
            fh.write(data[:cut])

        replayed = CampaignLedger.read(path)
        # Exactly the records whose full line survived — an intact,
        # in-order prefix; the torn tail is dropped, never half-parsed.
        assert replayed == records[: len(replayed)]
        # Every record whose full line survived is kept — no over- or
        # under-reading around the tear.
        assert len(replayed) == data[:cut].count(b"\n")


class TestSnapshotCorruption:
    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(["truncate", "flip"]),
        offset=st.integers(min_value=0, max_value=2**20),
    )
    def test_recovery_falls_back_never_loads_garbage(
        self, tmp_path_factory, kind, offset
    ):
        from repro.chaos.explorer import _drill_snapshot

        path = str(tmp_path_factory.mktemp("ckpt") / "run.snap")
        write_snapshot(path, _drill_snapshot(10))  # rotates to .prev next
        write_snapshot(path, _drill_snapshot(20))

        pristine = open(path, "rb").read()
        mutated = _corrupt(pristine, kind, offset)
        with open(path, "wb") as fh:
            fh.write(mutated)

        recovered = recover_snapshot(path)
        # Two valid generations exist on disk; corruption of the newest
        # must cost at most one generation, never a garbage load and
        # never a cold start.
        assert recovered is not None
        assert recovered.snapshot.total_steps in (10, 20)
        if mutated != pristine:
            if recovered.snapshot.total_steps == 10:
                assert recovered.used_fallback
                assert recovered.quarantined  # evidence kept
                for q in recovered.quarantined:
                    assert os.path.exists(q)
        else:
            assert recovered.snapshot.total_steps == 20

    def test_corrupt_both_generations_returns_none(self, tmp_path):
        from repro.chaos.explorer import _drill_snapshot

        path = str(tmp_path / "run.snap")
        write_snapshot(path, _drill_snapshot(10))
        write_snapshot(path, _drill_snapshot(20))
        for victim in (path, path + ".prev"):
            data = open(victim, "rb").read()
            with open(victim, "wb") as fh:
                fh.write(data[: len(data) // 2])
        assert recover_snapshot(path) is None
        # Cold start is the contract — but both carcasses are evidence.
        quarantined = [
            n for n in os.listdir(tmp_path) if ".quarantined" in n
        ]
        assert len(quarantined) == 2

    def test_intact_snapshot_round_trips(self, tmp_path):
        from repro.chaos.explorer import _drill_snapshot

        path = str(tmp_path / "run.snap")
        write_snapshot(path, _drill_snapshot(10))
        assert read_snapshot(path).total_steps == 10
