"""Unit tests for the loop IR and address patterns."""

import itertools

import pytest

from repro.dswp.ir import Loop, Op, OpKind, PointerChase, Sequential, Strided


def take(stream, n):
    return list(itertools.islice(stream, n))


class TestAddressPatterns:
    def test_sequential_strides_and_wraps(self):
        pat = Sequential(base=100, stride=8, footprint=32)
        assert take(pat.stream(), 6) == [100, 108, 116, 124, 100, 108]

    def test_sequential_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Sequential(base=0, stride=0)

    def test_strided_deterministic(self):
        a = take(Strided(base=0, seed=7).stream(), 20)
        b = take(Strided(base=0, seed=7).stream(), 20)
        assert a == b

    def test_strided_seed_changes_stream(self):
        a = take(Strided(base=0, seed=7).stream(), 20)
        b = take(Strided(base=0, seed=8).stream(), 20)
        assert a != b

    def test_strided_in_bounds(self):
        pat = Strided(base=1000, stride=8, n_elements=16)
        for addr in take(pat.stream(), 100):
            assert 1000 <= addr < 1000 + 16 * 8

    def test_pointer_chase_visits_all_nodes(self):
        pat = PointerChase(base=0, node_bytes=64, n_nodes=16, seed=1)
        addrs = take(pat.stream(), 16)
        assert len(set(addrs)) == 16  # a full tour before repeating

    def test_pointer_chase_cyclic(self):
        pat = PointerChase(base=0, node_bytes=64, n_nodes=8, seed=1)
        first = take(pat.stream(), 8)
        second = take(pat.stream(), 16)[8:]
        assert first == second


class TestOp:
    def test_memory_op_requires_pattern(self):
        with pytest.raises(ValueError):
            Op("x", OpKind.LOAD)

    def test_alu_op_rejects_pattern(self):
        with pytest.raises(ValueError):
            Op("x", OpKind.IALU, addr=Sequential(0))

    def test_default_weights(self):
        assert Op("x", OpKind.FALU).est_weight == 4.0
        assert Op("x", OpKind.IALU).est_weight == 1.0

    def test_repeat_scales_weight(self):
        assert Op("x", OpKind.IALU, repeat=3).est_weight == 3.0

    def test_explicit_weight(self):
        assert Op("x", OpKind.IALU, weight=7.0).est_weight == 7.0

    def test_repeat_positive(self):
        with pytest.raises(ValueError):
            Op("x", OpKind.IALU, repeat=0)


class TestLoop:
    def test_duplicate_op_ids_rejected(self):
        with pytest.raises(ValueError):
            Loop("l", [Op("a", OpKind.IALU), Op("a", OpKind.IALU)])

    def test_unknown_dep_rejected(self):
        with pytest.raises(ValueError):
            Loop("l", [Op("a", OpKind.IALU, deps=("ghost",))])

    def test_forward_intra_dep_rejected(self):
        with pytest.raises(ValueError):
            Loop(
                "l",
                [Op("a", OpKind.IALU, deps=("b",)), Op("b", OpKind.IALU)],
            )

    def test_carried_dep_may_be_forward(self):
        Loop(
            "l",
            [Op("a", OpKind.IALU, carried_deps=("b",)), Op("b", OpKind.IALU)],
        )

    def test_self_carried_dep(self):
        Loop("l", [Op("a", OpKind.IALU, carried_deps=("a",))])

    def test_trip_count_positive(self):
        with pytest.raises(ValueError):
            Loop("l", [Op("a", OpKind.IALU)], trip_count=0)

    def test_op_lookup(self):
        loop = Loop("l", [Op("a", OpKind.IALU), Op("b", OpKind.BRANCH, deps=("a",))])
        assert loop.op("b").kind is OpKind.BRANCH
        with pytest.raises(KeyError):
            loop.op("z")

    def test_dynamic_instructions(self):
        loop = Loop(
            "l",
            [Op("a", OpKind.IALU, repeat=2), Op("b", OpKind.IALU)],
            trip_count=10,
        )
        assert loop.dynamic_instructions() == 30

    def test_total_weight(self):
        loop = Loop("l", [Op("a", OpKind.FALU), Op("b", OpKind.IALU)])
        assert loop.total_weight() == 5.0
