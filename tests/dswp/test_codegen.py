"""Unit tests for the code generator (lowering, hoisting, comm insertion)."""


from repro.dswp.codegen import hoistable_ops, lower_partition, lower_single_threaded
from repro.dswp.ir import Loop, Op, OpKind, Sequential
from repro.dswp.partition import partition_loop
from repro.sim.isa import InstrKind
from repro.sim.config import baseline_config
from repro.sim.machine import Machine


def stream_loop(trip=8):
    return Loop(
        "s",
        [
            Op("ld", OpKind.LOAD, addr=Sequential(0x1000, stride=8)),
            Op("scale", OpKind.IALU, deps=("ld",)),
            Op("acc", OpKind.FALU, deps=("scale",), carried_deps=("acc",)),
            Op("st", OpKind.STORE, deps=("acc",), addr=Sequential(0x8000, stride=8)),
        ],
        trip_count=trip,
    )


def gather_loop(trip=8):
    return Loop(
        "g",
        [
            Op("idx", OpKind.LOAD, addr=Sequential(0x1000, stride=4)),
            Op("addr", OpKind.IALU, deps=("idx",)),
            Op("val", OpKind.LOAD, deps=("addr",), addr=Sequential(0x2000, stride=8)),
            Op("acc", OpKind.FALU, deps=("val",), carried_deps=("acc",)),
        ],
        trip_count=trip,
    )


class TestHoisting:
    def test_pure_loads_hoistable(self):
        assert hoistable_ops(stream_loop()) == {"ld"}

    def test_dependent_loads_not_hoistable(self):
        assert hoistable_ops(gather_loop()) == {"idx"}

    def test_instruction_counts_preserved(self):
        loop = stream_loop(trip=10)
        prog = lower_single_threaded(loop)
        instrs = list(prog.threads[0].instructions())
        loads = [i for i in instrs if i.kind is InstrKind.LOAD]
        stores = [i for i in instrs if i.kind is InstrKind.STORE]
        assert len(loads) == 10
        assert len(stores) == 10

    def test_hoisted_loads_emitted_early(self):
        loop = stream_loop(trip=10)
        prog = lower_single_threaded(loop, hoist_depth=3)
        instrs = list(prog.threads[0].instructions())
        # The first K+1 instructions are hoisted loads (the prologue).
        assert all(i.kind is InstrKind.LOAD for i in instrs[:4])

    def test_rotation_uses_distinct_registers(self):
        loop = stream_loop(trip=10)
        prog = lower_single_threaded(loop, hoist_depth=3)
        instrs = list(prog.threads[0].instructions())
        load_dests = {i.dest for i in instrs if i.kind is InstrKind.LOAD}
        assert len(load_dests) == 4  # K+1 rotating registers

    def test_no_hoisting_when_disabled(self):
        loop = stream_loop(trip=5)
        prog = lower_single_threaded(loop, hoist_depth=0)
        instrs = list(prog.threads[0].instructions())
        assert instrs[0].kind is InstrKind.LOAD
        load_dests = {i.dest for i in instrs if i.kind is InstrKind.LOAD}
        assert len(load_dests) == 1

    def test_addresses_in_stream_order(self):
        """Hoisting reorders emission, not the address sequence."""
        loop = stream_loop(trip=10)
        prog = lower_single_threaded(loop, hoist_depth=3)
        addrs = [
            i.addr
            for i in prog.threads[0].instructions()
            if i.kind is InstrKind.LOAD
        ]
        assert addrs == [0x1000 + 8 * k for k in range(10)]


class TestPartitionLowering:
    def test_two_threads_with_queue(self):
        p = partition_loop(stream_loop(trip=6))
        prog = lower_partition(p)
        assert prog.n_threads == 2
        assert prog.queue_endpoints  # at least one queue
        for qid, (prod, cons) in prog.queue_endpoints.items():
            assert (prod, cons) == (0, 1)

    def test_produce_consume_counts_match(self):
        p = partition_loop(stream_loop(trip=6))
        prog = lower_partition(p)
        produces = sum(
            1
            for i in prog.threads[0].instructions()
            if i.kind is InstrKind.PRODUCE
        )
        consumes = sum(
            1
            for i in prog.threads[1].instructions()
            if i.kind is InstrKind.CONSUME
        )
        assert produces == consumes == 6 * p.comm_ops_per_iteration()

    def test_loop_control_replicated(self):
        p = partition_loop(stream_loop(trip=6))
        prog = lower_partition(p)
        for thread in prog.threads:
            branches = sum(
                1
                for i in thread.instructions()
                if i.kind is InstrKind.BRANCH and i.tag == "loopbr"
            )
            assert branches == 6

    def test_builders_are_replayable(self):
        p = partition_loop(stream_loop(trip=4))
        prog = lower_partition(p)
        a = [i.kind for i in prog.threads[0].instructions()]
        b = [i.kind for i in prog.threads[0].instructions()]
        assert a == b

    def test_lowered_program_runs_on_machine(self):
        p = partition_loop(stream_loop(trip=16))
        prog = lower_partition(p)
        stats = Machine(baseline_config(), mechanism="heavywt").run(prog)
        assert stats.cycles > 0
        assert stats.consumer.consumes == 16 * p.comm_ops_per_iteration()

    def test_single_threaded_runs(self):
        prog = lower_single_threaded(stream_loop(trip=16))
        stats = Machine(baseline_config(), mechanism="heavywt").run(prog)
        assert stats.threads[0].consumes == 0

    def test_repeat_ops_produce_repeatedly(self):
        loop = Loop(
            "rep",
            [
                Op("src", OpKind.IALU, repeat=2),
                Op("use", OpKind.FALU, deps=("src",), carried_deps=("use",)),
            ],
            trip_count=3,
        )
        p = partition_loop(loop)
        prog = lower_partition(p)
        produces = sum(
            1
            for i in prog.threads[0].instructions()
            if i.kind is InstrKind.PRODUCE
        )
        assert produces == 6  # repeat 2 x trip 3
