"""Unit + property tests for the DSWP partitioner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dswp.ir import Loop, Op, OpKind
from repro.dswp.partition import (
    PartitionError,
    build_dependence_graph,
    partition_loop,
)


def chain_loop(n=6):
    """a0 -> a1 -> ... -> a(n-1), no recurrences."""
    body = [Op("a0", OpKind.IALU)]
    for i in range(1, n):
        body.append(Op(f"a{i}", OpKind.IALU, deps=(f"a{i-1}",)))
    return Loop("chain", body)


def producer_consumer_loop():
    """A load feeding a loop-carried reduction: the canonical DSWP shape."""
    return Loop(
        "pc",
        [
            Op("ld", OpKind.IALU),  # stands in for a streaming load
            Op("scale", OpKind.IALU, deps=("ld",)),
            Op("acc", OpKind.FALU, deps=("scale",), carried_deps=("acc",)),
            Op("out", OpKind.IALU, deps=("acc",)),
        ],
    )


class TestDependenceGraph:
    def test_intra_edges(self):
        g = build_dependence_graph(chain_loop(3))
        assert g.has_edge("a0", "a1")
        assert g.has_edge("a1", "a2")

    def test_carried_edge_closes_cycle(self):
        loop = Loop(
            "rec",
            [
                Op("x", OpKind.IALU, carried_deps=("y",)),
                Op("y", OpKind.IALU, deps=("x",)),
            ],
        )
        g = build_dependence_graph(loop)
        assert g.has_edge("x", "y") and g.has_edge("y", "x")


class TestPartitioning:
    def test_chain_splits_roughly_in_half(self):
        p = partition_loop(chain_loop(6))
        w0, w1 = p.stage_weight(0), p.stage_weight(1)
        assert abs(w0 - w1) <= 2.0
        assert len(p.crossing_values) == 1  # a chain crosses once

    def test_producer_consumer_shape(self):
        p = partition_loop(producer_consumer_loop())
        # The reduction recurrence must be in stage 1 as a unit.
        assert p.stage_of["acc"] == 1
        assert p.stage_of["out"] == 1
        assert p.stage_of["ld"] == 0

    def test_fully_recurrent_loop_rejected(self):
        loop = Loop(
            "knot",
            [
                Op("x", OpKind.IALU, carried_deps=("y",)),
                Op("y", OpKind.IALU, deps=("x",)),
            ],
        )
        with pytest.raises(PartitionError):
            partition_loop(loop)

    def test_validate_catches_backward_dep(self):
        from repro.dswp.partition import Partition

        loop = chain_loop(3)
        bad = Partition(
            loop=loop,
            stage_of={"a0": 1, "a1": 0, "a2": 1},
            crossing_values=(),
        )
        with pytest.raises(PartitionError):
            bad.validate()

    def test_crossing_values_deduplicated(self):
        """A value used by many stage-1 ops crosses exactly once."""
        loop = Loop(
            "fan",
            [
                Op("src", OpKind.IALU),
                Op("u1", OpKind.FALU, deps=("src",), carried_deps=("u1",)),
                Op("u2", OpKind.FALU, deps=("src",), carried_deps=("u2",)),
                Op("u3", OpKind.FALU, deps=("src",), carried_deps=("u3",)),
            ],
        )
        p = partition_loop(loop)
        assert p.crossing_values.count("src") == 1

    def test_comm_cost_discourages_wide_cuts(self):
        """A high comm weight pushes the cut to a narrow point."""
        loop = Loop(
            "wide",
            [
                Op("a", OpKind.IALU),
                Op("b1", OpKind.IALU, deps=("a",)),
                Op("b2", OpKind.IALU, deps=("a",)),
                Op("join", OpKind.IALU, deps=("b1", "b2")),
                Op("t1", OpKind.FALU, deps=("join",), carried_deps=("t1",)),
                Op("t2", OpKind.FALU, deps=("t1",), carried_deps=("t2",)),
            ],
        )
        narrow = partition_loop(loop, comm_cost_weight=10.0)
        assert len(narrow.crossing_values) == 1

    def test_single_op_loop_rejected(self):
        """One op is one SCC: nothing to pipeline."""
        loop = Loop("one", [Op("only", OpKind.IALU, carried_deps=("only",))])
        with pytest.raises(PartitionError, match="single recurrence"):
            partition_loop(loop)

    def test_all_ops_in_one_scc_rejected(self):
        """A loop-spanning recurrence collapses the condensation to one node."""
        loop = Loop(
            "ring",
            [
                Op("x", OpKind.IALU, carried_deps=("z",)),
                Op("y", OpKind.FALU, deps=("x",)),
                Op("z", OpKind.IALU, deps=("y",)),
            ],
        )
        with pytest.raises(PartitionError, match="single recurrence"):
            partition_loop(loop)

    def test_comm_weight_zero_picks_most_balanced_cut(self):
        """With free communication only the bottleneck weight matters."""
        loop = Loop(
            "diamond",
            [
                Op("src", OpKind.IALU),
                Op("m1", OpKind.IALU, deps=("src",)),
                Op("m2", OpKind.IALU, deps=("src",)),
                Op("m3", OpKind.IALU, deps=("src",)),
                Op("m4", OpKind.IALU, deps=("src",)),
                Op("sink", OpKind.FALU, deps=("m1", "m2", "m3", "m4"),
                   carried_deps=("sink",)),
            ],
        )
        p = partition_loop(loop, comm_cost_weight=0.0)
        assert abs(p.stage_weight(0) - p.stage_weight(1)) <= 1.0
        # The balanced cut is wide — several middles cross to the sink.
        assert len(p.crossing_values) > 1

    def test_comm_weight_dominant_picks_narrowest_cut(self):
        """A huge comm weight accepts imbalance to cross a single value."""
        loop = Loop(
            "diamond",
            [
                Op("src", OpKind.IALU),
                Op("m1", OpKind.IALU, deps=("src",)),
                Op("m2", OpKind.IALU, deps=("src",)),
                Op("m3", OpKind.IALU, deps=("src",)),
                Op("m4", OpKind.IALU, deps=("src",)),
                Op("sink", OpKind.FALU, deps=("m1", "m2", "m3", "m4"),
                   carried_deps=("sink",)),
            ],
        )
        p = partition_loop(loop, comm_cost_weight=1000.0)
        assert p.crossing_values == ("src",)

    def test_comm_ops_per_iteration_counts_repeat(self):
        loop = Loop(
            "rep",
            [
                Op("src", OpKind.IALU, repeat=2),
                Op("use", OpKind.FALU, deps=("src",), carried_deps=("use",)),
            ],
        )
        p = partition_loop(loop)
        assert p.comm_ops_per_iteration() == 2


@st.composite
def random_loops(draw):
    """Random well-formed loops: ops with only-backward intra deps."""
    n = draw(st.integers(2, 8))
    body = []
    for i in range(n):
        kind = draw(st.sampled_from([OpKind.IALU, OpKind.FALU]))
        deps = ()
        if i > 0:
            deps = tuple(
                sorted(
                    draw(
                        st.sets(
                            st.integers(0, i - 1), max_size=min(2, i)
                        )
                    )
                )
            )
        carried = ()
        if draw(st.booleans()):
            carried = (i,)  # self-recurrence
        body.append(
            Op(
                f"op{i}",
                kind,
                deps=tuple(f"op{d}" for d in deps),
                carried_deps=tuple(f"op{c}" for c in carried),
            )
        )
    return Loop("rand", body)


class TestPartitionProperties:
    @given(loop=random_loops())
    @settings(max_examples=60, deadline=None)
    def test_partitions_always_valid(self, loop):
        """Every produced partition satisfies the DSWP acyclicity invariant."""
        try:
            p = partition_loop(loop)
        except PartitionError:
            return  # single-SCC loops are legitimately rejected
        p.validate()
        # Both stages non-empty.
        assert p.ops_in_stage(0) and p.ops_in_stage(1)
        # Crossing values all defined in stage 0.
        for v in p.crossing_values:
            assert p.stage_of[v] == 0

    @given(loop=random_loops())
    @settings(max_examples=40, deadline=None)
    def test_weights_partition_total(self, loop):
        try:
            p = partition_loop(loop)
        except PartitionError:
            return
        assert p.stage_weight(0) + p.stage_weight(1) == pytest.approx(
            loop.total_weight()
        )
