"""Unit + property tests for the graph algorithms (Tarjan SCC, condensation)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.dswp.graph import (
    DiGraph,
    condense,
    is_acyclic,
    tarjan_scc,
    topological_order,
)


def graph_from_edges(edges, nodes=()):
    g = DiGraph()
    for n in nodes:
        g.add_node(n)
    for a, b in edges:
        g.add_edge(a, b)
    return g


class TestDiGraph:
    def test_add_edge_creates_nodes(self):
        g = graph_from_edges([(1, 2)])
        assert set(g.nodes) == {1, 2}

    def test_successors_predecessors(self):
        g = graph_from_edges([(1, 2), (1, 3), (3, 2)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(2) == {1, 3}

    def test_duplicate_edges_collapse(self):
        g = graph_from_edges([(1, 2), (1, 2)])
        assert g.n_edges() == 1

    def test_has_edge(self):
        g = graph_from_edges([(1, 2)])
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)


class TestTarjan:
    def test_dag_gives_singletons(self):
        g = graph_from_edges([(1, 2), (2, 3)])
        sccs = tarjan_scc(g)
        assert sorted(len(s) for s in sccs) == [1, 1, 1]

    def test_simple_cycle(self):
        g = graph_from_edges([(1, 2), (2, 3), (3, 1)])
        sccs = tarjan_scc(g)
        assert len(sccs) == 1
        assert set(sccs[0]) == {1, 2, 3}

    def test_two_cycles_bridge(self):
        g = graph_from_edges([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        sccs = tarjan_scc(g)
        comps = sorted(tuple(sorted(s)) for s in sccs)
        assert comps == [(1, 2), (3, 4)]

    def test_self_loop(self):
        g = graph_from_edges([(1, 1), (1, 2)])
        sccs = {tuple(sorted(s)) for s in tarjan_scc(g)}
        assert (1,) in sccs and (2,) in sccs

    def test_reverse_topological_output(self):
        """Every inter-SCC edge goes from later to earlier in Tarjan output."""
        g = graph_from_edges([(1, 2), (2, 3), (1, 3)])
        sccs = tarjan_scc(g)
        position = {}
        for i, comp in enumerate(sccs):
            for n in comp:
                position[n] = i
        for a, b in g.edges():
            if position[a] != position[b]:
                assert position[a] > position[b]

    def test_isolated_nodes(self):
        g = graph_from_edges([], nodes=[1, 2, 3])
        assert len(tarjan_scc(g)) == 3

    def test_deep_chain_no_recursion_limit(self):
        edges = [(i, i + 1) for i in range(5000)]
        g = graph_from_edges(edges)
        assert len(tarjan_scc(g)) == 5001

    @staticmethod
    def brute_force_sccs(nodes, edges):
        """Reachability-based SCCs for cross-checking."""
        reach = {n: {n} for n in nodes}
        changed = True
        adj = {}
        for a, b in edges:
            adj.setdefault(a, set()).add(b)
        while changed:
            changed = False
            for n in nodes:
                for m in list(reach[n]):
                    extra = adj.get(m, set()) - reach[n]
                    if extra:
                        reach[n] |= extra
                        changed = True
        comps = set()
        for n in nodes:
            comp = frozenset(m for m in nodes if m in reach[n] and n in reach[m])
            comps.add(comp)
        return comps

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=25
        )
    )
    @settings(max_examples=60)
    def test_matches_brute_force(self, edges):
        nodes = sorted({n for e in edges for n in e})
        g = graph_from_edges(edges)
        expected = self.brute_force_sccs(nodes, edges)
        got = {frozenset(c) for c in tarjan_scc(g)}
        assert got == expected


class TestCondense:
    def test_condensation_is_dag(self):
        g = graph_from_edges([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (1, 4)])
        dag, node_to_scc, sccs = condense(g)
        assert is_acyclic(dag)

    def test_mapping_consistency(self):
        g = graph_from_edges([(1, 2), (2, 1), (2, 3)])
        dag, node_to_scc, sccs = condense(g)
        for scc_id, members in enumerate(sccs):
            for n in members:
                assert node_to_scc[n] == scc_id

    def test_no_self_edges_in_dag(self):
        g = graph_from_edges([(1, 2), (2, 1)])
        dag, _, _ = condense(g)
        for a, b in dag.edges():
            assert a != b

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=40
        )
    )
    @settings(max_examples=60)
    def test_condensation_always_acyclic(self, edges):
        g = graph_from_edges(edges)
        dag, _, _ = condense(g)
        assert is_acyclic(dag)


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = graph_from_edges([(1, 2), (1, 3), (3, 4), (2, 4)])
        order = topological_order(g)
        pos = {n: i for i, n in enumerate(order)}
        for a, b in g.edges():
            assert pos[a] < pos[b]

    def test_cycle_rejected(self):
        g = graph_from_edges([(1, 2), (2, 1)])
        with pytest.raises(ValueError):
            topological_order(g)

    def test_is_acyclic(self):
        assert is_acyclic(graph_from_edges([(1, 2)]))
        assert not is_acyclic(graph_from_edges([(1, 2), (2, 1)]))
