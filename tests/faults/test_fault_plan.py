"""Unit tests for the seeded fault plan (rules, windows, determinism)."""

import math

import pytest

from repro.faults import FaultKind, FaultPlan, FaultRule


def _rule(**kw):
    kw.setdefault("kind", FaultKind.BUS_JITTER)
    kw.setdefault("magnitude", 10.0)
    return FaultRule(**kw)


class TestRuleValidation:
    def test_valid_rule_passes(self):
        _rule(probability=0.5, after=2, count=3).validate()

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            _rule(probability=1.5).validate()
        with pytest.raises(ValueError, match="probability"):
            _rule(probability=-0.1).validate()

    def test_negative_magnitude(self):
        with pytest.raises(ValueError, match="magnitude"):
            _rule(magnitude=-1.0).validate()

    def test_infinite_magnitude_only_for_slot_stall(self):
        FaultRule(kind=FaultKind.QUEUE_SLOT_STALL, magnitude=math.inf).validate()
        with pytest.raises(ValueError, match="infinite"):
            _rule(magnitude=math.inf).validate()

    def test_bad_after_and_count(self):
        with pytest.raises(ValueError, match="after"):
            _rule(after=-1).validate()
        with pytest.raises(ValueError, match="count"):
            _rule(count=0).validate()

    def test_plan_validate_propagates(self):
        plan = FaultPlan(rules=(_rule(probability=2.0),))
        with pytest.raises(ValueError):
            plan.validate()


class TestRuleMatching:
    def test_unrestricted_rule_matches_everything(self):
        r = _rule()
        assert r.matches(queue_id=3, core_id=1)
        assert r.matches(queue_id=None, core_id=None)

    def test_queue_restriction(self):
        r = _rule(queue_id=2)
        assert r.matches(queue_id=2, core_id=0)
        assert not r.matches(queue_id=1, core_id=0)

    def test_core_restriction(self):
        r = _rule(core_id=1)
        assert r.matches(queue_id=None, core_id=1)
        assert not r.matches(queue_id=None, core_id=0)

    def test_restricted_bus_jitter_only_hits_matching_requester(self):
        plan = FaultPlan(seed=1, rules=(_rule(core_id=1, probability=1.0),))
        assert plan.bus_jitter(requester=0, at=0.0) == 0.0
        assert plan.bus_jitter(requester=1, at=0.0) > 0.0


class TestWindows:
    def test_after_skips_leading_events(self):
        plan = FaultPlan(
            rules=(FaultRule(kind=FaultKind.ACK_DELAY, magnitude=5.0, after=2),)
        )
        delays = [plan.ack_delay(core_id=0, at=float(i)) for i in range(5)]
        assert delays == [0.0, 0.0, 5.0, 5.0, 5.0]

    def test_count_caps_injections(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind=FaultKind.ACK_DELAY, magnitude=5.0, after=1, count=2),
            )
        )
        delays = [plan.ack_delay(core_id=0, at=float(i)) for i in range(5)]
        assert delays == [0.0, 5.0, 5.0, 0.0, 0.0]
        assert len(plan.injections) == 2

    def test_zero_probability_never_fires(self):
        plan = FaultPlan(
            seed=3,
            rules=(FaultRule(kind=FaultKind.ACK_DELAY, magnitude=5.0, probability=0.0),),
        )
        assert all(plan.ack_delay(core_id=0, at=0.0) == 0.0 for _ in range(50))
        assert plan.injections == []

    def test_fractional_probability_fires_sometimes(self):
        plan = FaultPlan(
            seed=5,
            rules=(FaultRule(kind=FaultKind.ACK_DELAY, magnitude=5.0, probability=0.5),),
        )
        delays = [plan.ack_delay(core_id=0, at=0.0) for _ in range(200)]
        fired = sum(1 for d in delays if d > 0)
        assert 50 < fired < 150  # wildly loose; just "not 0% and not 100%"


class TestDeterminism:
    def _drive(self, plan):
        out = []
        for i in range(20):
            out.append(plan.bus_jitter(requester=i % 2, at=float(i)))
            out.append(plan.ack_delay(core_id=0, at=float(i)))
        return out

    def _rules(self):
        return (
            FaultRule(kind=FaultKind.BUS_JITTER, magnitude=30.0, probability=0.7),
            FaultRule(kind=FaultKind.ACK_DELAY, magnitude=8.0, probability=0.4),
        )

    def test_same_seed_same_draws(self):
        a = FaultPlan(seed=42, rules=self._rules())
        b = FaultPlan(seed=42, rules=self._rules())
        assert self._drive(a) == self._drive(b)

    def test_different_seed_different_draws(self):
        a = FaultPlan(seed=42, rules=self._rules())
        b = FaultPlan(seed=43, rules=self._rules())
        assert self._drive(a) != self._drive(b)

    def test_reset_rewinds_to_event_zero(self):
        plan = FaultPlan(seed=42, rules=self._rules())
        first = self._drive(plan)
        plan.reset()
        assert plan.injections == []
        assert self._drive(plan) == first

    def test_bus_jitter_bounded_by_magnitude(self):
        plan = FaultPlan(seed=9, rules=(_rule(magnitude=30.0),))
        for i in range(50):
            assert 0.0 <= plan.bus_jitter(requester=0, at=float(i)) <= 30.0


class TestForwardFault:
    def test_drop_rule_drops_even_at_zero_magnitude(self):
        plan = FaultPlan(rules=(FaultRule(kind=FaultKind.FORWARD_DROP),))
        dropped, delay = plan.forward_fault(queue_id=0, src=0, dst=1, at=10.0)
        assert dropped and delay == 0.0
        assert plan.injections[0].kind == "forward-drop"
        assert plan.injections[0].detail == {"dst": 1}

    def test_delay_suppressed_when_dropped(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind=FaultKind.FORWARD_DROP),
                FaultRule(kind=FaultKind.FORWARD_DELAY, magnitude=100.0),
            )
        )
        dropped, delay = plan.forward_fault(queue_id=0, src=0, dst=1, at=0.0)
        assert dropped and delay == 0.0

    def test_delay_applies_when_not_dropped(self):
        plan = FaultPlan(
            rules=(FaultRule(kind=FaultKind.FORWARD_DELAY, magnitude=100.0),)
        )
        dropped, delay = plan.forward_fault(queue_id=0, src=0, dst=1, at=0.0)
        assert not dropped and delay == 100.0

    def test_queue_restricted_drop(self):
        plan = FaultPlan(rules=(FaultRule(kind=FaultKind.FORWARD_DROP, queue_id=1),))
        assert plan.forward_fault(queue_id=0, src=0, dst=1, at=0.0) == (False, 0.0)
        assert plan.forward_fault(queue_id=1, src=0, dst=1, at=0.0)[0] is True


class TestSlotStallAndLog:
    def test_infinite_stall_reported(self):
        plan = FaultPlan(
            rules=(FaultRule(kind=FaultKind.QUEUE_SLOT_STALL, magnitude=math.inf),)
        )
        assert math.isinf(plan.queue_slot_stall(queue_id=0, slot_index=0, at=5.0))

    def test_injections_for_queue_filters(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind=FaultKind.QUEUE_SLOT_STALL, magnitude=3.0, queue_id=0),
                FaultRule(kind=FaultKind.ACK_DELAY, magnitude=2.0),
            )
        )
        plan.queue_slot_stall(queue_id=0, slot_index=0, at=1.0)
        plan.ack_delay(core_id=0, at=2.0)
        assert len(plan.injections) == 2
        assert [i.kind for i in plan.injections_for_queue(0)] == ["queue-slot-stall"]

    def test_describe_mentions_seed_and_rules(self):
        assert "seed=7" in FaultPlan(seed=7).describe()
        plan = FaultPlan(seed=7, rules=(_rule(magnitude=12.0, probability=0.25),))
        assert "bus-jitter" in plan.describe()

    def test_injection_describe_renders(self):
        plan = FaultPlan(rules=(FaultRule(kind=FaultKind.ACK_DELAY, magnitude=4.0),))
        plan.ack_delay(core_id=1, at=100.0)
        text = plan.injections[0].describe()
        assert "ack-delay" in text and "core 1" in text and "t=100" in text
