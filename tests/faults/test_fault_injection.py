"""End-to-end fault injection through the machine's hook points.

These tests exercise the tolerance paths the paper's mechanisms were built
around: SYNCOPTI's partial-line timeout absorbing delayed or dropped
forwards, MEMOPTI falling back to demand coherence misses, and the
scheduler's forensics turning an injected wedge into a diagnosable
deadlock rather than a bare stack trace.
"""

import math

import pytest

from repro.faults import FaultKind, FaultPlan, FaultRule
from repro.sim.config import baseline_config
from repro.sim.cosim import DeadlockError
from tests.conftest import run_mechanism, simple_stream_program

N_ITEMS = 64


def _config_with(*rules, seed=11):
    cfg = baseline_config()
    cfg.faults = FaultPlan(seed=seed, rules=tuple(rules))
    return cfg.validate()


class TestBusJitter:
    def test_jitter_slows_the_run(self):
        base, _ = run_mechanism("existing", simple_stream_program(N_ITEMS))
        cfg = _config_with(
            FaultRule(kind=FaultKind.BUS_JITTER, magnitude=50.0, probability=0.5)
        )
        jittered, machine = run_mechanism(
            "existing", simple_stream_program(N_ITEMS), config=cfg
        )
        assert jittered.cycles > base.cycles
        assert any(i.kind == "bus-jitter" for i in machine.faults.injections)


class TestForwardFaults:
    def test_syncopti_absorbs_forward_delay(self):
        base, _ = run_mechanism("syncopti", simple_stream_program(N_ITEMS))
        cfg = _config_with(
            FaultRule(kind=FaultKind.FORWARD_DELAY, magnitude=400.0, queue_id=0)
        )
        delayed, machine = run_mechanism(
            "syncopti", simple_stream_program(N_ITEMS), config=cfg
        )
        # Delayed forwards trip the partial-line timeout; the run still
        # completes with the same item count, just slower.
        assert delayed.consumer.consumes == base.consumer.consumes == N_ITEMS
        assert delayed.cycles > base.cycles
        assert machine.faults.injections_for_queue(0)

    def test_syncopti_recovers_from_dropped_forwards(self):
        cfg = _config_with(FaultRule(kind=FaultKind.FORWARD_DROP, queue_id=0))
        stats, machine = run_mechanism(
            "syncopti", simple_stream_program(N_ITEMS), config=cfg
        )
        assert stats.consumer.consumes == N_ITEMS
        assert machine.mem.dropped_forwards > 0

    def test_memopti_recovers_from_dropped_forwards(self):
        cfg = _config_with(FaultRule(kind=FaultKind.FORWARD_DROP))
        stats, machine = run_mechanism(
            "memopti", simple_stream_program(N_ITEMS), config=cfg
        )
        assert stats.consumer.consumes == N_ITEMS
        assert machine.mem.dropped_forwards > 0
        # No forward ever completed, so no line was recorded as forwarded.
        assert stats.producer.lines_forwarded == 0


class TestAckDelay:
    def test_ack_delay_completes_and_logs(self):
        cfg = _config_with(
            FaultRule(kind=FaultKind.ACK_DELAY, magnitude=60.0, probability=0.5)
        )
        stats, machine = run_mechanism(
            "syncopti", simple_stream_program(N_ITEMS), config=cfg
        )
        assert stats.consumer.consumes == N_ITEMS
        assert any(i.kind == "ack-delay" for i in machine.faults.injections)


class TestWedgedChannel:
    def _wedge_config(self):
        return _config_with(
            FaultRule(kind=FaultKind.QUEUE_SLOT_STALL, magnitude=math.inf, queue_id=0)
        )

    def test_wedge_deadlocks_with_forensics(self):
        with pytest.raises(DeadlockError) as excinfo:
            run_mechanism(
                "existing", simple_stream_program(N_ITEMS), config=self._wedge_config()
            )
        pm = excinfo.value.post_mortem
        assert pm is not None and pm.reason == "deadlock"
        assert pm.blocked_cores() == [0, 1]
        ch = pm.channels[0]
        assert ch.wedged and ch.n_freed == 0
        assert ch.n_produced > 0 and ch.n_consumed > 0
        assert any("WEDGED" in s for s in ch.suspicions())
        assert pm.injections  # the stall shows up in the fault log
        # The rendered message carries the same diagnosis.
        assert "WEDGED" in str(excinfo.value)

    def test_wedge_deadlocks_syncopti_too(self):
        with pytest.raises(DeadlockError):
            run_mechanism(
                "syncopti", simple_stream_program(N_ITEMS), config=self._wedge_config()
            )


class TestDeterminism:
    def _plan_rules(self):
        return (
            FaultRule(kind=FaultKind.BUS_JITTER, magnitude=30.0, probability=0.6),
            FaultRule(kind=FaultKind.FORWARD_DELAY, magnitude=200.0, probability=0.5),
            FaultRule(kind=FaultKind.ACK_DELAY, magnitude=20.0, probability=0.5),
        )

    def test_same_seed_identical_runstats(self):
        a, ma = run_mechanism(
            "syncopti",
            simple_stream_program(N_ITEMS),
            config=_config_with(*self._plan_rules(), seed=42),
        )
        b, mb = run_mechanism(
            "syncopti",
            simple_stream_program(N_ITEMS),
            config=_config_with(*self._plan_rules(), seed=42),
        )
        assert a == b
        assert len(ma.faults.injections) == len(mb.faults.injections)

    def test_plan_reuse_across_machines_is_deterministic(self):
        # The same plan object attached to one config, run twice: Machine
        # resets it, so both runs see the identical injection schedule.
        cfg = _config_with(*self._plan_rules(), seed=42)
        a, _ = run_mechanism("syncopti", simple_stream_program(N_ITEMS), config=cfg)
        b, _ = run_mechanism("syncopti", simple_stream_program(N_ITEMS), config=cfg)
        assert a == b

    def test_different_seed_differs(self):
        a, _ = run_mechanism(
            "syncopti",
            simple_stream_program(N_ITEMS),
            config=_config_with(*self._plan_rules(), seed=1),
        )
        b, _ = run_mechanism(
            "syncopti",
            simple_stream_program(N_ITEMS),
            config=_config_with(*self._plan_rules(), seed=2),
        )
        assert a != b
