"""The correlated JSONL event log: append discipline, torn-tail reads.

The log follows the campaign ledger's proven write discipline (one
``O_APPEND`` write per full line), so the tests hold it to the same
standards: concurrent interleaving at line granularity, a torn tail
never poisons the reader, and correlation filtering reconstructs one
request's story from a mixed multi-process stream.
"""

import json
import os

from repro.obs.events import (
    EventLog,
    events_for_cid,
    list_cids,
    new_cid,
    read_events,
)


def test_new_cid_shape_and_uniqueness():
    cids = {new_cid() for _ in range(256)}
    assert len(cids) == 256
    assert all(len(c) == 12 and int(c, 16) >= 0 for c in cids)


def test_emit_and_read_roundtrip(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    with EventLog(path) as log:
        log.emit("serve.start", port=1234)
        log.emit("store.hit", cid="abc123", digest="d" * 64)
    events = read_events(path)
    assert [e["event"] for e in events] == ["serve.start", "store.hit"]
    assert events[0]["port"] == 1234
    assert events[1]["cid"] == "abc123"
    assert all("t" in e and "pid" in e and "seq" in e for e in events)


def test_none_fields_are_dropped(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    with EventLog(path) as log:
        record = log.emit("x", cid=None, maybe=None, real=1)
    assert "cid" not in record and "maybe" not in record
    assert read_events(path)[0]["real"] == 1


def test_torn_tail_is_skipped(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    with EventLog(path) as log:
        log.emit("a")
        log.emit("b")
    with open(path, "ab") as fh:
        fh.write(b'{"event": "torn", "t": 9')  # crash mid-append
    events = read_events(path)
    assert [e["event"] for e in events] == ["a", "b"]


def test_garbage_lines_are_skipped(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    with open(path, "wb") as fh:
        fh.write(b"not json\n")
        fh.write(json.dumps({"event": "ok", "t": 1.0}).encode() + b"\n")
        fh.write(b'["a", "list"]\n')  # json but not an event dict
    assert [e["event"] for e in read_events(path)] == ["ok"]


def test_missing_log_reads_empty(tmp_path):
    assert read_events(str(tmp_path / "nope.jsonl")) == []


def test_events_sorted_across_writers(tmp_path):
    """Interleaved multi-process appends come back as one timeline."""
    path = str(tmp_path / "obs.jsonl")
    with open(path, "wb") as fh:
        for t, pid, seq in ((3.0, 9, 1), (1.0, 7, 2), (1.0, 7, 1), (2.0, 8, 1)):
            fh.write(
                json.dumps({"event": "e", "t": t, "pid": pid, "seq": seq}).encode()
                + b"\n"
            )
    order = [(e["t"], e["pid"], e["seq"]) for e in read_events(path)]
    assert order == sorted(order)


def test_cid_filter_and_listing(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    with EventLog(path) as log:
        log.emit("serve.miss", cid="aaa")
        log.emit("dispatch.enqueue", cid="aaa")
        log.emit("serve.hit", cid="bbb")
        log.emit("serve.start")  # no cid: infrastructure event
    events = read_events(path)
    assert [e["event"] for e in events_for_cid(events, "aaa")] == [
        "serve.miss",
        "dispatch.enqueue",
    ]
    assert list_cids(events) == ["aaa", "bbb"]


def test_concurrent_threads_one_line_per_event(tmp_path):
    import threading

    path = str(tmp_path / "obs.jsonl")
    log = EventLog(path)

    def hammer(tid):
        for i in range(200):
            log.emit("tick", tid=tid, i=i)

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    log.close()
    events = read_events(path)
    assert len(events) == 800
    # seq is strictly monotone for the single shared (pid, log)
    seqs = [e["seq"] for e in events]
    assert sorted(seqs) == list(range(1, 801))


def test_forked_child_takes_fresh_identity(tmp_path):
    """A forked worker inheriting the log must re-stamp pid and seq."""
    import multiprocessing

    path = str(tmp_path / "obs.jsonl")
    log = EventLog(path)
    log.emit("parent")

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=log.emit, args=("child",))
    proc.start()
    proc.join()
    assert proc.exitcode == 0
    log.emit("parent-again")
    log.close()

    by_event = {e["event"]: e for e in read_events(path)}
    assert by_event["child"]["pid"] != by_event["parent"]["pid"]
    assert by_event["child"]["seq"] == 1  # fresh counter in the child
    assert by_event["parent-again"]["seq"] == 2  # parent's counter unaffected


def test_emit_survives_io_failure(tmp_path):
    """A sick disk drops events; it never raises into the serving path."""

    class SickFS:
        def __init__(self):
            self.sick = False

        def open(self, path, flags, mode=0o644):
            return os.open(path, flags, mode)

        def write(self, fd, data):
            if self.sick:
                raise OSError("boom")
            return os.write(fd, data)

        def fsync(self, fd):
            os.fsync(fd)

        def close(self, fd):
            os.close(fd)

        def makedirs(self, path, exist_ok=False):
            os.makedirs(path, exist_ok=exist_ok)

    fs = SickFS()
    path = str(tmp_path / "obs.jsonl")
    log = EventLog(path, fs=fs)
    log.emit("before")
    fs.sick = True
    log.emit("dropped")  # must not raise
    fs.sick = False
    log.emit("after")  # fd healed on reopen
    log.close()
    assert [e["event"] for e in read_events(path)] == ["before", "after"]
