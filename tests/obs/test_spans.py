"""Cross-layer spans: pairing, self-time rollup, report, Perfetto export.

The offline reconstruction is held to the trace-viewer interpretation:
begin/end pairs matched by span id, interval containment within one cid
defines nesting, self time is duration minus directly-nested children,
and torn spans (a begin whose end fell in a crash) stay visible instead
of vanishing.
"""

import pytest

from repro.obs import runtime
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import (
    OBS_PID,
    SPAN_HISTOGRAM,
    render_report,
    rollup,
    span,
    spans_from_events,
    to_chrome_trace,
)


@pytest.fixture
def obs(tmp_path):
    """An active obs state writing to a private log + registry."""
    registry = MetricsRegistry()
    state = runtime.configure(
        log_path=str(tmp_path / "obs.jsonl"), registry=registry
    )
    yield state
    runtime.shutdown()


def _events(path):
    from repro.obs.events import read_events

    return read_events(str(path))


def test_span_disabled_is_shared_null_object():
    runtime.shutdown()
    a = span("serve.query")
    b = span("sim.run", cid="x", anything=1)
    assert a is b  # one shared instance: zero allocation when disabled
    with a as s:
        s.note(ignored=True)  # all no-ops


def test_span_emits_paired_events_and_histogram(obs, tmp_path):
    with span("serve.query", cid="abc", benchmark="wc") as s:
        s.note(ok=True)
    events = _events(tmp_path / "obs.jsonl")
    assert [e["event"] for e in events] == ["span.begin", "span.end"]
    begin, end = events
    assert begin["span"] == end["span"]
    assert begin["cid"] == end["cid"] == "abc"
    assert end["dur_s"] >= 0 and end["ok"] is True
    hist = obs.registry.histogram(SPAN_HISTOGRAM, span="serve.query")
    assert hist.snapshot()["count"] == 1


def test_span_records_error_class_on_exception(obs, tmp_path):
    with pytest.raises(ValueError):
        with span("store.lookup", cid="abc"):
            raise ValueError("boom")
    end = _events(tmp_path / "obs.jsonl")[-1]
    assert end["event"] == "span.end" and end["error"] == "ValueError"


def test_spans_from_events_pairs_and_torn(obs, tmp_path):
    with span("serve.query", cid="q1"):
        pass
    # a torn span: begin without end (simulates a crash mid-simulation)
    obs.emit("span.begin", cid="q2", name="sim.run", span="deadbeef")
    spans = spans_from_events(_events(tmp_path / "obs.jsonl"))
    by_name = {s.name: s for s in spans}
    assert by_name["serve.query"].dur_s is not None
    assert by_name["sim.run"].dur_s is None  # torn, still visible
    assert by_name["sim.run"].cid == "q2"


def test_unmatched_end_is_synthesized():
    events = [
        {"event": "span.end", "t": 10.0, "pid": 1, "seq": 1, "cid": "c",
         "name": "sim.run", "span": "feed", "dur_s": 2.0},
    ]
    (s,) = spans_from_events(events)
    assert s.start == 8.0 and s.dur_s == 2.0  # begin fell in a torn tail


def _chain(cid="c", base=100.0):
    """A synthetic serve-miss chain with known nesting and durations."""
    mk = lambda ev, t, name, sid, dur=None: {
        "event": ev, "t": t, "pid": 1, "seq": 1, "cid": cid,
        "name": name, "span": sid,
        **({"dur_s": dur} if dur is not None else {}),
    }
    return [
        mk("span.begin", base + 0.0, "serve.query", "s1"),
        mk("span.begin", base + 0.1, "dispatch.wait", "s2"),
        mk("span.begin", base + 0.2, "sim.run", "s3"),
        mk("span.end", base + 0.8, "sim.run", "s3", 0.6),
        mk("span.end", base + 0.9, "dispatch.wait", "s2", 0.8),
        mk("span.end", base + 1.0, "serve.query", "s1", 1.0),
    ]


def test_rollup_self_time_subtracts_nested_children():
    summary = rollup(_chain())
    assert summary["sim.run"]["self_s"] == pytest.approx(0.6)
    assert summary["dispatch.wait"]["self_s"] == pytest.approx(0.2)  # 0.8 - 0.6
    assert summary["serve.query"]["self_s"] == pytest.approx(0.2)  # 1.0 - 0.8
    total_self = sum(r["self_s"] for r in summary.values())
    assert total_self == pytest.approx(1.0)  # self times partition the root


def test_rollup_does_not_nest_across_cids():
    events = _chain(cid="a") + _chain(cid="b")
    summary = rollup(events)
    assert summary["serve.query"]["count"] == 2
    assert summary["serve.query"]["self_s"] == pytest.approx(0.4)


def test_render_report_table():
    text = render_report(rollup(_chain()))
    lines = text.splitlines()
    assert lines[0].split()[:3] == ["span", "count", "total"]
    # sorted by self time: sim.run (0.6) leads
    assert lines[2].startswith("sim.run")
    assert "(self-time sum)" in lines[-1]
    assert render_report({}) == "no spans recorded"


def test_to_chrome_trace_layout():
    doc = to_chrome_trace(_chain() + [
        {"event": "store.publish", "t": 101.05, "pid": 7, "seq": 9, "cid": "c"},
    ])
    events = doc["traceEvents"]
    assert doc["otherData"]["source"] == "repro.obs"
    slices = [e for e in events if e.get("ph") == "X"]
    assert {e["name"] for e in slices} == {
        "serve.query", "dispatch.wait", "sim.run"
    }
    assert all(e["pid"] == OBS_PID for e in slices)
    root = next(e for e in slices if e["name"] == "serve.query")
    assert root["ts"] == pytest.approx(0.0) and root["dur"] == pytest.approx(1e6)
    instants = [e for e in events if e.get("ph") == "i"]
    assert [e["name"] for e in instants] == ["store.publish"]
    # everything on the same cid shares one thread lane
    tids = {e["tid"] for e in slices + instants}
    assert len(tids) == 1


def test_to_chrome_trace_cid_filter():
    doc = to_chrome_trace(_chain(cid="a") + _chain(cid="b"), cid="a")
    slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert len(slices) == 3
    assert all(e["args"]["cid"] == "a" for e in slices)
