"""The unified metrics registry: counters, gauges, fixed-bucket histograms.

Acceptance properties:

* counters behave like ints at existing call sites (``metrics.hits += 1``,
  ``svc.metrics.hits == 1``) while living in the registry;
* histograms fold observations into fixed buckets, including the edges —
  zero-duration lands in the first bucket, beyond-the-largest lands only
  in ``+Inf`` — and snapshots stay internally consistent under
  concurrent updates;
* ``render_prometheus`` emits valid 0.0.4 text exposition with one
  HELP/TYPE header per family and cumulative ``le`` buckets.
"""

import threading

import pytest

from repro.obs.registry import (
    LATENCY_BUCKETS_S,
    Counter,
    MetricsRegistry,
    get_registry,
    reset_registry,
)


def test_counter_is_int_compatible():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total")
    c += 1
    c.inc(2)
    assert c == 3 and int(c) == 3
    assert c > 2 and c >= 3 and c < 4 and c <= 3
    assert reg.counter("repro_test_total") is c  # get-or-create, same object


def test_counter_iadd_preserves_registry_identity():
    reg = MetricsRegistry()
    c = reg.counter("repro_test_total")
    before = c
    c += 5
    assert isinstance(c, Counter) and c is before  # += mutates, not rebinds
    assert reg.counter("repro_test_total").value == 5


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("repro_depth")
    g.set(4)
    g.inc()
    g.dec(2)
    assert g.value == 3


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("repro_thing")
    with pytest.raises(TypeError):
        reg.gauge("repro_thing")


def test_labels_key_distinct_series():
    reg = MetricsRegistry()
    a = reg.counter("repro_runs_total", kernel="reference")
    b = reg.counter("repro_runs_total", kernel="event")
    a.inc()
    assert a.value == 1 and b.value == 0
    text = reg.render_prometheus()
    assert 'repro_runs_total{kernel="reference"} 1' in text
    assert 'repro_runs_total{kernel="event"} 0' in text
    # one TYPE header for the family despite two series
    assert text.count("# TYPE repro_runs_total") == 1


def test_histogram_zero_lands_in_first_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds")
    h.observe(0.0)
    snap = h.snapshot()
    assert snap["count"] == 1
    assert snap["buckets"][0]["le"] == LATENCY_BUCKETS_S[0]
    assert snap["buckets"][0]["count"] == 1


def test_histogram_beyond_largest_bucket_is_inf_only():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds")
    h.observe(LATENCY_BUCKETS_S[-1] * 1000)
    snap = h.snapshot()
    assert all(b["count"] == 0 for b in snap["buckets"][:-1])
    assert snap["buckets"][-1]["le"] == "+Inf"
    assert snap["buckets"][-1]["count"] == 1


def test_histogram_buckets_are_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds")
    for v in (0.0005, 0.002, 0.002, 5.0, 100.0):
        h.observe(v)
    snap = h.snapshot()
    counts = [b["count"] for b in snap["buckets"]]
    assert counts == sorted(counts)
    assert counts[-1] == snap["count"] == 5
    assert snap["max"] == 100.0


def test_histogram_snapshot_consistent_under_concurrency():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds")
    stop = threading.Event()
    bad = []

    def hammer():
        for i in range(2000):
            h.observe((i % 50) * 0.001)

    def scrape():
        while not stop.is_set():
            snap = h.snapshot()
            counts = [b["count"] for b in snap["buckets"]]
            if counts != sorted(counts) or counts[-1] != snap["count"]:
                bad.append(snap)
                return

    workers = [threading.Thread(target=hammer) for _ in range(4)]
    scraper = threading.Thread(target=scrape)
    scraper.start()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    stop.set()
    scraper.join()
    assert not bad
    assert h.snapshot()["count"] == 4 * 2000


def test_render_prometheus_histogram_exposition():
    reg = MetricsRegistry()
    h = reg.histogram("repro_lat_seconds", "how long", kernel="reference")
    h.observe(0.002)
    text = reg.render_prometheus()
    lines = text.splitlines()
    assert "# HELP repro_lat_seconds how long" in lines
    assert "# TYPE repro_lat_seconds histogram" in lines
    buckets = [ln for ln in lines if ln.startswith("repro_lat_seconds_bucket")]
    assert len(buckets) == len(LATENCY_BUCKETS_S) + 1
    assert 'le="+Inf"' in buckets[-1]
    assert any(ln.startswith("repro_lat_seconds_sum{") for ln in lines)
    assert any(ln.startswith("repro_lat_seconds_count{") for ln in lines)
    # every sample line parses as <name>{labels} <float>
    for ln in lines:
        if ln.startswith("#"):
            continue
        name_part, _, value = ln.rpartition(" ")
        assert name_part and float(value) >= 0


def test_snapshot_json_roundtrip():
    import json

    reg = MetricsRegistry()
    reg.counter("repro_a_total").inc(2)
    reg.gauge("repro_b").set(1.5)
    reg.histogram("repro_c_seconds").observe(0.5)
    doc = json.loads(json.dumps(reg.snapshot()))
    kinds = {m["name"]: m["kind"] for m in doc["metrics"]}
    assert kinds == {
        "repro_a_total": "counter",
        "repro_b": "gauge",
        "repro_c_seconds": "histogram",
    }


def test_process_registry_reset():
    first = get_registry()
    first.counter("repro_x_total").inc()
    fresh = reset_registry()
    try:
        assert fresh is get_registry() and fresh is not first
        assert fresh.counter("repro_x_total").value == 0
    finally:
        reset_registry()
