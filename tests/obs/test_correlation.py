"""End-to-end correlation: one cid chains serve, dispatch, and campaign.

These are the tentpole acceptance tests at the integration seams —
``answer_query`` mints a cid and the story is reconstructable from the
shared log; the WorkQueue carries the cid in the pending doc without
perturbing the digest; the campaign pool stamps one cid per cell across
every retry.
"""

import asyncio

import pytest

from repro.harness.campaign import CampaignCell, execute_cell
from repro.obs import runtime
from repro.obs.events import events_for_cid, list_cids, read_events
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import spans_from_events
from repro.store.dispatch import WorkQueue, run_worker
from repro.store.service import QueryService, ServeMetrics
from repro.store.store import ResultStore, cell_digest

CELL = CampaignCell(benchmark="wc", design_point="HEAVYWT", trip_count=48)
QUERY = {"benchmark": "wc", "design_point": "HEAVYWT", "trip_count": 48}


@pytest.fixture
def obs(tmp_path):
    state = runtime.configure(
        log_path=str(tmp_path / "obs.jsonl"), registry=MetricsRegistry()
    )
    yield state
    runtime.shutdown()


def _log(tmp_path):
    return read_events(str(tmp_path / "obs.jsonl"))


class InProcessExecutor:
    """Test double resolving misses in-process (keeps the serve cid chain
    in one process so the whole story is assertable synchronously)."""

    def __init__(self, store):
        self.store = store
        self.calls = []

    async def resolve(self, cell, digest):
        self.calls.append(digest)
        outcome = execute_cell(cell)
        entry, _ = self.store.put(cell, outcome)
        return entry

    def close(self):
        pass


def _service(tmp_path, registry):
    store = ResultStore(str(tmp_path / "store"))
    executor = InProcessExecutor(store)
    return QueryService(store, executor, ServeMetrics(registry=registry)), store


def test_miss_query_story_under_one_cid(obs, tmp_path):
    svc, _store = _service(tmp_path, obs.registry)

    answer = asyncio.run(svc.answer_query(dict(QUERY)))
    assert answer["ok"] and not answer["hit"]
    cid = answer["cid"]
    assert isinstance(cid, str) and len(cid) == 12

    chain = events_for_cid(_log(tmp_path), cid)
    names = [e["event"] for e in chain]
    assert "serve.miss" in names and "kernel.run" in names
    spans = {s.name for s in spans_from_events(chain)}
    assert {"serve.query", "store.lookup"} <= spans


def test_hit_and_coalesce_events_carry_cids(obs, tmp_path):
    svc, store = _service(tmp_path, obs.registry)
    store.put(CELL, execute_cell(CELL))

    hit = asyncio.run(svc.answer_query(dict(QUERY)))
    assert hit["hit"] and hit["cid"]
    events = _log(tmp_path)
    hits = [e for e in events if e["event"] == "store.hit"]
    assert [e["cid"] for e in hits] == [hit["cid"]]
    assert hits[0]["digest"] == cell_digest(CELL)

    other = {"benchmark": "wc", "design_point": "EXISTING", "trip_count": 48}
    answers = asyncio.run(svc.answer_batch([dict(other), dict(other)]))
    assert {a["coalesced"] for a in answers} == {False, True}
    coalesce = [e for e in _log(tmp_path) if e["event"] == "serve.coalesce"]
    assert len(coalesce) == 1
    leader = next(a for a in answers if not a["coalesced"])
    follower = next(a for a in answers if a["coalesced"])
    assert coalesce[0]["cid"] == follower["cid"]
    assert coalesce[0]["leader"] == leader["cid"]  # the cid that owns the run


def test_disabled_service_answers_without_cid(tmp_path):
    runtime.shutdown()
    svc, _store = _service(tmp_path, MetricsRegistry())
    answer = asyncio.run(svc.answer_query(dict(QUERY)))
    assert answer["ok"] and "cid" not in answer


def test_queue_carries_cid_without_perturbing_digest(obs, tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    queue = WorkQueue(str(tmp_path / "queue"))
    digest_with, created = queue.enqueue(CELL, cid="feedface0123")
    assert created
    assert digest_with == cell_digest(CELL)  # cid never enters the digest
    assert queue.load_doc(digest_with)["cid"] == "feedface0123"

    counters = run_worker(store, queue, worker_id="w1", drain=True)
    assert counters["ran"] == 1
    chain = events_for_cid(_log(tmp_path), "feedface0123")
    names = [e["event"] for e in chain]
    assert "worker.claim" in names and "store.publish" in names
    claim = next(e for e in chain if e["event"] == "worker.claim")
    assert claim["worker"] == "w1"
    spans = [s for s in spans_from_events(chain) if s.name == "sim.run"]
    assert len(spans) == 1 and spans[0].cid == "feedface0123"


def test_enqueue_without_obs_writes_no_cid(tmp_path):
    runtime.shutdown()
    queue = WorkQueue(str(tmp_path / "queue"))
    digest, _created = queue.enqueue(CELL)
    assert "cid" not in queue.load_doc(digest)


def test_campaign_cell_keeps_one_cid_across_events(obs, tmp_path):
    from repro.harness.campaign import CampaignPolicy, run_campaign

    report = run_campaign(
        [CELL],
        CampaignPolicy(jobs=1),
        ledger_path=str(tmp_path / "ledger.jsonl"),
    )
    assert report.n_done == 1
    events = _log(tmp_path)
    cids = list_cids(events)
    assert len(cids) == 1
    chain = events_for_cid(events, cids[0])
    names = [e["event"] for e in chain]
    for wanted in ("campaign.cell.start", "kernel.run", "campaign.cell.end"):
        assert wanted in names, names
    # the sim.run span came from the worker process, same cid
    sim = [s for s in spans_from_events(chain) if s.name == "sim.run"]
    assert len(sim) == 1 and sim[0].pid != chain[0]["pid"]
    # registry absorbed the attempt/outcome counters
    assert obs.registry.counter("repro_campaign_attempts_total").value == 1
    assert (
        obs.registry.counter("repro_campaign_cells_total", status="done").value
        == 1
    )
