"""The process-wide obs gate: configure/shutdown, the zero-overhead
contract, and ContextVar correlation-ID propagation."""

import asyncio

import pytest

from repro.obs import runtime
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_state():
    runtime.shutdown()
    yield
    runtime.shutdown()


def test_disabled_by_default():
    assert not runtime.active()
    assert runtime.get_state() is None
    runtime.emit("dropped", cid="x")  # no-op, no error, no file


def test_configure_activates_and_shutdown_closes(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    state = runtime.configure(log_path=path)
    assert runtime.active() and runtime.get_state() is state
    runtime.emit("hello", cid="abc", n=1)
    runtime.shutdown()
    assert not runtime.active()
    from repro.obs.events import read_events

    (event,) = read_events(path)
    assert event["event"] == "hello" and event["cid"] == "abc"


def test_metrics_only_mode():
    state = runtime.configure(registry=MetricsRegistry())
    assert state.log is None
    runtime.emit("nowhere")  # silently dropped: no log configured
    state.registry.counter("repro_x_total").inc()
    assert state.registry.counter("repro_x_total").value == 1


def test_reconfigure_same_path_reuses_log(tmp_path):
    path = str(tmp_path / "obs.jsonl")
    first = runtime.configure(log_path=path)
    second = runtime.configure(log_path=path)
    assert second.log is first.log  # the open O_APPEND fd is kept
    third = runtime.configure(log_path=str(tmp_path / "other.jsonl"))
    assert third.log is not first.log


def test_cid_contextvar_roundtrip():
    assert runtime.current_cid() is None
    token = runtime.set_cid("abc123")
    assert runtime.current_cid() == "abc123"
    runtime.reset_cid(token)
    assert runtime.current_cid() is None


def test_cid_copied_into_asyncio_tasks():
    """Tasks snapshot the ambient context at creation — the coalescing
    semantics: the task minted for the first miss keeps that query's cid."""

    async def main():
        token = runtime.set_cid("first")
        task = asyncio.ensure_future(child())
        runtime.reset_cid(token)
        runtime.set_cid("second")
        return await task

    async def child():
        return runtime.current_cid()

    assert asyncio.run(main()) == "first"


def test_observe_run_feeds_registry_and_log(tmp_path):
    from repro.harness.campaign import CampaignCell, execute_cell
    from repro.obs.events import read_events

    state = runtime.configure(
        log_path=str(tmp_path / "obs.jsonl"), registry=MetricsRegistry()
    )
    token = runtime.set_cid("cellcid")
    try:
        outcome = execute_cell(
            CampaignCell(benchmark="wc", design_point="EXISTING", trip_count=48)
        )
    finally:
        runtime.reset_cid(token)
    assert outcome.ok
    hist = state.registry.histogram(
        "repro_sim_cycles_per_sec", kernel="reference"
    )
    assert hist.snapshot()["count"] == 1
    runs = state.registry.counter("repro_sim_runs_total", kernel="reference")
    assert runs.value == 1
    kernel_events = [
        e for e in read_events(str(tmp_path / "obs.jsonl"))
        if e["event"] == "kernel.run"
    ]
    assert len(kernel_events) == 1
    assert kernel_events[0]["cid"] == "cellcid"
    assert kernel_events[0]["cycles"] == outcome.cycles


def test_observe_run_disabled_is_free(tmp_path):
    """With obs off the machine runs identically and writes nothing."""
    from repro.harness.campaign import CampaignCell, execute_cell

    outcome = execute_cell(
        CampaignCell(benchmark="wc", design_point="EXISTING", trip_count=48)
    )
    assert outcome.ok
    assert not list(tmp_path.iterdir())
