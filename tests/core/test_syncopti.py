"""Tests specific to the SYNCOPTI mechanism (Section 4.2)."""


from repro.sim import isa
from repro.sim.config import baseline_config
from repro.sim.machine import Machine
from repro.sim.program import Program, ThreadProgram

from tests.conftest import run_mechanism, simple_stream_program


class TestLayout:
    def test_no_flags_packed_items(self):
        machine = Machine(baseline_config(), mechanism="syncopti")
        lay = machine.mechanism.layout_for(0)
        assert lay.flag_bytes == 0
        assert lay.qlu == 8  # baseline QLU

    def test_q64_layout(self):
        cfg = baseline_config()
        cfg.queues.depth = 64
        cfg.queues.qlu = 16
        machine = Machine(cfg, mechanism="syncopti")
        lay = machine.mechanism.layout_for(0)
        assert lay.qlu == 16
        assert lay.slot_stride == 8


class TestForwarding:
    def test_line_granular_visibility(self):
        """Items become consumable when their full line forwards."""
        stats, machine = run_mechanism("syncopti", simple_stream_program(32))
        ch = machine.channels[0]
        # Steady-state lines (the first may be raced by the cold-start
        # timeout path): all items of a line share one visibility time.
        assert len(set(ch.produced[8:16])) == 1
        assert len(set(ch.produced[16:24])) == 1
        assert ch.produced[16] > ch.produced[8]

    def test_ownership_handoff(self):
        """SYNCOPTI forwards release the producer's copy."""
        stats, machine = run_mechanism("syncopti", simple_stream_program(16))
        lay = machine.channels[0].layout
        line = machine.mem.l2_line(lay.line_addr(0))
        src = machine.mem.l2[0].probe(line)
        dst = machine.mem.l2[1].probe(line)
        # Producer's copy gone (or re-acquired after wrap); consumer has it.
        assert dst is not None

    def test_bulk_acks_free_whole_lines(self):
        stats, machine = run_mechanism("syncopti", simple_stream_program(32))
        ch = machine.channels[0]
        assert len(set(ch.freed[8:16])) == 1  # one ACK freed the whole line

    def test_single_comm_instruction_per_op(self):
        stats, _ = run_mechanism("syncopti", simple_stream_program(32))
        assert stats.producer.comm_instructions == 32
        assert stats.consumer.comm_instructions == 32


class TestTimeout:
    def test_partial_line_delivered_by_timeout(self):
        """A stream ending mid-line must not deadlock (Section 4.2)."""
        stats, machine = run_mechanism("syncopti", simple_stream_program(5))
        ch = machine.channels[0]
        assert ch.n_consumed == 5  # QLU 8: line never fills, timeout path

    def test_timeout_latency_bounded(self, config):
        """The partial-line consume costs about the configured timeout."""
        stats, machine = run_mechanism("syncopti", simple_stream_program(2))
        ch = machine.channels[0]
        # Delivered via a demand fetch after the timeout window.
        assert ch.produced[0] >= config.syncopti.partial_line_timeout

    def test_slow_queue_uses_timeouts_not_deadlock(self):
        """One item per 'group' on a side queue never fills a line."""

        def producer():
            for i in range(6):
                yield isa.ialu(1)
                yield isa.produce(0, 1)
                for _ in range(40):
                    yield isa.falu(2, 2)

        def consumer():
            for i in range(6):
                yield isa.consume(3, 0)
                yield isa.ialu(4, 3)

        prog = Program(
            "slow-queue",
            [ThreadProgram("p", producer), ThreadProgram("c", consumer)],
            {0: (0, 1)},
        )
        stats, machine = run_mechanism("syncopti", prog)
        assert machine.channels[0].n_consumed == 6


class TestBackpressure:
    def test_dormant_produce_charges_prel2(self):
        def producer():
            yield isa.ialu(1)
            for i in range(80):
                yield isa.produce(0, 1)

        def consumer():
            for i in range(80):
                yield isa.consume(3, 0)
                for _ in range(20):
                    yield isa.falu(4, 4)

        prog = Program(
            "dormant",
            [ThreadProgram("p", producer), ThreadProgram("c", consumer)],
            {0: (0, 1)},
        )
        stats, _ = run_mechanism("syncopti", prog)
        assert stats.producer.queue_full_stall > 0
        assert stats.producer.ozq_backpressure_events > 0
        assert stats.producer.components["PreL2"] > 0

    def test_no_spinning(self):
        """SYNCOPTI produces sit dormant; they never spin."""

        def producer():
            yield isa.ialu(1)
            for i in range(64):
                yield isa.produce(0, 1)

        def consumer():
            for i in range(64):
                yield isa.consume(3, 0)
                for _ in range(10):
                    yield isa.falu(4, 4)

        prog = Program(
            "nospin",
            [ThreadProgram("p", producer), ThreadProgram("c", consumer)],
            {0: (0, 1)},
        )
        stats, _ = run_mechanism("syncopti", prog)
        assert stats.producer.spin_reissues == 0


class TestConsumeLatency:
    def test_consume_to_use_at_least_stream_addr_plus_l2(self, config):
        """Paper: >= 6 cycles (2-cycle address gen + L2 synchronization)."""
        stats, machine = run_mechanism("syncopti", simple_stream_program(32))
        ch = machine.channels[0]
        # Measured indirectly: SYNCOPTI consumer must be slower than HEAVYWT.
        hw_stats, _ = run_mechanism("heavywt", simple_stream_program(32))
        assert stats.cycles >= hw_stats.cycles
