"""Tests for HEAVYWT and its dedicated interconnect."""

import pytest

from repro.core.interconnect import DedicatedInterconnect
from repro.sim import isa
from repro.sim.config import baseline_config
from repro.sim.program import Program, ThreadProgram

from tests.conftest import run_mechanism, simple_stream_program


class TestInterconnect:
    def test_transit_delay(self):
        net = DedicatedInterconnect(transit_delay=5)
        assert net.send(0, 1, at=10.0) == 15.0

    def test_pipelined_injection(self):
        net = DedicatedInterconnect(transit_delay=10)
        a = net.send(0, 1, 0.0)
        b = net.send(0, 1, 0.0)
        # One injection per cycle; both in flight concurrently.
        assert a == 10.0
        assert b == 11.0

    def test_directions_independent(self):
        net = DedicatedInterconnect(transit_delay=3)
        net.send(0, 1, 0.0)
        assert net.send(1, 0, 0.0) == 3.0  # no contention with 0->1

    def test_in_flight_capacity_grows_with_transit(self):
        assert DedicatedInterconnect(10).in_flight_capacity() > DedicatedInterconnect(
            1
        ).in_flight_capacity()

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            DedicatedInterconnect(1).send(0, 0, 0.0)

    def test_bad_transit_rejected(self):
        with pytest.raises(ValueError):
            DedicatedInterconnect(0)


class TestHeavyWeight:
    def test_no_memory_subsystem_traffic(self):
        """Queue traffic bypasses the memory hierarchy entirely."""

        def producer():
            for i in range(32):
                yield isa.ialu(1)
                yield isa.produce(0, 1)

        def consumer():
            for i in range(32):
                yield isa.consume(3, 0)

        prog = Program(
            "pure-comm",
            [ThreadProgram("p", producer), ThreadProgram("c", consumer)],
            {0: (0, 1)},
        )
        stats, machine = run_mechanism("heavywt", prog)
        assert machine.mem.loads == 0
        assert machine.mem.stores == 0
        assert machine.mem.bus.transactions == 0

    def test_memory_components_zero_for_pure_comm(self):
        def producer():
            for i in range(32):
                yield isa.ialu(1)
                yield isa.produce(0, 1)

        def consumer():
            for i in range(32):
                yield isa.consume(3, 0)
                yield isa.ialu(4, 3)

        prog = Program(
            "pure-comm2",
            [ThreadProgram("p", producer), ThreadProgram("c", consumer)],
            {0: (0, 1)},
        )
        stats, _ = run_mechanism("heavywt", prog)
        for t in stats.threads:
            assert t.components["L3"] == 0
            assert t.components["MEM"] == 0

    def test_item_visibility_is_send_plus_transit(self, config):
        stats, machine = run_mechanism("heavywt", simple_stream_program(16))
        ch = machine.channels[0]
        # Per-item visibility (not line-granular like SYNCOPTI).
        assert len(set(ch.produced[0:8])) > 1

    def test_ack_carries_transit_delay(self):
        cfg = baseline_config()
        import dataclasses

        cfg.dedicated = dataclasses.replace(cfg.dedicated, transit_delay=20)
        stats, machine = run_mechanism(
            "heavywt", simple_stream_program(16), config=cfg
        )
        ch = machine.channels[0]
        # freed[i] >= produced[i] (consume after arrival) + ack transit.
        assert all(f >= p + 20 for f, p in zip(ch.freed, ch.produced))

    def test_queue_full_blocks_pipeline(self):
        def producer():
            yield isa.ialu(1)
            for i in range(80):
                yield isa.produce(0, 1)

        def consumer():
            for i in range(80):
                yield isa.consume(3, 0)
                for _ in range(12):
                    yield isa.falu(4, 4)

        prog = Program(
            "hw-full",
            [ThreadProgram("p", producer), ThreadProgram("c", consumer)],
            {0: (0, 1)},
        )
        stats, _ = run_mechanism("heavywt", prog)
        assert stats.producer.queue_full_stall > 0
        assert stats.producer.components["PreL2"] > 0

    def test_fastest_design_point(self):
        results = {}
        for mech in ("existing", "memopti", "syncopti", "syncopti_sc", "heavywt"):
            stats, _ = run_mechanism(mech, simple_stream_program(96))
            results[mech] = stats.cycles
        assert results["heavywt"] == min(results.values())
