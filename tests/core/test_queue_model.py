"""Unit + property tests for queue layouts and visibility channels."""

import pytest
from hypothesis import given, strategies as st

from repro.core.queue_model import (
    QUEUE_REGION_BASE,
    QUEUE_REGION_STRIDE,
    QueueChannel,
    QueueLayout,
)


class TestLayout:
    def test_software_queue_layout_matches_figure5(self):
        """QLU 8: 8 slots of (8B data + 8B lock) fill one 128B line."""
        lay = QueueLayout(queue_id=0, qlu=8, flag_bytes=8)
        assert lay.slot_bytes == 16
        assert lay.slot_stride == 16
        assert lay.n_lines == 4
        assert lay.line_of(7) == 0
        assert lay.line_of(8) == 1

    def test_sparse_layout_qlu1(self):
        """QLU 1 pads each slot to a full line (no false sharing)."""
        lay = QueueLayout(queue_id=0, depth=32, qlu=1, flag_bytes=8)
        assert lay.slot_stride == 128
        assert lay.n_lines == 32

    def test_q64_packing(self):
        """Section 5's Q64: 16 packed 8-byte items per line."""
        lay = QueueLayout(queue_id=0, depth=64, qlu=16, flag_bytes=0)
        assert lay.slot_stride == 8
        assert lay.n_lines == 4

    def test_overpacked_rejected(self):
        with pytest.raises(ValueError):
            QueueLayout(queue_id=0, qlu=16, flag_bytes=8)  # 16*16 > 128

    def test_item_wraps_around_depth(self):
        lay = QueueLayout(queue_id=0, depth=32)
        assert lay.slot_of(0) == lay.slot_of(32) == lay.slot_of(64)

    def test_flag_addr_requires_flags(self):
        lay = QueueLayout(queue_id=0, flag_bytes=0)
        with pytest.raises(ValueError):
            lay.flag_addr(0)

    def test_flag_follows_data(self):
        lay = QueueLayout(queue_id=0, flag_bytes=8)
        assert lay.flag_addr(3) == lay.data_addr(3) + 8

    def test_queue_regions_disjoint(self):
        a = QueueLayout(queue_id=0)
        b = QueueLayout(queue_id=1)
        assert b.base - a.base == QUEUE_REGION_STRIDE
        assert a.base >= QUEUE_REGION_BASE

    def test_is_last_in_line(self):
        lay = QueueLayout(queue_id=0, qlu=8)
        assert lay.is_last_in_line(7)
        assert not lay.is_last_in_line(6)
        assert lay.is_last_in_line(15)
        assert lay.is_last_in_line(39)  # wraps: slot 7

    @given(item=st.integers(0, 10_000))
    def test_addresses_stay_in_region(self, item):
        lay = QueueLayout(queue_id=3, depth=32, qlu=8, flag_bytes=8)
        addr = lay.data_addr(item)
        assert lay.base <= addr < lay.base + QUEUE_REGION_STRIDE

    @given(item=st.integers(0, 1000))
    def test_line_of_consistent_with_addr(self, item):
        lay = QueueLayout(queue_id=0, depth=32, qlu=8, flag_bytes=8)
        line_from_addr = (lay.data_addr(item) - lay.base) // lay.line_bytes
        assert line_from_addr == lay.line_of(item)

    @given(
        depth=st.sampled_from([8, 16, 32, 64]),
        qlu=st.sampled_from([1, 2, 4, 8]),
    )
    def test_exactly_qlu_items_per_line(self, depth, qlu):
        lay = QueueLayout(queue_id=0, depth=depth, qlu=qlu, flag_bytes=8)
        per_line = {}
        for item in range(depth):
            per_line.setdefault(lay.line_of(item), set()).add(lay.slot_of(item))
        assert all(len(slots) == qlu for slots in per_line.values())


class TestChannel:
    def make(self, depth=4) -> QueueChannel:
        return QueueChannel(layout=QueueLayout(queue_id=0, depth=depth, qlu=2))

    def test_first_depth_items_never_wait(self):
        ch = self.make(depth=4)
        for i in range(4):
            assert ch.producer_must_wait_for(i) is None
        assert ch.producer_must_wait_for(4) == 0
        assert ch.producer_must_wait_for(9) == 5

    def test_record_produced_indexes(self):
        ch = self.make()
        assert ch.record_produced(10.0) == 0
        assert ch.record_produced(12.0) == 1
        assert ch.produced == [10.0, 12.0]

    def test_record_freed_bulk(self):
        ch = self.make()
        ch.record_freed_bulk(3, 99.0)
        assert ch.freed == [99.0] * 3

    def test_occupancy_bound(self):
        ch = self.make()
        ch.n_produced = 5
        ch.record_freed(1.0)
        ch.record_freed(2.0)
        assert ch.occupancy_bound() == 3

    def test_forward_recording(self):
        ch = self.make()
        ch.record_forward(1, 42.0)
        assert ch.line_forwarded[1] == 42.0

    def test_queue_id_passthrough(self):
        assert self.make().queue_id == 0
